"""Read-only WAL tailing for live update propagation.

:class:`WalFeed` is the coordinator side of the update pipeline: it
follows a write-ahead log directory *written by another process* and
yields each newly committed :class:`~repro.durability.wal.WalRecord`
exactly once, in LSN order.  Unlike :class:`WriteAheadLog`, the feed
never truncates or repairs anything — a torn frame at the tail simply
means "no more complete records yet" and the feed waits for the writer
to finish (or a recovery pass to truncate) it.

The feed remembers ``(segment, offset, last_lsn)`` between polls, so a
poll is one ``stat`` plus a read of only the new bytes, and handles
segment rotation by stepping to the segment whose first LSN is the next
expected one.
"""

from __future__ import annotations

from pathlib import Path

from repro.durability.wal import (
    WalRecord,
    WalTruncatedError,
    iter_segment_records,
    list_segments,
)

#: Lag gauge buckets are not needed — lag is a plain gauge.


class WalFeed:
    """Incremental reader of a (possibly live) WAL directory.

    Parameters
    ----------
    directory:
        The WAL directory to follow.
    start_lsn:
        Records with ``lsn <= start_lsn`` are skipped — pass the
        consumer's acked LSN to resume mid-log.
    registry:
        Optional metrics registry; publishes ``lazylsh_wal_feed_lsn``
        (last LSN delivered) and ``lazylsh_wal_feed_records_total``.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        start_lsn: int = 0,
        registry=None,
    ) -> None:
        self.directory = Path(directory)
        self.last_lsn = int(start_lsn)
        self._segment: Path | None = None
        self._offset = 0
        if registry is not None:
            self._lsn_gauge = registry.gauge(
                "lazylsh_wal_feed_lsn", "Last LSN delivered by the WAL feed"
            )
            self._records_counter = registry.counter(
                "lazylsh_wal_feed_records_total", "Records delivered by the feed"
            )
        else:
            self._lsn_gauge = None
            self._records_counter = None

    def _locate(self) -> bool:
        """Position on the segment containing ``last_lsn + 1``.

        Returns False when that segment does not exist yet.  Raises
        :class:`~repro.durability.wal.WalTruncatedError` when every
        surviving segment starts *beyond* the target: a checkpoint
        pruned the records this feed still needed, and polling would
        otherwise return empty forever while the log races ahead.
        """
        if not self.directory.is_dir():
            return False
        segments = list_segments(self.directory)
        if not segments:
            return False
        target = self.last_lsn + 1
        best: Path | None = None
        for first, path in segments:
            if first <= target:
                best = path
            else:
                break
        if best is None:
            raise WalTruncatedError(target, segments[0][0])
        if self._segment != best:
            self._segment = best
            self._offset = 0
        return True

    def poll(self, max_records: int | None = None) -> list[WalRecord]:
        """All records committed since the last poll (possibly empty).

        Reads across segment rotations; stops at the first incomplete
        frame (a write in progress) or after ``max_records``.  Raises
        :class:`~repro.durability.wal.WalTruncatedError` when the
        writer's checkpoints pruned the log past this feed's position —
        the consumer must re-bootstrap from a checkpoint, because the
        missing records will never reappear.
        """
        out: list[WalRecord] = []
        drained: Path | None = None
        relocations = 0
        while True:
            if not self._locate():
                break
            assert self._segment is not None
            if self._segment == drained:
                # No rotation since this poll drained it — done.
                break
            seg = self._segment
            stop = False
            try:
                entries = iter_segment_records(seg)
                for record, end in entries:
                    if end <= self._offset:
                        continue
                    self._offset = end
                    if record.lsn <= self.last_lsn:
                        continue
                    if record.lsn != self.last_lsn + 1:
                        # Gap inside a located segment: the log is
                        # damaged (segment LSNs are contiguous by
                        # construction).  Stop delivering rather than
                        # skip — the consumer decides what to do.
                        stop = True
                        break
                    out.append(record)
                    self.last_lsn = record.lsn
                    if max_records is not None and len(out) >= max_records:
                        stop = True
                        break
            except FileNotFoundError:
                # The segment was pruned between _locate's listing and
                # the read (checkpoint racing the poll).  Re-locate: if
                # the records we still need survive elsewhere we step
                # there; if they were pruned, _locate raises
                # WalTruncatedError.
                self._segment = None
                self._offset = 0
                relocations += 1
                if relocations > 8:  # pragma: no cover - defensive
                    break
                continue
            if stop:
                break
            drained = seg
        if out:
            if self._lsn_gauge is not None:
                self._lsn_gauge.set(self.last_lsn)
            if self._records_counter is not None:
                self._records_counter.inc(len(out))
        return out

    def lag(self) -> int:
        """Committed records not yet delivered (scan of the tail segment).

        Intended for health endpoints; costs one directory listing plus a
        parse of at most one segment.
        """
        segments = list_segments(self.directory)
        if not segments:
            return 0
        first, tail = segments[-1]
        newest = first - 1
        for record, _end in iter_segment_records(tail):
            newest = record.lsn
        return max(0, newest - self.last_lsn)
