"""Checkpointing and crash recovery for the durable update plane.

A checkpoint is an ordinary :func:`repro.persistence.save_index` snapshot
stamped with the WAL LSN it covers, written atomically::

    checkpoints/
        checkpoint-00000000000000000000.npz      # initial (build-time)
        checkpoint-00000000000000000431.npz      # covers LSNs 1..431

Atomicity: the snapshot is first written to a ``tmp-`` prefixed file
(never matched by the recovery glob), fsynced, then :func:`os.replace`\\ d
to its final name — so a crash mid-checkpoint leaves either no new
checkpoint (plus an ignorable temp file) or a complete one, never a
half-written file under a recoverable name.

Recovery (:func:`recover`) is the classic ARIES-lite sequence:

1. rank checkpoint files by LSN, newest first;
2. load the newest one whose header parses and whose payload loads —
   unreadable candidates are skipped, falling back to older snapshots;
3. open the WAL (which itself truncates a torn tail);
4. replay every record with ``lsn > checkpoint_lsn`` in order;
5. hand back a :class:`~repro.durability.wal.DurableIndex` ready for
   more writes.

The recovered index is bit-identical — same data, tombstones, inverted
lists and therefore same kNN answers — to an index that applied exactly
the durably-acked mutation prefix, which is the invariant the crash
tests pin down.
"""

from __future__ import annotations

import os
import zipfile
from pathlib import Path

import numpy as np

from repro.durability.wal import (
    DurableIndex,
    WalCorruptionError,
    WriteAheadLog,
    apply_record,
)
from repro.errors import InvalidParameterError, ReproError
from repro.persistence import (
    IndexFormatError,
    load_index,
    mmap_capable,
    read_header,
    save_index,
)

_CHECKPOINT_PREFIX = "checkpoint-"
_CHECKPOINT_TMP_PREFIX = "tmp-checkpoint-"
_CHECKPOINT_SUFFIX = ".npz"

#: Subdirectory names of a durable index home directory.
WAL_SUBDIR = "wal"
CHECKPOINT_SUBDIR = "checkpoints"


class RecoveryError(ReproError):
    """No usable checkpoint/WAL state could be recovered."""


def checkpoint_name(lsn: int) -> str:
    """File name of the checkpoint covering WAL records ``1..lsn``."""
    return f"{_CHECKPOINT_PREFIX}{lsn:020d}{_CHECKPOINT_SUFFIX}"


def _checkpoint_lsn(path: Path) -> int | None:
    name = path.name
    if not (
        name.startswith(_CHECKPOINT_PREFIX) and name.endswith(_CHECKPOINT_SUFFIX)
    ):
        return None
    digits = name[len(_CHECKPOINT_PREFIX):-len(_CHECKPOINT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def list_checkpoints(directory: str | Path) -> list[tuple[int, Path]]:
    """``(lsn, path)`` of every checkpoint file, ascending by LSN.

    ``tmp-`` files (crashed half-writes) are deliberately excluded.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for path in directory.iterdir():
        lsn = _checkpoint_lsn(path)
        if lsn is not None:
            found.append((lsn, path))
    found.sort()
    return found


def write_checkpoint(
    index,
    directory: str | Path,
    *,
    lsn: int,
    epoch: int = 0,
    format_version: int | None = None,
    compress: bool = True,
) -> Path:
    """Atomically snapshot ``index`` as the checkpoint covering ``lsn``.

    ``format_version=3`` writes the mmap-able binary layout so a later
    ``recover(..., backend="mmap")`` or worker attach opens in O(1);
    ``compress=False`` skips zlib on the v2 npz path, trading checkpoint
    size for write latency on hot WAL-triggered snapshots.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    final = directory / checkpoint_name(lsn)
    tmp = directory / f"{_CHECKPOINT_TMP_PREFIX}{lsn:020d}{_CHECKPOINT_SUFFIX}"
    save_index(
        index,
        tmp,
        wal_lsn=lsn,
        wal_epoch=epoch,
        format_version=format_version,
        compress=compress,
    )
    # fsync file contents, atomically rename, then fsync the directory so
    # the new name itself survives power loss.
    fd = os.open(tmp, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, final)
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return final


def latest_checkpoint(directory: str | Path) -> tuple[int, Path] | None:
    """Newest checkpoint whose header parses, or None.

    Candidates are tried newest-first; a corrupt or truncated file is
    skipped so recovery degrades to the previous snapshot instead of
    failing outright.
    """
    for lsn, path in reversed(list_checkpoints(directory)):
        try:
            header = read_header(path)
        except (IndexFormatError, InvalidParameterError):
            continue
        if int(header.get("wal_lsn", 0)) != lsn:
            # File name and header disagree — do not trust it.
            continue
        return lsn, path
    return None


def create(
    index,
    directory: str | Path,
    *,
    sync: bool = True,
    segment_bytes: int | None = None,
    registry=None,
) -> DurableIndex:
    """Initialise a durable home directory around a freshly built index.

    Writes the initial (LSN 0) checkpoint and opens an empty WAL.  The
    directory must not already contain durable state.
    """
    directory = Path(directory)
    ckpt_dir = directory / CHECKPOINT_SUBDIR
    wal_dir = directory / WAL_SUBDIR
    if list_checkpoints(ckpt_dir):
        raise InvalidParameterError(
            f"{directory} already holds checkpoints; use recover() instead"
        )
    write_checkpoint(index, ckpt_dir, lsn=0)
    kwargs: dict = {"sync": sync, "registry": registry}
    if segment_bytes is not None:
        kwargs["segment_bytes"] = segment_bytes
    wal = WriteAheadLog(wal_dir, **kwargs)
    if wal.last_lsn != 0:
        wal.close()
        raise InvalidParameterError(
            f"{wal_dir} already holds {wal.last_lsn} WAL records; use recover()"
        )
    return DurableIndex(index, wal)


def recover(
    directory: str | Path,
    *,
    sync: bool = True,
    segment_bytes: int | None = None,
    registry=None,
    backend: str = "eager",
) -> tuple[DurableIndex, dict]:
    """Rebuild the durable index from ``directory`` after a crash.

    Returns ``(durable_index, report)`` where ``report`` records what
    recovery did: the checkpoint used, records replayed, torn-tail bytes
    dropped, and checkpoints skipped as corrupt.

    ``backend="mmap"`` opens the checkpoint without reading its pages
    eagerly (format-v3 checkpoints only) — cold recovery of a large,
    mostly-checkpointed index starts in milliseconds and pages in on
    demand.  WAL replay onto a mapped index materialises the mutated
    arrays in RAM, exactly as live inserts do.
    """
    directory = Path(directory)
    ckpt_dir = directory / CHECKPOINT_SUBDIR
    wal_dir = directory / WAL_SUBDIR
    candidates = list_checkpoints(ckpt_dir)
    if not candidates:
        raise RecoveryError(
            f"{ckpt_dir} holds no checkpoints; nothing to recover"
        )
    index = None
    ckpt_lsn = -1
    ckpt_path: Path | None = None
    skipped: list[str] = []
    for lsn, path in reversed(candidates):
        try:
            header = read_header(path)
            if int(header.get("wal_lsn", 0)) != lsn:
                raise IndexFormatError(
                    f"{path} header LSN {header.get('wal_lsn')} does not "
                    f"match its file name"
                )
            # Older (npz) checkpoints cannot be mapped — degrade to an
            # eager load rather than skipping a perfectly good snapshot.
            use = backend if mmap_capable(path) else "eager"
            index = load_index(path, backend=use)
        except (IndexFormatError, InvalidParameterError, zipfile.BadZipFile,
                OSError, ValueError, KeyError) as exc:
            skipped.append(f"{path.name}: {exc}")
            continue
        ckpt_lsn = lsn
        ckpt_path = path
        break
    if index is None or ckpt_path is None:
        raise RecoveryError(
            f"no loadable checkpoint in {ckpt_dir}; skipped: "
            f"{[s.split(':', 1)[0] for s in skipped]}"
        )
    kwargs: dict = {"sync": sync, "registry": registry}
    if segment_bytes is not None:
        kwargs["segment_bytes"] = segment_bytes
    wal = WriteAheadLog(wal_dir, **kwargs)
    if wal.last_lsn < ckpt_lsn:
        wal.close()
        raise RecoveryError(
            f"checkpoint {ckpt_path.name} covers LSN {ckpt_lsn} but the WAL "
            f"only reaches {wal.last_lsn}; the log was truncated below its "
            "newest checkpoint"
        )
    if wal.last_lsn > ckpt_lsn and wal.first_lsn > ckpt_lsn + 1:
        wal.close()
        raise RecoveryError(
            f"the WAL starts at LSN {wal.first_lsn} but checkpoint "
            f"{ckpt_path.name} only covers LSN {ckpt_lsn}; records "
            f"{ckpt_lsn + 1}..{wal.first_lsn - 1} are missing"
        )
    replayed = 0
    try:
        for record in wal.replay(start_lsn=ckpt_lsn):
            apply_record(index, record)
            replayed += 1
    except WalCorruptionError:
        wal.close()
        raise
    durable = DurableIndex(index, wal)
    report = {
        "checkpoint": ckpt_path.name,
        "checkpoint_lsn": int(ckpt_lsn),
        "backend": index.storage_info()["backend"],
        "last_lsn": int(wal.last_lsn),
        "replayed_records": int(replayed),
        "torn_tail_bytes_dropped": int(wal.torn_bytes_dropped),
        "checkpoints_skipped": skipped,
        "live_points": int(index.num_points),
        "total_rows": int(index.num_rows),
    }
    if registry is not None:
        registry.counter(
            "lazylsh_wal_replayed_records_total",
            "WAL records replayed during recovery",
        ).inc(replayed)
    return durable, report


def checkpoint_now(
    durable: DurableIndex,
    directory: str | Path,
    *,
    format_version: int | None = None,
    compress: bool = True,
) -> Path:
    """Checkpoint a durable index's home ``directory`` and prune the log."""
    directory = Path(directory)
    path = write_checkpoint(
        durable.index,
        directory / CHECKPOINT_SUBDIR,
        lsn=durable.wal.last_lsn,
        format_version=format_version,
        compress=compress,
    )
    durable.wal.truncate_through(durable.wal.last_lsn)
    return path


def _reference_index_from(directory: str | Path):
    """Fresh index equal to the recovered state — test/benchmark helper.

    Loads the *initial* (LSN 0) checkpoint and replays the entire log
    onto it in one pass, yielding the ground-truth index that any
    recovery path must match bit for bit.
    """
    directory = Path(directory)
    candidates = list_checkpoints(directory / CHECKPOINT_SUBDIR)
    if not candidates or candidates[0][0] != 0:
        raise RecoveryError(
            f"{directory} has no initial (LSN 0) checkpoint to rebuild from"
        )
    index = load_index(candidates[0][1])
    wal = WriteAheadLog(directory / WAL_SUBDIR, sync=False)
    try:
        if wal.last_lsn > 0 and wal.first_lsn > 1:
            raise RecoveryError(
                f"the WAL was pruned (starts at LSN {wal.first_lsn}); a "
                "full-history reference replay is no longer possible"
            )
        for record in wal.replay(start_lsn=0):
            apply_record(index, record)
    finally:
        wal.close()
    return index


def states_identical(a, b, *, queries: np.ndarray | None = None, k: int = 5) -> bool:
    """True when two indexes hold identical durable state (and answers).

    Compares data, tombstone masks and the inverted-list runs; when
    ``queries`` is given, also requires bit-identical kNN ids/distances.
    """
    if a.num_rows != b.num_rows or a.num_points != b.num_points:
        return False
    if not np.array_equal(a.data, b.data):
        return False
    if not np.array_equal(a._alive, b._alive):
        return False
    if not np.array_equal(a._store._values, b._store._values):
        return False
    if not np.array_equal(a._store._ids, b._store._ids):
        return False
    if queries is not None:
        for q in np.atleast_2d(queries):
            ra = a.knn(q, k, p=1.0)
            rb = b.knn(q, k, p=1.0)
            if not np.array_equal(ra.ids, rb.ids):
                return False
            if not np.array_equal(ra.distances, rb.distances):
                return False
    return True
