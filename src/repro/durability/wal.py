"""Write-ahead log: segmented, CRC-framed durability for index updates.

The WAL makes ``insert``/``remove`` mutations survive crashes.  Every
update is appended — and optionally fsynced — *before* it is applied to
the in-memory :class:`~repro.core.lazylsh.LazyLSH`, so the on-disk log
is always at least as new as the served index, and recovery can rebuild
the exact live set by replaying the log over the last checkpoint
(:mod:`repro.durability.checkpoint`).

On-disk format (DESIGN §11)
---------------------------

A log is a directory of fixed-prefix segment files::

    wal/segment-00000000000000000001.wal
    wal/segment-00000000000000000431.wal      # first LSN in the file

Each segment holds a stream of self-delimiting records::

    record := crc32(u32 LE) | body_len(u32 LE) | body
    body   := lsn(u64 LE) | op(u8) | payload

``crc32`` covers the whole body, so a torn write (power loss mid
``write``) is detected on open.  ``lsn`` is a monotonically increasing
log sequence number starting at 1 with *no gaps*; a record whose LSN is
not ``previous + 1`` is treated as corruption.  Ops:

=====  ========  ====================================================
``1``  insert    ``n(u32) d(u32) ids(n x i64) points(n*d x f64)``
``2``  remove    ``n(u32) ids(n x i64)``
=====  ========  ====================================================

Torn-tail rule: a short or CRC-failing frame at the end of the *last*
segment is the expected signature of a crash mid-append — the tail is
truncated on open and logging resumes from the last good record.  The
same damage in any earlier segment means acknowledged history was lost
(bit rot, manual truncation) and raises :class:`WalCorruptionError`
instead of being silently dropped.

``fsync`` policy: with ``sync=True`` (default) every commit fsyncs the
segment file before returning, so an acknowledged LSN survives SIGKILL
and power loss.  ``sync=False`` trades that guarantee for throughput —
the OS flushes on its own schedule — which is exactly the ingest
throughput ablation ``benchmarks/bench_wal.py`` measures.
"""

from __future__ import annotations

import logging
import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.errors import InvalidParameterError, ReproError

logger = logging.getLogger("repro.durability.wal")

#: Operation codes stored in record bodies.
OP_INSERT = 1
OP_REMOVE = 2

_OP_NAMES = {OP_INSERT: "insert", OP_REMOVE: "remove"}

#: ``crc32 | body_len`` frame header.
_FRAME = struct.Struct("<II")
#: ``lsn | op`` body header.
_BODY = struct.Struct("<QB")

#: Default segment rotation threshold (bytes).
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".wal"

#: fsync-latency buckets (seconds): SSD sub-ms to pathological seconds.
_FSYNC_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 1.0,
)


class WalCorruptionError(ReproError):
    """Acknowledged WAL history is unreadable (non-tail corruption)."""

    code = "wal_corruption"


class WalTruncatedError(ReproError):
    """The log no longer reaches back to the requested position.

    Raised by :meth:`~repro.durability.feed.WalFeed.poll` when a
    checkpoint pruned segments past the feed's resume point: the records
    between ``last_lsn`` and the oldest surviving segment are gone, so
    tailing cannot continue.  A replication consumer must re-bootstrap
    from a checkpoint at or above :attr:`first_available` instead of
    waiting for records that will never appear.
    """

    code = "wal_truncated"

    def __init__(self, requested: int, first_available: int) -> None:
        self.requested = int(requested)
        self.first_available = int(first_available)
        super().__init__(
            f"WAL truncated: records from LSN {self.requested} were "
            f"pruned by a checkpoint; the log now starts at LSN "
            f"{self.first_available} — re-bootstrap from a checkpoint"
        )

    def __reduce__(self):
        return (WalTruncatedError, (self.requested, self.first_available))


@dataclass(frozen=True)
class WalRecord:
    """One durably logged update.

    ``op`` is ``"insert"`` or ``"remove"``; ``points`` is the ``(n, d)``
    float64 matrix of an insert (``None`` for removes); ``ids`` the
    affected point ids.
    """

    lsn: int
    op: str
    ids: np.ndarray
    points: np.ndarray | None = None


def segment_name(first_lsn: int) -> str:
    """File name of the segment whose first record has ``first_lsn``."""
    return f"{_SEGMENT_PREFIX}{first_lsn:020d}{_SEGMENT_SUFFIX}"


def _segment_first_lsn(path: Path) -> int | None:
    name = path.name
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    digits = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def list_segments(directory: Path) -> list[tuple[int, Path]]:
    """``(first_lsn, path)`` of every segment file, ascending by LSN."""
    found = []
    for path in Path(directory).iterdir():
        first = _segment_first_lsn(path)
        if first is not None:
            found.append((first, path))
    found.sort()
    return found


def encode_record(lsn: int, op: int, payload: bytes) -> bytes:
    """Frame one record: CRC + length header over the body bytes."""
    body = _BODY.pack(lsn, op) + payload
    return _FRAME.pack(zlib.crc32(body) & 0xFFFFFFFF, len(body)) + body


def encode_wal_record(record: WalRecord) -> bytes:
    """One decoded :class:`WalRecord` back to its CRC-framed bytes.

    The output is byte-identical to the frame the writer appended, so a
    replication transport can ship frames verbatim and the follower can
    verify the same CRC the durable log did.
    """
    if record.op == "insert":
        assert record.points is not None
        payload = _encode_insert(
            np.asarray(record.points), np.asarray(record.ids)
        )
        return encode_record(int(record.lsn), OP_INSERT, payload)
    if record.op == "remove":
        payload = _encode_remove(np.asarray(record.ids))
        return encode_record(int(record.lsn), OP_REMOVE, payload)
    raise InvalidParameterError(f"unknown WAL op {record.op!r}")


def decode_wal_record(frame: bytes) -> WalRecord:
    """Decode one CRC-framed record (the inverse of
    :func:`encode_wal_record`).

    Raises :class:`WalCorruptionError` on a short frame, a CRC mismatch
    or an undecodable body — a wire consumer has no "torn tail" excuse,
    so every defect is fatal for the frame.
    """
    if len(frame) < _FRAME.size + _BODY.size:
        raise WalCorruptionError(
            f"WAL frame too short: {len(frame)} bytes"
        )
    crc, body_len = _FRAME.unpack_from(frame, 0)
    body = frame[_FRAME.size:_FRAME.size + body_len]
    if len(body) != body_len or _FRAME.size + body_len != len(frame):
        raise WalCorruptionError(
            f"WAL frame length mismatch: header says {body_len} body "
            f"bytes, frame carries {len(frame) - _FRAME.size}"
        )
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise WalCorruptionError("WAL frame CRC mismatch")
    try:
        return _decode_body(body)
    except (ValueError, struct.error) as exc:
        raise WalCorruptionError(f"undecodable WAL body: {exc}") from exc


def _encode_insert(points: np.ndarray, ids: np.ndarray) -> bytes:
    n, d = points.shape
    return (
        struct.pack("<II", n, d)
        + np.ascontiguousarray(ids, dtype="<i8").tobytes()
        + np.ascontiguousarray(points, dtype="<f8").tobytes()
    )


def _encode_remove(ids: np.ndarray) -> bytes:
    return (
        struct.pack("<I", ids.shape[0])
        + np.ascontiguousarray(ids, dtype="<i8").tobytes()
    )


def _decode_body(body: bytes) -> WalRecord:
    lsn, op = _BODY.unpack_from(body)
    payload = body[_BODY.size:]
    if op == OP_INSERT:
        n, d = struct.unpack_from("<II", payload)
        off = 8
        ids = np.frombuffer(payload, dtype="<i8", count=n, offset=off)
        off += 8 * n
        points = np.frombuffer(
            payload, dtype="<f8", count=n * d, offset=off
        ).reshape(n, d)
        if off + 8 * n * d != len(payload):
            raise ValueError("insert payload length mismatch")
        return WalRecord(lsn=lsn, op="insert", ids=ids.copy(), points=points.copy())
    if op == OP_REMOVE:
        (n,) = struct.unpack_from("<I", payload)
        ids = np.frombuffer(payload, dtype="<i8", count=n, offset=4)
        if 4 + 8 * n != len(payload):
            raise ValueError("remove payload length mismatch")
        return WalRecord(lsn=lsn, op="remove", ids=ids.copy())
    raise ValueError(f"unknown WAL op code {op}")


def iter_segment_records(path: Path) -> Iterator[tuple[WalRecord, int]]:
    """Yield ``(record, end_offset)`` for each intact frame in ``path``.

    Stops silently at the first torn or corrupt frame — callers decide
    whether that position is an acceptable tail (last segment) or fatal
    corruption (earlier segments, via :func:`read_segment`).
    """
    data = Path(path).read_bytes()
    offset = 0
    size = len(data)
    while True:
        if offset + _FRAME.size > size:
            return
        crc, body_len = _FRAME.unpack_from(data, offset)
        body_end = offset + _FRAME.size + body_len
        if body_len < _BODY.size or body_end > size:
            return
        body = data[offset + _FRAME.size: body_end]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            return
        try:
            record = _decode_body(body)
        except (ValueError, struct.error):
            return
        yield record, body_end
        offset = body_end


def read_segment(path: Path) -> tuple[list[WalRecord], int]:
    """All intact records of one segment plus the clean-end offset."""
    records: list[WalRecord] = []
    end = 0
    for record, offset in iter_segment_records(path):
        records.append(record)
        end = offset
    return records, end


class _WalMetrics:
    """Registry-backed WAL instruments (all optional, created lazily)."""

    def __init__(self, registry) -> None:
        self.records = registry.counter(
            "lazylsh_wal_records_total", "WAL records committed, by op"
        )
        self.bytes = registry.counter(
            "lazylsh_wal_bytes_total", "WAL bytes appended"
        )
        self.last_lsn = registry.gauge(
            "lazylsh_wal_last_lsn", "Highest committed log sequence number"
        )
        self.fsync = registry.histogram(
            "lazylsh_wal_fsync_seconds",
            "fsync latency of WAL commits",
            buckets=_FSYNC_BUCKETS,
        )
        self.truncated = registry.counter(
            "lazylsh_wal_torn_tail_bytes_total",
            "Bytes dropped by torn-tail truncation on open",
        )


class WriteAheadLog:
    """Append-only segmented log of insert/remove records.

    Parameters
    ----------
    directory:
        Log directory (created if missing).  One log per directory.
    segment_bytes:
        Rotation threshold; a segment holding at least one record rolls
        over once appending would exceed this size.
    sync:
        fsync every commit (durability) vs. leave flushing to the OS
        (throughput).  See the module docstring.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when
        given, commit counts/bytes, fsync latency and the last LSN are
        published as ``lazylsh_wal_*`` instruments.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        sync: bool = True,
        registry=None,
    ) -> None:
        if segment_bytes < 64:
            raise InvalidParameterError(
                f"segment_bytes must be >= 64, got {segment_bytes}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = int(segment_bytes)
        self.sync = bool(sync)
        self._metrics = _WalMetrics(registry) if registry is not None else None
        self._file = None
        self._file_size = 0
        self.last_lsn = 0
        self.torn_bytes_dropped = 0
        self._open_existing()

    # ------------------------------------------------------------------
    # Open / recovery scan
    # ------------------------------------------------------------------

    def _open_existing(self) -> None:
        """Scan segments, verify LSN continuity, truncate a torn tail.

        The log need not start at LSN 1 — checkpointing prunes whole
        leading segments (:meth:`truncate_through`) — but the segments
        that remain must be gap-free.
        """
        segments = list_segments(self.directory)
        self.first_lsn = segments[0][0] if segments else 1
        expected = self.first_lsn
        for idx, (first, path) in enumerate(segments):
            if first != expected:
                raise WalCorruptionError(
                    f"WAL segment {path.name} starts at LSN {first}, "
                    f"expected {expected}: a segment is missing"
                )
            records, end = read_segment(path)
            size = path.stat().st_size
            last_segment = idx == len(segments) - 1
            if end < size:
                if not last_segment:
                    raise WalCorruptionError(
                        f"WAL segment {path.name} is corrupt at offset {end} "
                        "but is not the tail segment; acknowledged history "
                        "was lost"
                    )
                dropped = size - end
                logger.warning(
                    "truncating torn tail of WAL segment %s: dropping "
                    "%d byte(s) after offset %d",
                    path.name, dropped, end,
                )
                with open(path, "r+b") as fh:
                    fh.truncate(end)
                    fh.flush()
                    os.fsync(fh.fileno())
                self.torn_bytes_dropped += dropped
                if self._metrics is not None:
                    self._metrics.truncated.inc(dropped)
            for record in records:
                if record.lsn != expected:
                    raise WalCorruptionError(
                        f"WAL segment {path.name} holds LSN {record.lsn} "
                        f"where {expected} was expected"
                    )
                expected += 1
        self.last_lsn = expected - 1
        if segments:
            logger.info(
                "opened WAL: %d segment(s), LSN range [%d, %d]",
                len(segments), self.first_lsn, self.last_lsn,
            )
        if self._metrics is not None:
            self._metrics.last_lsn.set(self.last_lsn)
        if segments:
            tail = segments[-1][1]
            self._file = open(tail, "ab")
            self._file_size = tail.stat().st_size

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------

    def _rotate(self, first_lsn: int) -> None:
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
        path = self.directory / segment_name(first_lsn)
        logger.debug("rotating WAL to segment %s", path.name)
        self._file = open(path, "ab")
        self._file_size = 0
        if self.sync:
            # Make the new directory entry itself durable.
            dir_fd = os.open(self.directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)

    def _commit(self, op: int, payload: bytes) -> int:
        if self._file is None or (
            self._file_size > 0
            and self._file_size + _FRAME.size + _BODY.size + len(payload)
            > self.segment_bytes
        ):
            self._rotate(self.last_lsn + 1)
        assert self._file is not None
        lsn = self.last_lsn + 1
        frame = encode_record(lsn, op, payload)
        self._file.write(frame)
        self._file.flush()
        if self.sync:
            t0 = time.perf_counter()
            os.fsync(self._file.fileno())
            if self._metrics is not None:
                self._metrics.fsync.observe(time.perf_counter() - t0)
        self._file_size += len(frame)
        self.last_lsn = lsn
        if self._metrics is not None:
            self._metrics.records.inc(op=_OP_NAMES[op])
            self._metrics.bytes.inc(len(frame))
            self._metrics.last_lsn.set(lsn)
        return lsn

    def append_insert(self, points: np.ndarray, ids: np.ndarray) -> int:
        """Durably log an insert of ``points`` under ``ids``; returns the LSN."""
        points = np.ascontiguousarray(np.atleast_2d(points), dtype=np.float64)
        ids = np.ascontiguousarray(np.atleast_1d(ids), dtype=np.int64)
        if points.ndim != 2 or ids.shape != (points.shape[0],):
            raise InvalidParameterError(
                f"insert record needs (n, d) points and n ids, got "
                f"{points.shape} / {ids.shape}"
            )
        return self._commit(OP_INSERT, _encode_insert(points, ids))

    def append_remove(self, ids: np.ndarray) -> int:
        """Durably log a removal of ``ids``; returns the LSN."""
        ids = np.ascontiguousarray(np.atleast_1d(ids), dtype=np.int64)
        if ids.ndim != 1 or ids.size == 0:
            raise InvalidParameterError(
                f"remove record needs a non-empty 1-D id array, got shape "
                f"{ids.shape}"
            )
        return self._commit(OP_REMOVE, _encode_remove(ids))

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def replay(self, start_lsn: int = 0) -> Iterator[WalRecord]:
        """Yield every committed record with ``lsn > start_lsn`` in order."""
        segments = list_segments(self.directory)
        for idx, (first, path) in enumerate(segments):
            # Skip segments wholly below start_lsn: the next segment's
            # first LSN bounds this one's last record.
            if idx + 1 < len(segments) and segments[idx + 1][0] <= start_lsn + 1:
                continue
            for record, _offset in iter_segment_records(path):
                if record.lsn > start_lsn:
                    yield record

    def truncate_through(self, lsn: int) -> int:
        """Delete whole segments made obsolete by a checkpoint at ``lsn``.

        A segment can be dropped when every record it holds has
        ``lsn <= lsn`` — i.e. the *next* segment starts at or below
        ``lsn + 1``.  The active tail segment is never deleted.  Returns
        the number of segments removed.
        """
        segments = list_segments(self.directory)
        removed = 0
        for idx, (first, path) in enumerate(segments):
            is_tail = idx == len(segments) - 1
            if is_tail:
                break
            next_first = segments[idx + 1][0]
            if next_first <= lsn + 1:
                path.unlink()
                removed += 1
        return removed

    def close(self) -> None:
        """Flush, fsync and close the active segment (idempotent)."""
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class DurableIndex:
    """A :class:`LazyLSH` whose mutations are journaled before applying.

    The write path is strict WAL discipline: validate the mutation
    read-only, append it to the log (fsync per the log's policy), then
    apply it to the in-memory index.  A crash between commit and apply
    is repaired by recovery replay; a validation failure leaves both the
    log and the index untouched.

    Query methods (``knn``, ``range_query``, ...) are delegated to the
    wrapped index unchanged.

    Listeners registered with :meth:`subscribe` are called with each
    committed :class:`WalRecord` *after* it is applied — this is how a
    same-process :class:`~repro.serve.ShardedSearchService` receives
    live updates without tailing the log through the filesystem.
    """

    def __init__(self, index, wal: WriteAheadLog) -> None:
        if not getattr(index, "is_built", False):
            raise InvalidParameterError(
                "DurableIndex wraps a built LazyLSH; call build(data) first"
            )
        self.index = index
        self.wal = wal
        self._listeners: list[Callable[[WalRecord], None]] = []

    # -- mutation (journal-then-apply) ---------------------------------

    def insert(self, points: np.ndarray) -> np.ndarray:
        """Journal then apply an insert; returns the new ids."""
        points = self.index._validate_insert(points)
        start = self.index.num_rows
        ids = np.arange(start, start + points.shape[0], dtype=np.int64)
        lsn = self.wal.append_insert(points, ids)
        applied = self.index.insert(points)
        if not np.array_equal(applied, ids):  # pragma: no cover - invariant
            raise ReproError(
                f"WAL/index id divergence: logged {ids[:3]}..., index "
                f"assigned {applied[:3]}..."
            )
        self._notify(WalRecord(lsn=lsn, op="insert", ids=ids, points=points))
        return ids

    def remove(self, point_ids) -> None:
        """Journal then apply a removal (validated read-only first)."""
        ids = self.index._validate_remove(point_ids)
        if ids.size == 0:
            return
        lsn = self.wal.append_remove(ids)
        self.index.remove(ids)
        self._notify(WalRecord(lsn=lsn, op="remove", ids=ids))

    def _notify(self, record: WalRecord) -> None:
        for listener in self._listeners:
            listener(record)

    def subscribe(self, listener: Callable[[WalRecord], None]) -> None:
        """Register a callback invoked after every committed record."""
        self._listeners.append(listener)

    # -- checkpointing --------------------------------------------------

    def checkpoint(
        self,
        directory: str | Path,
        *,
        format_version: int | None = None,
        compress: bool = True,
    ) -> Path:
        """Compact the log into a snapshot (see ``repro.durability.checkpoint``)."""
        from repro.durability.checkpoint import write_checkpoint

        path = write_checkpoint(
            self.index,
            directory,
            lsn=self.wal.last_lsn,
            format_version=format_version,
            compress=compress,
        )
        self.wal.truncate_through(self.wal.last_lsn)
        return path

    # -- delegation -----------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """LSN of the newest committed record."""
        return self.wal.last_lsn

    @property
    def is_built(self) -> bool:
        return self.index.is_built

    @property
    def num_points(self) -> int:
        return self.index.num_points

    @property
    def num_rows(self) -> int:
        return self.index.num_rows

    def knn(self, *args, **kwargs):
        return self.index.knn(*args, **kwargs)

    def range_query(self, *args, **kwargs):
        return self.index.range_query(*args, **kwargs)

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "DurableIndex":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def apply_record(index, record: WalRecord) -> None:
    """Apply one replayed WAL record to a built index (recovery path)."""
    if record.op == "insert":
        start = index.num_rows
        expected = np.arange(
            start, start + record.ids.shape[0], dtype=np.int64
        )
        if not np.array_equal(record.ids, expected):
            raise WalCorruptionError(
                f"replayed insert at LSN {record.lsn} carries ids "
                f"[{record.ids[0]}..] but the index would assign "
                f"[{start}..]: log and checkpoint disagree"
            )
        index.insert(record.points)
    elif record.op == "remove":
        index.remove(record.ids)
    else:  # pragma: no cover - decoder rejects unknown ops
        raise WalCorruptionError(f"unknown op {record.op!r} at LSN {record.lsn}")
