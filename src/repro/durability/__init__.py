"""Durable update plane: WAL, checkpoint/recovery, live update feed.

See DESIGN §11.  The write path is journal-then-apply
(:class:`DurableIndex` over :class:`WriteAheadLog`), the compaction path
is atomic checkpoints stamped with the covered LSN
(:mod:`repro.durability.checkpoint`), and the propagation path is a
read-only log tailer (:class:`WalFeed`) feeding the sharded service's
``ingest``.
"""

from repro.durability.checkpoint import (
    CHECKPOINT_SUBDIR,
    WAL_SUBDIR,
    RecoveryError,
    checkpoint_now,
    create,
    latest_checkpoint,
    list_checkpoints,
    recover,
    write_checkpoint,
)
from repro.durability.feed import WalFeed
from repro.durability.wal import (
    DurableIndex,
    WalCorruptionError,
    WalRecord,
    WalTruncatedError,
    WriteAheadLog,
    apply_record,
    decode_wal_record,
    encode_wal_record,
)

__all__ = [
    "CHECKPOINT_SUBDIR",
    "WAL_SUBDIR",
    "DurableIndex",
    "RecoveryError",
    "WalCorruptionError",
    "WalFeed",
    "WalRecord",
    "WalTruncatedError",
    "WriteAheadLog",
    "apply_record",
    "checkpoint_now",
    "create",
    "decode_wal_record",
    "encode_wal_record",
    "latest_checkpoint",
    "list_checkpoints",
    "recover",
    "write_checkpoint",
]
