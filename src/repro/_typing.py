"""Shared type aliases used across the :mod:`repro` package."""

from __future__ import annotations

from typing import Union

import numpy as np
import numpy.typing as npt

#: A dense matrix of points, shape ``(n, d)``.
PointMatrix = npt.NDArray[np.floating]

#: A single point, shape ``(d,)``.
PointVector = npt.NDArray[np.floating]

#: Integer identifiers of points (row indices into the dataset).
IdArray = npt.NDArray[np.integer]

#: Anything accepted as a random seed by :func:`numpy.random.default_rng`.
SeedLike = Union[int, np.random.Generator, None]


def as_rng(seed: SeedLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged so callers can share RNG state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
