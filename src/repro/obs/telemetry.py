"""Telemetry facade: one object wiring traces, metrics and spans together.

Passing a :class:`Telemetry` to any query entry point (``LazyLSH.knn``,
``MultiQueryEngine.knn``, ``knn_batch``, the CLI, the benchmark harness)
turns on per-query :class:`~repro.obs.query_trace.QueryTrace` capture and
keeps the standard instrument set updated:

======================================  =========  =============================
metric                                  kind       labels
======================================  =========  =============================
``lazylsh_queries_total``               counter    ``engine``, ``p``
``lazylsh_query_terminations_total``    counter    ``reason``
``lazylsh_query_rounds``                histogram  —
``lazylsh_query_candidates``            histogram  —
``lazylsh_query_io_sequential``         histogram  —
``lazylsh_query_io_random``             histogram  —
``lazylsh_query_latency_seconds``       histogram  —
======================================  =========  =============================

An optional :class:`~repro.obs.slowlog.SlowQueryLog` can be attached at
construction; :meth:`Telemetry.record` offers every finished trace to
it, so slow-query capture rides the same single chokepoint as the
instrument updates and core modules never touch the log directly.

When no telemetry object is passed (the default), the engines run a
no-op fast path: the only residue is one ``is None`` check per hook
site, keeping the disabled-telemetry overhead within the documented
<= 3% budget on the acceptance workload.

:meth:`Telemetry.observe_store` additionally attaches a
:class:`StoreObserver` to an :class:`~repro.storage.inverted_index.
InvertedListStore`, counting window searches, gathers and scanned
entries at the storage layer.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import InvalidParameterError
from repro.obs.query_trace import (
    QueryTrace,
    QueryTraceBuilder,
    write_traces_jsonl,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace_context import TraceContext, TraceStore, active_context
from repro.obs.tracer import SpanTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.flight_recorder import FlightRecorder
    from repro.obs.workload import WorkloadAnalytics

#: Rehashing rounds per query; the engine caps rounds at 128.
ROUND_BUCKETS = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128)

#: Candidate / I/O magnitudes; geometric so one histogram spans toy
#: tests and the million-point north-star workloads.
COUNT_BUCKETS = (
    1,
    4,
    16,
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
)

#: Wall-clock latency buckets (seconds); sub-millisecond toy queries up
#: to multi-second million-point scans.
LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class StoreObserver:
    """Storage-layer counters for an :class:`InvertedListStore`.

    Attached via :meth:`Telemetry.observe_store`; every hook is one
    counter increment, and a detached store (``observer = None``) pays a
    single ``is None`` check per storage call.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.searches = registry.counter(
            "lazylsh_store_searches_total",
            "Batched window-endpoint searches answered by the store",
        )
        self.windows = registry.counter(
            "lazylsh_store_window_reads_total",
            "Scalar window/ring reads answered by the store",
        )
        self.entries = registry.counter(
            "lazylsh_store_entries_scanned_total",
            "Inverted-list entries scanned (gathered or window-read)",
        )

    def on_search(self, needles: int) -> None:
        self.searches.inc(needles)

    def on_window_read(self, entries: int) -> None:
        self.windows.inc()
        self.entries.inc(entries)

    def on_gather(self, entries: int) -> None:
        self.entries.inc(entries)


class Telemetry:
    """Aggregates a metrics registry, a span tracer and captured traces.

    Parameters
    ----------
    registry:
        Metrics registry to write into; a fresh private one by default.
        Pass :func:`repro.obs.get_default_registry` to aggregate across
        several telemetry objects process-wide.
    tracer:
        Span tracer for harness-level profiling sections; fresh by
        default.
    capture_traces:
        Keep every recorded :class:`QueryTrace` in :attr:`traces`
        (default).  Disable for long-running servers that only want the
        registry aggregates.
    slowlog:
        Optional :class:`SlowQueryLog`; every recorded trace is offered
        to it (the log applies its own thresholds).
    trace_store:
        Optional :class:`~repro.obs.trace_context.TraceStore`; finished
        distributed traces are published here (via
        :meth:`finish_trace`) for ``/trace/<id>`` and flight-recorder
        bundles.
    trace_sample:
        Head-sampling probability in ``[0, 1]`` used by
        :meth:`maybe_sample_context` when a request arrives without its
        own trace context.  0 (default) mints no contexts — requests
        are only traced when the caller supplies one.
    flight_recorder:
        Optional :class:`~repro.obs.flight_recorder.FlightRecorder`;
        tripped with reason ``slowlog_admission`` whenever the slow-query
        log admits a trace.
    workload:
        Optional :class:`~repro.obs.workload.WorkloadAnalytics`; when
        attached, :meth:`record` feeds each query's digest, base
        bucket and ``(p, k)`` into the heavy-hitter sketches (callers
        supply ``query_digest``/``bucket`` — the service does).
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
        capture_traces: bool = True,
        slowlog: SlowQueryLog | None = None,
        trace_store: TraceStore | None = None,
        trace_sample: float = 0.0,
        flight_recorder: "FlightRecorder | None" = None,
        workload: "WorkloadAnalytics | None" = None,
    ) -> None:
        if not 0.0 <= trace_sample <= 1.0:
            raise InvalidParameterError(
                f"trace_sample must be in [0, 1], got {trace_sample}"
            )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer()
        self.capture_traces = capture_traces
        self.slowlog = slowlog
        self.trace_store = trace_store
        self.trace_sample = float(trace_sample)
        self.flight_recorder = flight_recorder
        self.workload = workload
        self._sampler = random.Random(0xC0FFEE)
        self.traces: list[QueryTrace] = []
        self._auto_query_id = 0
        reg = self.registry
        self._queries = reg.counter(
            "lazylsh_queries_total", "Queries served"
        )
        self._terminations = reg.counter(
            "lazylsh_query_terminations_total",
            "Queries by Algorithm 4 termination reason",
        )
        self._rounds = reg.histogram(
            "lazylsh_query_rounds",
            "Rehashing rounds per query",
            buckets=ROUND_BUCKETS,
        )
        self._candidates = reg.histogram(
            "lazylsh_query_candidates",
            "Candidates verified per query",
            buckets=COUNT_BUCKETS,
        )
        self._io_sequential = reg.histogram(
            "lazylsh_query_io_sequential",
            "Simulated sequential I/Os per query",
            buckets=COUNT_BUCKETS,
        )
        self._io_random = reg.histogram(
            "lazylsh_query_io_random",
            "Simulated random I/Os per query",
            buckets=COUNT_BUCKETS,
        )
        self._latency = reg.histogram(
            "lazylsh_query_latency_seconds",
            "Wall-clock query latency",
            buckets=LATENCY_BUCKETS,
        )
        self._deadline_overruns = reg.counter(
            "lazylsh_deadline_overruns_total",
            "Requests that finished past their advisory deadline_ms",
        )

    # -- distributed tracing --------------------------------------------

    def maybe_sample_context(
        self, context: TraceContext | None = None
    ) -> TraceContext | None:
        """The request's effective trace context, or None when untraced.

        A caller-supplied sampled context always wins; without one, a
        fresh root context is minted with probability
        :attr:`trace_sample`.  The serving layer calls this once per
        request and threads the result everywhere.
        """
        ctx = active_context(context)
        if ctx is not None:
            return ctx
        if self.trace_sample > 0 and (
            self.trace_sample >= 1.0
            or self._sampler.random() < self.trace_sample
        ):
            return TraceContext.new()
        return None

    def note_deadline_overrun(
        self,
        *,
        deadline_ms: float,
        elapsed_seconds: float,
        where: str,
        request_id: str | None = None,
    ) -> None:
        """Count a deadline overrun and trip the flight recorder.

        Deadlines are advisory (results are never truncated — they stay
        bit-identical), so this is the entire enforcement story: a
        counter, a trigger, and the ``deadline_exceeded`` flag the
        caller sets on the result.
        """
        self._deadline_overruns.inc(where=where)
        if self.flight_recorder is not None:
            self.flight_recorder.trigger(
                "deadline_overrun",
                where=where,
                deadline_ms=deadline_ms,
                elapsed_ms=elapsed_seconds * 1000.0,
                request_id=request_id,
            )

    def finish_trace(self, context: TraceContext | None) -> list[dict]:
        """Move one finished trace's spans into the trace store.

        Called after the request's root span closed.  Pops the trace's
        spans off the tracer (bounding tracer memory on long-running
        servers) and publishes them to :attr:`trace_store` when one is
        attached.  Returns the span dicts either way.
        """
        if context is None:
            return []
        spans = self.tracer.pop_trace(context.trace_id)
        records = [span.to_dict() for span in spans]
        if self.trace_store is not None and records:
            self.trace_store.add(context.trace_id, records)
        return records

    # -- query traces ---------------------------------------------------

    def query_trace_builder(
        self,
        *,
        p: float,
        k: int,
        engine: str,
        rehashing: str,
        query_id: int | None = None,
    ) -> QueryTraceBuilder:
        """A builder the engines thread through one query's execution."""
        if query_id is None:
            query_id = self._auto_query_id
            self._auto_query_id += 1
        else:
            self._auto_query_id = max(self._auto_query_id, query_id + 1)
        return QueryTraceBuilder(
            p=p, k=k, engine=engine, rehashing=rehashing, query_id=query_id
        )

    def record(
        self,
        trace: QueryTrace,
        *,
        shard_io=None,
        request_id: str | None = None,
        trace_id: str | None = None,
        query_digest: str | None = None,
        bucket: bytes | None = None,
    ) -> QueryTrace:
        """Fold one finished trace into the registry (and keep it).

        ``shard_io`` is the per-shard I/O list of a sharded run; it is
        only forwarded to the slow-query log (the registry's per-shard
        series are fed by the service itself).  ``request_id`` /
        ``trace_id`` ride into the slowlog entry so a slow query links
        to its ``/trace/<id>`` tree; ``query_digest`` / ``bucket``
        feed the attached :class:`WorkloadAnalytics` when present.
        """
        self._queries.inc(engine=trace.engine, p=f"{trace.p:g}")
        self._terminations.inc(reason=trace.termination)
        self._rounds.observe(trace.num_rounds)
        self._candidates.observe(trace.candidates)
        self._io_sequential.observe(trace.io.sequential)
        self._io_random.observe(trace.io.random)
        self._latency.observe(trace.elapsed_seconds)
        if self.workload is not None and query_digest is not None:
            self.workload.observe_query(
                digest=query_digest,
                bucket=bucket if bucket is not None else b"",
                p=trace.p,
                k=trace.k,
            )
        if self.slowlog is not None:
            admitted = self.slowlog.offer(
                trace,
                shard_io=shard_io,
                request_id=request_id,
                trace_id=trace_id,
            )
            if admitted and self.flight_recorder is not None:
                self.flight_recorder.trigger(
                    "slowlog_admission",
                    query_id=trace.query_id,
                    elapsed_seconds=trace.elapsed_seconds,
                    engine=trace.engine,
                    request_id=request_id,
                    trace_id=trace_id,
                )
        if self.capture_traces:
            self.traces.append(trace)
        return trace

    def export_traces_jsonl(self, path: str | Path) -> Path:
        """Write the captured traces as JSONL."""
        return write_traces_jsonl(self.traces, path)

    # -- storage hooks --------------------------------------------------

    def observe_store(self, store) -> StoreObserver:
        """Attach storage-layer counters to ``store`` (and return them).

        Detach with ``store.observer = None``.
        """
        observer = StoreObserver(self.registry)
        store.observer = observer
        return observer

    # -- export ---------------------------------------------------------

    def metrics_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        return self.registry.render_prometheus()

    def metrics_dict(self) -> dict:
        """The registry as a JSON-serialisable dict."""
        return self.registry.to_dict()

    def summary(self) -> dict:
        """Compact run summary derived from the captured traces."""
        total = {"sequential": 0, "random": 0}
        reasons: dict[str, int] = {}
        rounds = 0
        candidates = 0
        for trace in self.traces:
            total["sequential"] += trace.io.sequential
            total["random"] += trace.io.random
            reasons[trace.termination] = reasons.get(trace.termination, 0) + 1
            rounds += trace.num_rounds
            candidates += trace.candidates
        return {
            "queries": len(self.traces),
            "io": total,
            "terminations": reasons,
            "rounds": rounds,
            "candidates": candidates,
        }
