"""Incident flight recorder: auto-dumped diagnostic bundles.

A long-running fleet that misbehaves for three seconds at 2 a.m. leaves
nothing behind: by the time someone scrapes ``/metrics`` the slow wave
is gone and the traces have been evicted.  The :class:`FlightRecorder`
closes that gap.  It keeps references to the live observability state —
the metrics registry, the bounded :class:`~repro.obs.trace_context.
TraceStore` of recent traces, the slow-query log, an optional health
callable — and on a *trigger event* freezes all of it into one
JSON bundle ("what the process knew at the moment things went wrong").

Trigger events (DESIGN §13) are wired by their owning subsystems:

* ``slowlog_admission`` — :meth:`Telemetry.record` when the slow-query
  log admits a query;
* ``guarantee_violation`` — the :class:`~repro.obs.auditor.
  GuaranteeAuditor` when a Theorem-1 violation episode *starts*;
* ``worker_respawn`` — the sharded service after repairing a dead
  worker;
* ``deadline_overrun`` — the serving layer when a request with a
  ``deadline_ms`` overruns it.

Dumps are debounced per reason (``min_interval_seconds``) so a burst of
slow queries produces one bundle, not hundreds; every trigger —
dumped or debounced — is counted in
``lazylsh_flight_dumps_total{reason=...}`` /
``lazylsh_flight_triggers_total{reason=...}``.  With ``dump_dir`` set,
bundles are written as ``flight_<seq>_<reason>.json``; without it they
stay in the in-memory :attr:`bundles` ring (newest last), which tests
and the obs-smoke gate read directly.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.errors import InvalidParameterError
from repro.obs.registry import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace_context import TraceStore

logger = logging.getLogger(__name__)

#: Trigger reasons the recorder expects; unknown reasons are accepted
#: (forward compatibility) but these are the wired ones.
KNOWN_REASONS = (
    "slowlog_admission",
    "guarantee_violation",
    "worker_respawn",
    "deadline_overrun",
    "manual",
)


class FlightRecorder:
    """Bounded ring of diagnostic bundles, dumped on trigger events.

    Thread safety: triggers arrive from the query thread (slowlog,
    deadline), the auditor's daemon thread and the serving repair path;
    one lock serialises bundle construction and the debounce bookkeeping.
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry,
        trace_store: TraceStore | None = None,
        slowlog: SlowQueryLog | None = None,
        health: Callable[[], dict] | None = None,
        dump_dir: str | Path | None = None,
        capacity: int = 16,
        min_interval_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                f"flight recorder capacity must be >= 1, got {capacity}"
            )
        if min_interval_seconds < 0:
            raise InvalidParameterError(
                "flight recorder min_interval_seconds must be >= 0, "
                f"got {min_interval_seconds}"
            )
        self.registry = registry
        self.trace_store = trace_store
        self.slowlog = slowlog
        self.health = health
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self.capacity = int(capacity)
        self.min_interval = float(min_interval_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._last_dump: dict[str, float] = {}
        self._seq = 0
        #: In-memory ring of dumped bundles, oldest first.
        self.bundles: list[dict] = []
        self._c_triggers = registry.counter(
            "lazylsh_flight_triggers_total",
            "Flight-recorder trigger events by reason (incl. debounced)",
        )
        self._c_dumps = registry.counter(
            "lazylsh_flight_dumps_total",
            "Flight-recorder bundles dumped by reason",
        )
        if self.dump_dir is not None:
            self.dump_dir.mkdir(parents=True, exist_ok=True)

    def trigger(self, reason: str, **detail: Any) -> dict | None:
        """Record a trigger event; dump a bundle unless debounced.

        Returns the bundle dict when one was dumped, None when the
        per-reason debounce suppressed it.  Never raises out of the
        dump path — the recorder must not take down the query path it
        is observing.
        """
        self._c_triggers.inc(reason=reason)
        now = self._clock()
        with self._lock:
            last = self._last_dump.get(reason)
            if last is not None and now - last < self.min_interval:
                return None
            self._last_dump[reason] = now
            self._seq += 1
            seq = self._seq
        try:
            bundle = self._build_bundle(reason, seq, detail)
        except Exception:  # pragma: no cover - defensive
            logger.exception("flight recorder failed to build bundle")
            return None
        with self._lock:
            self.bundles.append(bundle)
            while len(self.bundles) > self.capacity:
                self.bundles.pop(0)
        self._c_dumps.inc(reason=reason)
        path = self._write_bundle(bundle)
        logger.warning(
            "flight recorder dumped bundle #%d (reason=%s%s)",
            seq,
            reason,
            f", file={path}" if path else "",
        )
        return bundle

    def _build_bundle(self, reason: str, seq: int, detail: dict) -> dict:
        bundle: dict[str, Any] = {
            "seq": seq,
            "reason": reason,
            "detail": detail,
            "dumped_at_unix": time.time(),
            "metrics": self.registry.to_dict(),
        }
        if self.trace_store is not None:
            bundle["traces"] = self.trace_store.to_dicts()
            bundle["trace_store"] = self.trace_store.stats()
        if self.slowlog is not None:
            bundle["slowlog"] = self.slowlog.to_dicts()
        if self.health is not None:
            try:
                bundle["health"] = self.health()
            except Exception as exc:  # pragma: no cover - defensive
                bundle["health"] = {"error": type(exc).__name__}
        return bundle

    def _write_bundle(self, bundle: dict) -> Path | None:
        if self.dump_dir is None:
            return None
        path = self.dump_dir / f"flight_{bundle['seq']:04d}_{bundle['reason']}.json"
        try:
            with path.open("w", encoding="utf-8") as fh:
                json.dump(bundle, fh, indent=2, default=str)
        except OSError:  # pragma: no cover - disk full etc.
            logger.exception("flight recorder failed to write %s", path)
            return None
        return path

    def stats(self) -> dict:
        """Trigger/dump counts and ring occupancy (for ``repro top``)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "bundles": len(self.bundles),
                "seq": self._seq,
                "last_reasons": [b["reason"] for b in self.bundles[-5:]],
            }
