"""Ring-buffer slow-query log.

A production service cannot keep every :class:`~repro.obs.query_trace.
QueryTrace` — the north-star workload serves millions of queries — but
the *interesting* traces are exactly the ones that blow past a latency
or I/O budget.  :class:`SlowQueryLog` keeps the last ``capacity``
offending queries in a fixed-size ring, each entry carrying the full
trace dict plus (for sharded runs) the per-shard random-I/O breakdown,
so an operator can ask "what did the slowest recent queries actually
do, round by round?" without a tracing backend.

The log is wired through :meth:`repro.obs.telemetry.Telemetry.record`
— the single chokepoint every engine (scalar, flat, batch, sharded
service) already funnels finished traces through — so core modules
never import it directly and the no-telemetry fast path stays a single
``is None`` check per query.

Thread safety: ``offer`` and the read methods take one lock, so the
exporter thread can serve ``/slowlog`` while the query thread appends.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.errors import InvalidParameterError
from repro.obs.query_trace import QueryTrace


class SlowQueryLog:
    """Fixed-capacity ring of slow-query records.

    Parameters
    ----------
    capacity:
        Maximum retained entries; the oldest entry is evicted first.
    latency_threshold_seconds:
        Capture queries whose ``elapsed_seconds`` meets or exceeds this.
    io_threshold:
        Capture queries whose total simulated I/O (sequential + random)
        meets or exceeds this.

    A query is captured when it crosses *either* threshold.  With both
    thresholds ``None`` every offered query is captured — useful for
    tests and 100%-sampled smoke runs.
    """

    def __init__(
        self,
        capacity: int = 128,
        *,
        latency_threshold_seconds: float | None = None,
        io_threshold: int | None = None,
    ) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                f"slow-query log capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self.latency_threshold_seconds = latency_threshold_seconds
        self.io_threshold = io_threshold
        self._entries: list[dict] = []
        self._next = 0  # ring write position once the buffer is full
        self._offered = 0
        self._captured = 0
        self._lock = threading.Lock()

    # -- write side ------------------------------------------------------

    def _qualifies(self, trace: QueryTrace) -> bool:
        lat = self.latency_threshold_seconds
        io = self.io_threshold
        if lat is None and io is None:
            return True
        if lat is not None and trace.elapsed_seconds >= lat:
            return True
        if io is not None and (trace.io.sequential + trace.io.random) >= io:
            return True
        return False

    def offer(
        self,
        trace: QueryTrace,
        *,
        shard_io: Any = None,
        request_id: str | None = None,
        trace_id: str | None = None,
    ) -> bool:
        """Consider one finished trace; capture it if it is slow.

        ``shard_io`` is the sharded service's per-shard
        :class:`~repro.storage.io_stats.IOStats` list (None for
        single-process engines).  ``request_id`` / ``trace_id`` link
        the entry back to its request and its ``/trace/<id>`` span
        tree when the query ran under a sampled trace context, so a
        slow query found in ``/slowlog`` is one hop from its full
        cross-process timeline.  Returns True when captured.
        """
        with self._lock:
            self._offered += 1
            if not self._qualifies(trace):
                return False
            entry = {
                "captured_at": time.time(),
                "query_id": trace.query_id,
                "request_id": request_id,
                "trace_id": trace_id,
                "elapsed_seconds": trace.elapsed_seconds,
                "io": trace.io.to_dict(),
                "trace": trace.to_dict(),
                "shard_io": (
                    None
                    if shard_io is None
                    else [io.to_dict() for io in shard_io]
                ),
            }
            if len(self._entries) < self.capacity:
                self._entries.append(entry)
            else:
                self._entries[self._next] = entry
                self._next = (self._next + 1) % self.capacity
            self._captured += 1
            return True

    def clear(self) -> None:
        """Drop all captured entries (thresholds and stats are kept)."""
        with self._lock:
            self._entries.clear()
            self._next = 0

    # -- read side -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def to_dicts(self) -> list[dict]:
        """Captured entries, oldest first (JSON-serialisable)."""
        with self._lock:
            if len(self._entries) < self.capacity:
                return list(self._entries)
            return self._entries[self._next:] + self._entries[: self._next]

    def stats(self) -> dict:
        """Offer/capture counters and the active thresholds."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "offered": self._offered,
                "captured": self._captured,
                "latency_threshold_seconds": self.latency_threshold_seconds,
                "io_threshold": self.io_threshold,
            }
