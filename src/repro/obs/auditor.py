"""Online guarantee auditor: live recall vs the Theorem 1 bound.

LazyLSH's whole pitch — one l1 index answering kNN under every
``lp, p in [0.5, 1]`` — rests on Theorem 1: each query succeeds (every
reported i-th neighbour is within ``c`` times the true i-th distance)
with probability at least ``1/2 - beta``.  That guarantee is proven for
the hash family, not observed; a served index whose data drifted, whose
parameters were mis-tuned, or whose shards lost rows would silently
degrade.  :class:`GuaranteeAuditor` closes the loop: it Bernoulli-
samples live queries at a configurable rate, re-answers each sample
*exactly* by linear scan (:class:`~repro.baselines.linear_scan.
LinearScan`) on a background thread, and publishes rolling quality
gauges next to the serving metrics:

==========================================  =======  ====================
metric                                      kind     meaning
==========================================  =======  ====================
``lazylsh_audit_recall_at_k``               gauge    rolling mean recall@k
``lazylsh_audit_overall_ratio``             gauge    rolling mean ratio
``lazylsh_audit_success_rate``              gauge    fraction of sampled
                                                     queries meeting the
                                                     c-approximation
``lazylsh_audit_guarantee_bound``           gauge    ``max(0, 1/2 - beta)``
``lazylsh_audit_samples_total``             counter  audited queries
``lazylsh_audit_dropped_total``             counter  samples shed (queue
                                                     full)
``lazylsh_audit_alerts_total``              counter  bound violations
==========================================  =======  ====================

When the rolling success rate (after ``min_samples`` audits) drops
below the bound, the auditor logs one warning per violation episode and
bumps the alert counter — the operator-facing signal that the served
quality no longer matches the theory.

The audit path is deliberately *off* the query path: ``observe`` does
an O(1) coin flip plus a non-blocking queue put; the linear scans run
on a daemon thread (``background=False`` audits inline, for tests).
"""

from __future__ import annotations

import logging
import queue
import threading
from collections import deque
from typing import Any

import numpy as np

from repro.baselines.linear_scan import LinearScan
from repro.errors import InvalidParameterError
from repro.eval.ratio import overall_ratio
from repro.eval.recall import recall_at_k
from repro.obs.registry import MetricsRegistry

logger = logging.getLogger("repro.obs.auditor")

#: Relative slack on the c-approximation check, absorbing float64
#: round-off between the engine's and the oracle's distance kernels.
_SUCCESS_EPS = 1e-9


class GuaranteeAuditor:
    """Samples served queries and audits them against exact linear scan.

    Parameters
    ----------
    index:
        The live :class:`~repro.core.lazylsh.LazyLSH` index.  The
        auditor snapshots its alive rows at construction; rebuild the
        auditor after compaction/removals.
    registry:
        Metrics registry the audit gauges are published into; a fresh
        private one by default (pass the serving telemetry's registry
        so ``/metrics`` carries the audit series).
    sample_rate:
        Bernoulli probability of auditing each observed query, in
        [0, 1].  1.0 audits everything (smoke runs); production rates
        are typically <= 0.01 since each audit is a full linear scan.
    window:
        Rolling window length (audited queries) for the gauges.
    min_samples:
        Violation alerts stay quiet until this many audits landed, so
        one unlucky early sample cannot page anyone.
    queue_size:
        Bound on the audit backlog; excess samples are shed (and
        counted) rather than blocking the query path.
    seed:
        Seed for the sampling coin.
    background:
        Run audits on a daemon thread (default).  ``False`` audits
        synchronously inside :meth:`observe` — deterministic for tests.
    flight_recorder:
        Optional :class:`~repro.obs.flight_recorder.FlightRecorder`;
        tripped with reason ``guarantee_violation`` when a violation
        episode *starts* (once per episode, like the alert counter).
    """

    def __init__(
        self,
        index: Any,
        *,
        registry: MetricsRegistry | None = None,
        sample_rate: float = 0.01,
        window: int = 256,
        min_samples: int = 8,
        queue_size: int = 64,
        seed: int = 0,
        background: bool = True,
        flight_recorder: Any = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise InvalidParameterError(
                f"sample_rate must lie in [0, 1], got {sample_rate}"
            )
        if window < 1:
            raise InvalidParameterError(f"window must be >= 1, got {window}")
        self.sample_rate = float(sample_rate)
        self.min_samples = int(min_samples)
        self.c = float(index.config.c)
        self.bound = max(0.0, 0.5 - float(index.beta))
        # Oracle over the live rows only; tombstoned rows must not count
        # as "true" neighbours the approximate engine missed.
        self._alive_ids = np.flatnonzero(index._alive).astype(np.int64)
        self._oracle = LinearScan(index.data[self._alive_ids])
        self._rng = np.random.default_rng(seed)
        self._window: deque[dict] = deque(maxlen=int(window))
        self._lock = threading.Lock()
        self._in_violation = False
        self.flight_recorder = flight_recorder

        reg = registry if registry is not None else MetricsRegistry()
        self.registry = reg
        self._g_recall = reg.gauge(
            "lazylsh_audit_recall_at_k",
            "Rolling mean recall@k of audited queries vs exact linear scan",
        )
        self._g_ratio = reg.gauge(
            "lazylsh_audit_overall_ratio",
            "Rolling mean overall ratio of audited queries (1.0 = exact)",
        )
        self._g_success = reg.gauge(
            "lazylsh_audit_success_rate",
            "Fraction of audited queries meeting the c-approximation",
        )
        self._g_bound = reg.gauge(
            "lazylsh_audit_guarantee_bound",
            "Theorem 1 per-query success probability bound (1/2 - beta)",
        )
        self._g_bound.set(self.bound)
        self._c_samples = reg.counter(
            "lazylsh_audit_samples_total", "Queries audited by linear scan"
        )
        self._c_successes = reg.counter(
            "lazylsh_audit_successes_total",
            "Audited queries meeting the c-approximation (SLO SLI numerator)",
        )
        self._c_dropped = reg.counter(
            "lazylsh_audit_dropped_total",
            "Sampled queries shed because the audit queue was full",
        )
        self._c_alerts = reg.counter(
            "lazylsh_audit_alerts_total",
            "Episodes where the rolling success rate undercut the bound",
        )

        self._queue: queue.Queue | None = None
        self._thread: threading.Thread | None = None
        if background:
            self._queue = queue.Queue(maxsize=int(queue_size))
            self._thread = threading.Thread(
                target=self._worker,
                args=(self._queue,),
                name="guarantee-auditor",
                daemon=True,
            )
            self._thread.start()

    # -- query-path hook -------------------------------------------------

    def observe(
        self,
        query: np.ndarray,
        *,
        k: int,
        p: float,
        ids: np.ndarray,
        distances: np.ndarray,
    ) -> bool:
        """Offer one served query for auditing.

        ``ids``/``distances`` are the engine's reported neighbours
        (ascending).  Returns True when the query was sampled (it may
        still be shed if the audit queue is full).
        """
        if self.sample_rate <= 0.0:
            return False
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            return False
        item = {
            "query": np.array(query, dtype=np.float64, copy=True),
            "k": int(k),
            "p": float(p),
            "ids": np.array(ids, dtype=np.int64, copy=True),
            "distances": np.array(distances, dtype=np.float64, copy=True),
        }
        if self._queue is None:
            self._audit(item)
            return True
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            self._c_dropped.inc()
        return True

    # -- audit machinery -------------------------------------------------

    def _worker(self, q: queue.Queue) -> None:
        # The queue is passed in (not read off self) so close() can null
        # self._queue without racing the final task_done.
        while True:
            item = q.get()
            if item is None:  # close() sentinel
                q.task_done()
                return
            try:
                self._audit(item)
            except Exception:
                logger.exception("guarantee audit failed; sample skipped")
            finally:
                q.task_done()

    def _audit(self, item: dict) -> None:
        k = min(item["k"], self._oracle.num_points)
        truth = self._oracle.knn(item["query"], k, item["p"])
        true_ids = self._alive_ids[truth.ids]
        true_dists = truth.distances
        reported_ids = item["ids"][:k]
        reported_dists = item["distances"][:k]
        recall = recall_at_k(reported_ids, true_ids)
        ratio = (
            overall_ratio(reported_dists, true_dists)
            if reported_dists.size == true_dists.size
            and reported_dists.size > 0
            else float("nan")
        )
        # Theorem 1 success: every reported i-th distance within c times
        # the true i-th distance (and a full result set was returned).
        success = bool(
            reported_dists.size == true_dists.size
            and np.all(
                reported_dists
                <= self.c * true_dists * (1.0 + _SUCCESS_EPS) + _SUCCESS_EPS
            )
        )
        with self._lock:
            self._window.append(
                {"recall": recall, "ratio": ratio, "success": success}
            )
            self._c_samples.inc()
            if success:
                self._c_successes.inc()
            rolled = list(self._window)
            n = len(rolled)
            recall_mean = float(np.mean([s["recall"] for s in rolled]))
            ratios = [s["ratio"] for s in rolled if np.isfinite(s["ratio"])]
            ratio_mean = float(np.mean(ratios)) if ratios else float("nan")
            success_rate = float(
                np.mean([1.0 if s["success"] else 0.0 for s in rolled])
            )
            self._g_recall.set(recall_mean)
            if np.isfinite(ratio_mean):
                self._g_ratio.set(ratio_mean)
            self._g_success.set(success_rate)
            violating = n >= self.min_samples and success_rate < self.bound
            episode_started = violating and not self._in_violation
            if episode_started:
                self._c_alerts.inc()
                logger.warning(
                    "guarantee violation: rolling success rate %.3f over "
                    "%d audited queries undercuts the 1/2 - beta bound "
                    "%.3f (c=%g)",
                    success_rate,
                    n,
                    self.bound,
                    self.c,
                )
            self._in_violation = violating
        # Outside the lock: the recorder snapshots the registry, which
        # may itself read auditor gauges.
        if episode_started and self.flight_recorder is not None:
            self.flight_recorder.trigger(
                "guarantee_violation",
                success_rate=success_rate,
                bound=self.bound,
                window=n,
            )

    # -- lifecycle / introspection ---------------------------------------

    def drain(self, timeout: float | None = None) -> None:
        """Block until every queued sample has been audited.

        ``timeout`` bounds the wait (None = wait forever); background
        mode only — inline mode has nothing to drain.
        """
        q = self._queue
        if q is None:
            return
        if timeout is None:
            q.join()
            return
        done = threading.Event()

        def waiter() -> None:
            q.join()
            done.set()

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        if not done.wait(timeout):
            raise TimeoutError(
                f"audit queue did not drain within {timeout:g}s"
            )

    def close(self) -> None:
        """Stop the background thread after finishing queued audits."""
        q, thread = self._queue, self._thread
        self._queue = None
        self._thread = None
        if q is not None:
            q.put(None)
        if thread is not None:
            thread.join(timeout=10.0)

    def __enter__(self) -> "GuaranteeAuditor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def summary(self) -> dict:
        """Rolling-window aggregates as a plain dict."""
        with self._lock:
            rolled = list(self._window)
        n = len(rolled)
        ratios = [s["ratio"] for s in rolled if np.isfinite(s["ratio"])]
        return {
            "samples": int(self._c_samples.value()),
            "window": n,
            "recall_at_k": (
                float(np.mean([s["recall"] for s in rolled])) if n else None
            ),
            "overall_ratio": float(np.mean(ratios)) if ratios else None,
            "success_rate": (
                float(np.mean([s["success"] for s in rolled])) if n else None
            ),
            "bound": self.bound,
            "alerts": int(self._c_alerts.value()),
            "dropped": int(self._c_dropped.value()),
        }
