"""Ops endpoints: a stdlib HTTP exporter for metrics, health and slowlog.

:class:`ObsExporter` runs a ``http.server.ThreadingHTTPServer`` on a
daemon thread and serves three read-only endpoints off the live
observability objects:

``/metrics``
    The :class:`~repro.obs.registry.MetricsRegistry` in Prometheus text
    exposition format (``text/plain; version=0.0.4``).
``/healthz``
    JSON from the ``health`` callable (e.g. ``ShardedSearchService.
    health``): per-shard worker liveness, last-heartbeat age and shm
    attachment status.  Responds 200 when ``healthy`` is true, 503
    otherwise — so a load balancer can act on the status code alone.
``/slowlog``
    The :class:`~repro.obs.slowlog.SlowQueryLog` ring as JSON.
``/trace`` and ``/trace/<trace_id>``
    The :class:`~repro.obs.trace_context.TraceStore`: the bare route
    lists stored trace ids, the id route returns one reconstructed
    cross-process span tree (404 for evicted/unknown ids).
``/profile`` and ``/profile?seconds=N``
    The :class:`~repro.obs.profiler.ContinuousProfiler`: the bare route
    returns the continuous aggregate as flamegraph-ready folded-stack
    text; ``?seconds=N`` blocks for a fresh N-second on-demand capture
    (N in (0, 60]) and returns only that window.  Sampler state rides
    along in an ``X-Profile-Stats`` JSON header.

Lifetime rules (see DESIGN §10): the exporter owns only its HTTP
server, never the registry/health/slowlog objects it reads — callers
stop the exporter *before* closing the service so a scrape can never
race a torn-down worker fleet.  All handlers are read-only: the health
callable must not send pipe ops to workers (the service keeps a
heartbeat cache for exactly this reason).

The module also ships :func:`parse_prometheus_text` and
:func:`histogram_quantile` — a minimal scrape-side parser used by the
``repro top`` CLI so the live view needs no third-party client.
"""

from __future__ import annotations

import http.server
import json
import re
import threading
import urllib.parse
from typing import Any, Callable, Mapping

from repro.errors import InvalidParameterError

from repro.obs.profiler import ContinuousProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLOEngine
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace_context import TraceStore

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ObsExporter:
    """Background HTTP server exposing /metrics, /healthz, /slowlog, /trace.

    Parameters
    ----------
    registry:
        Metrics registry rendered at ``/metrics``.
    health:
        Zero-argument callable returning a JSON-serialisable health
        dict with a boolean ``healthy`` key.  Omitted → ``/healthz``
        reports a plain ``{"healthy": true}``.
    slowlog:
        Slow-query log served at ``/slowlog``.  Omitted → empty list.
    trace_store:
        Trace ring served at ``/trace``/``/trace/<id>``.  Omitted →
        404 on both routes.
    slo:
        Optional :class:`~repro.obs.slo.SLOEngine`.  When attached,
        every ``/metrics`` scrape ticks it first (so the burn-rate
        gauges in the scrape are current) and ``/healthz`` gains an
        ``"slo"`` section; an open SLO alert episode flips ``healthy``
        to false (and the status code to 503).
    profiler:
        Optional :class:`~repro.obs.profiler.ContinuousProfiler`
        served at ``/profile``.  Omitted → 404 on that route.
    host / port:
        Bind address; ``port=0`` (default) lets the OS pick a free
        port — read it back from :attr:`port` or :attr:`url`.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        health: Callable[[], Mapping[str, Any]] | None = None,
        slowlog: SlowQueryLog | None = None,
        trace_store: TraceStore | None = None,
        slo: SLOEngine | None = None,
        profiler: ContinuousProfiler | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.health = health
        self.slowlog = slowlog
        self.trace_store = trace_store
        self.slo = slo
        self.profiler = profiler
        self.host = host
        self._requested_port = port
        self._server: http.server.ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        """The bound port (0 until started)."""
        if self._server is None:
            return 0
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running exporter (e.g. http://127.0.0.1:9100)."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObsExporter":
        """Bind and start serving on a daemon thread (idempotent)."""
        if self._server is not None:
            return self
        exporter = self

        class Handler(http.server.BaseHTTPRequestHandler):
            # one exporter instance per handler class; closures beat
            # threading state through the stdlib server plumbing
            def log_message(self, format: str, *args: Any) -> None:
                pass  # scrapes happen every few seconds; stay quiet

            def _send(
                self, status: int, body: bytes, content_type: str
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                path, _, raw_query = self.path.partition("?")
                try:
                    if path == "/metrics":
                        if exporter.slo is not None:
                            exporter.slo.tick()
                        text = exporter.registry.render_prometheus()
                        self._send(
                            200, text.encode(), PROMETHEUS_CONTENT_TYPE
                        )
                    elif path == "/healthz":
                        if exporter.health is None:
                            report: dict[str, Any] = {"healthy": True}
                        else:
                            report = dict(exporter.health())
                        if exporter.slo is not None:
                            slo_report = exporter.slo.tick()
                            report["slo"] = {
                                "healthy": slo_report["healthy"],
                                "alerting": slo_report["alerting"],
                                "slos": slo_report["slos"],
                            }
                            if not slo_report["healthy"]:
                                report["healthy"] = False
                        status = 200 if report.get("healthy", False) else 503
                        body = json.dumps(report, indent=2).encode()
                        self._send(status, body, "application/json")
                    elif path == "/slowlog":
                        entries = (
                            []
                            if exporter.slowlog is None
                            else exporter.slowlog.to_dicts()
                        )
                        body = json.dumps(entries, indent=2).encode()
                        self._send(200, body, "application/json")
                    elif path == "/trace" or path == "/trace/":
                        if exporter.trace_store is None:
                            self._send(
                                404,
                                b"no trace store attached\n",
                                "text/plain",
                            )
                        else:
                            listing = {
                                "traces": exporter.trace_store.ids(),
                                "stats": exporter.trace_store.stats(),
                            }
                            body = json.dumps(listing, indent=2).encode()
                            self._send(200, body, "application/json")
                    elif path.startswith("/trace/"):
                        trace_id = path[len("/trace/"):]
                        tree = (
                            None
                            if exporter.trace_store is None
                            else exporter.trace_store.tree(trace_id)
                        )
                        if tree is None:
                            self._send(
                                404,
                                f"unknown trace {trace_id}\n".encode(),
                                "text/plain",
                            )
                        else:
                            body = json.dumps(tree, indent=2).encode()
                            self._send(200, body, "application/json")
                    elif path == "/profile":
                        if exporter.profiler is None:
                            self._send(
                                404,
                                b"no profiler attached\n",
                                "text/plain",
                            )
                        else:
                            params = urllib.parse.parse_qs(raw_query)
                            seconds_raw = params.get("seconds", [None])[0]
                            try:
                                if seconds_raw is None:
                                    text = exporter.profiler.folded()
                                else:
                                    text = exporter.profiler.capture(
                                        float(seconds_raw)
                                    )
                            except (ValueError, InvalidParameterError) as bad:
                                self._send(
                                    400,
                                    f"bad seconds: {bad}\n".encode(),
                                    "text/plain",
                                )
                                return
                            self.send_response(200)
                            self.send_header(
                                "Content-Type", "text/plain; charset=utf-8"
                            )
                            body = text.encode()
                            self.send_header(
                                "Content-Length", str(len(body))
                            )
                            self.send_header(
                                "X-Profile-Stats",
                                json.dumps(exporter.profiler.stats()),
                            )
                            self.end_headers()
                            self.wfile.write(body)
                    else:
                        self._send(
                            404,
                            b"not found; endpoints: /metrics /healthz "
                            b"/slowlog /trace /trace/<id> /profile\n",
                            "text/plain",
                        )
                except BrokenPipeError:
                    pass  # scraper hung up mid-response
                except Exception as exc:  # defensive: never kill the thread
                    try:
                        self._send(
                            500, f"error: {exc}\n".encode(), "text/plain"
                        )
                    except Exception:
                        pass

        self._server = http.server.ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="obs-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join the serving thread (idempotent)."""
        server, thread = self._server, self._thread
        self._server = None
        self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "ObsExporter":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


# -- scrape-side parsing (used by ``repro top``) -------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"'
)


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def parse_prometheus_text(
    text: str,
) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse exposition text into ``{name: [(labels, value), ...]}``.

    Minimal but strict about what it accepts: malformed sample lines
    raise ``ValueError`` rather than being skipped, so the exposition
    regression tests in ``tests/test_obs.py`` can round-trip the
    registry output through this parser.
    """
    samples: dict[str, list[tuple[dict[str, str], float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line: {line!r}")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(raw_labels):
                labels[pair.group("name")] = _unescape_label_value(
                    pair.group("value")
                )
                consumed += 1
            # every comma-separated item must have parsed as a pair
            if consumed != raw_labels.count('="') or not consumed:
                raise ValueError(
                    f"malformed label set in line: {line!r}"
                )
        raw_value = match.group("value")
        if raw_value == "+Inf":
            value = float("inf")
        elif raw_value == "-Inf":
            value = float("-inf")
        else:
            value = float(raw_value)
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples


def histogram_quantile(
    samples: list[tuple[dict[str, str], float]],
    q: float,
    *,
    match_labels: Mapping[str, str] | None = None,
) -> float | None:
    """Estimate the q-quantile from ``<name>_bucket`` samples.

    Mirrors PromQL's ``histogram_quantile``: linear interpolation
    within the first bucket whose cumulative count reaches the target
    rank, clamped to the highest finite bound for the +Inf bucket.
    Returns None when the matching series has no observations.
    """
    match_labels = dict(match_labels or {})
    buckets: list[tuple[float, float]] = []
    for labels, value in samples:
        if "le" not in labels:
            continue
        rest = {k: v for k, v in labels.items() if k != "le"}
        if match_labels and any(
            rest.get(k) != v for k, v in match_labels.items()
        ):
            continue
        le = (
            float("inf") if labels["le"] == "+Inf" else float(labels["le"])
        )
        buckets.append((le, value))
    if not buckets:
        return None
    buckets.sort()
    total = buckets[-1][1]
    if total <= 0:
        return None
    rank = q * total
    prev_bound = 0.0
    prev_count = 0.0
    for bound, count in buckets:
        if count >= rank:
            if bound == float("inf"):
                # no information above the last finite bound
                finite = [b for b, _ in buckets if b != float("inf")]
                return finite[-1] if finite else None
            if count == prev_count:
                return bound
            frac = (rank - prev_count) / (count - prev_count)
            return prev_bound + frac * (bound - prev_bound)
        prev_bound, prev_count = bound, count
    return buckets[-1][0] if buckets[-1][0] != float("inf") else None
