"""Query telemetry: metrics registry, span tracer and per-query traces.

Three layers, composable but independently usable:

* :mod:`repro.obs.registry` — process-local counters, gauges and
  fixed-bucket histograms with dict/JSON and Prometheus text export;
* :mod:`repro.obs.tracer` — nested monotonic-clock spans with a JSONL
  exporter;
* :mod:`repro.obs.query_trace` — structured round-by-round
  :class:`QueryTrace` records with schema validation and JSONL I/O.

On top of those, the distributed ops plane (DESIGN §10):

* :mod:`repro.obs.slowlog` — ring-buffer :class:`SlowQueryLog` of
  threshold-exceeding traces;
* :mod:`repro.obs.exporter` — stdlib HTTP :class:`ObsExporter` serving
  ``/metrics``, ``/healthz``, ``/slowlog`` and ``/trace``;
* :mod:`repro.obs.auditor` — :class:`GuaranteeAuditor` re-answering
  sampled live queries by exact linear scan and publishing rolling
  recall / success-rate gauges against the Theorem 1 bound.

And the incident plane (DESIGN §13):

* :mod:`repro.obs.trace_context` — W3C-style :class:`TraceContext`
  propagation, cross-process trace trees and the bounded
  :class:`TraceStore` ring;
* :mod:`repro.obs.flight_recorder` — :class:`FlightRecorder` bundles of
  traces + metrics snapshots, auto-dumped on trigger events;
* :mod:`repro.obs.slo` — declarative :class:`SLOSpec` objectives
  evaluated by :class:`SLOEngine` as multi-window burn rates;
* :mod:`repro.obs.procstat` — real paging metrics (major faults,
  page-cache residency) beside the simulated I/O charge.

And the workload intelligence plane (DESIGN §15):

* :mod:`repro.obs.profiler` — :class:`ContinuousProfiler`, a
  daemon-thread sampling profiler with folded-stack output and
  per-phase (hash/scan/merge/wave) attribution, served at ``/profile``;
* :mod:`repro.obs.explain` — query EXPLAIN records built from
  :class:`QueryTrace` round data (``SearchRequest(explain=True)``);
* :mod:`repro.obs.workload` — :class:`WorkloadAnalytics` with
  Space-Saving heavy-hitter sketches over query digests and base
  buckets, rolling ``(p, k)`` demand and cache-efficacy-by-heat stats.

:class:`Telemetry` bundles all of it and is what the query entry points
accept::

    from repro import LazyLSH, Telemetry

    tel = Telemetry()
    index.knn(query, k=10, p=0.5, telemetry=tel)
    tel.traces[0].termination          # why the query stopped
    tel.export_traces_jsonl("run.jsonl")
    print(tel.metrics_text())          # Prometheus exposition format
"""

from repro.obs.query_trace import (
    TERMINATION_CAP,
    TERMINATION_K_WITHIN,
    TERMINATION_REASONS,
    TRACE_SCHEMA,
    TRACE_VERSION,
    QueryTrace,
    QueryTraceBuilder,
    RoundRecord,
    TraceSchemaError,
    load_traces_jsonl,
    validate_trace_dict,
    write_traces_jsonl,
)
from repro.obs.auditor import GuaranteeAuditor
from repro.obs.explain import (
    EXPLAIN_SCHEMA,
    EXPLAIN_VERSION,
    ExplainSchemaError,
    build_explain,
    render_explain,
    validate_explain_dict,
)
from repro.obs.exporter import (
    ObsExporter,
    histogram_quantile,
    parse_prometheus_text,
)
from repro.obs.flight_recorder import FlightRecorder
from repro.obs.profiler import PHASES, ContinuousProfiler, classify_frames
from repro.obs.procstat import PagingMetrics, read_fault_counts, residency_ratio
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_default_registry,
)
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    BurnWindow,
    SLOEngine,
    SLOSpec,
    counter_ratio_sli,
    error_rate_sli,
    latency_sli,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.telemetry import StoreObserver, Telemetry
from repro.obs.trace_context import (
    SPAN_SCHEMA,
    SpanSchemaError,
    TraceContext,
    TraceStore,
    build_trace_tree,
    validate_span_dict,
)
from repro.obs.tracer import Span, SpanTracer, load_spans_jsonl
from repro.obs.workload import SpaceSavingSketch, WorkloadAnalytics

__all__ = [
    "BurnWindow",
    "ContinuousProfiler",
    "Counter",
    "DEFAULT_WINDOWS",
    "EXPLAIN_SCHEMA",
    "EXPLAIN_VERSION",
    "ExplainSchemaError",
    "FlightRecorder",
    "Gauge",
    "GuaranteeAuditor",
    "Histogram",
    "MetricsRegistry",
    "ObsExporter",
    "PHASES",
    "PagingMetrics",
    "QueryTrace",
    "QueryTraceBuilder",
    "RoundRecord",
    "SLOEngine",
    "SLOSpec",
    "SlowQueryLog",
    "SpaceSavingSketch",
    "Span",
    "SpanTracer",
    "SpanSchemaError",
    "SPAN_SCHEMA",
    "StoreObserver",
    "TERMINATION_CAP",
    "TERMINATION_K_WITHIN",
    "TERMINATION_REASONS",
    "TRACE_SCHEMA",
    "TRACE_VERSION",
    "Telemetry",
    "TraceContext",
    "TraceSchemaError",
    "TraceStore",
    "WorkloadAnalytics",
    "build_explain",
    "build_trace_tree",
    "classify_frames",
    "counter_ratio_sli",
    "error_rate_sli",
    "get_default_registry",
    "histogram_quantile",
    "latency_sli",
    "load_spans_jsonl",
    "load_traces_jsonl",
    "parse_prometheus_text",
    "read_fault_counts",
    "render_explain",
    "residency_ratio",
    "validate_explain_dict",
    "validate_span_dict",
    "validate_trace_dict",
    "write_traces_jsonl",
]
