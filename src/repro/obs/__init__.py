"""Query telemetry: metrics registry, span tracer and per-query traces.

Three layers, composable but independently usable:

* :mod:`repro.obs.registry` — process-local counters, gauges and
  fixed-bucket histograms with dict/JSON and Prometheus text export;
* :mod:`repro.obs.tracer` — nested monotonic-clock spans with a JSONL
  exporter;
* :mod:`repro.obs.query_trace` — structured round-by-round
  :class:`QueryTrace` records with schema validation and JSONL I/O.

On top of those, the distributed ops plane (DESIGN §10):

* :mod:`repro.obs.slowlog` — ring-buffer :class:`SlowQueryLog` of
  threshold-exceeding traces;
* :mod:`repro.obs.exporter` — stdlib HTTP :class:`ObsExporter` serving
  ``/metrics``, ``/healthz`` and ``/slowlog``;
* :mod:`repro.obs.auditor` — :class:`GuaranteeAuditor` re-answering
  sampled live queries by exact linear scan and publishing rolling
  recall / success-rate gauges against the Theorem 1 bound.

:class:`Telemetry` bundles all three and is what the query entry points
accept::

    from repro import LazyLSH, Telemetry

    tel = Telemetry()
    index.knn(query, k=10, p=0.5, telemetry=tel)
    tel.traces[0].termination          # why the query stopped
    tel.export_traces_jsonl("run.jsonl")
    print(tel.metrics_text())          # Prometheus exposition format
"""

from repro.obs.query_trace import (
    TERMINATION_CAP,
    TERMINATION_K_WITHIN,
    TERMINATION_REASONS,
    TRACE_SCHEMA,
    TRACE_VERSION,
    QueryTrace,
    QueryTraceBuilder,
    RoundRecord,
    TraceSchemaError,
    load_traces_jsonl,
    validate_trace_dict,
    write_traces_jsonl,
)
from repro.obs.auditor import GuaranteeAuditor
from repro.obs.exporter import (
    ObsExporter,
    histogram_quantile,
    parse_prometheus_text,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_default_registry,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.telemetry import StoreObserver, Telemetry
from repro.obs.tracer import Span, SpanTracer, load_spans_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "GuaranteeAuditor",
    "Histogram",
    "MetricsRegistry",
    "ObsExporter",
    "QueryTrace",
    "QueryTraceBuilder",
    "RoundRecord",
    "SlowQueryLog",
    "Span",
    "SpanTracer",
    "StoreObserver",
    "TERMINATION_CAP",
    "TERMINATION_K_WITHIN",
    "TERMINATION_REASONS",
    "TRACE_SCHEMA",
    "TRACE_VERSION",
    "Telemetry",
    "TraceSchemaError",
    "get_default_registry",
    "histogram_quantile",
    "load_spans_jsonl",
    "load_traces_jsonl",
    "parse_prometheus_text",
    "validate_trace_dict",
    "write_traces_jsonl",
]
