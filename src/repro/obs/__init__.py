"""Query telemetry: metrics registry, span tracer and per-query traces.

Three layers, composable but independently usable:

* :mod:`repro.obs.registry` — process-local counters, gauges and
  fixed-bucket histograms with dict/JSON and Prometheus text export;
* :mod:`repro.obs.tracer` — nested monotonic-clock spans with a JSONL
  exporter;
* :mod:`repro.obs.query_trace` — structured round-by-round
  :class:`QueryTrace` records with schema validation and JSONL I/O.

:class:`Telemetry` bundles all three and is what the query entry points
accept::

    from repro import LazyLSH, Telemetry

    tel = Telemetry()
    index.knn(query, k=10, p=0.5, telemetry=tel)
    tel.traces[0].termination          # why the query stopped
    tel.export_traces_jsonl("run.jsonl")
    print(tel.metrics_text())          # Prometheus exposition format
"""

from repro.obs.query_trace import (
    TERMINATION_CAP,
    TERMINATION_K_WITHIN,
    TERMINATION_REASONS,
    TRACE_SCHEMA,
    TRACE_VERSION,
    QueryTrace,
    QueryTraceBuilder,
    RoundRecord,
    TraceSchemaError,
    load_traces_jsonl,
    validate_trace_dict,
    write_traces_jsonl,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_default_registry,
)
from repro.obs.telemetry import StoreObserver, Telemetry
from repro.obs.tracer import Span, SpanTracer, load_spans_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryTrace",
    "QueryTraceBuilder",
    "RoundRecord",
    "Span",
    "SpanTracer",
    "StoreObserver",
    "TERMINATION_CAP",
    "TERMINATION_K_WITHIN",
    "TERMINATION_REASONS",
    "TRACE_SCHEMA",
    "TRACE_VERSION",
    "Telemetry",
    "TraceSchemaError",
    "get_default_registry",
    "load_spans_jsonl",
    "load_traces_jsonl",
    "validate_trace_dict",
    "write_traces_jsonl",
]
