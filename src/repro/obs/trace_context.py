"""W3C-style trace context: ids, propagation and cross-process trees.

A :class:`TraceContext` is the wire-portable identity of one distributed
trace: a 128-bit ``trace_id`` shared by every span of the request, the
64-bit ``span_id`` of the *current* parent, and a sampling bit.  It
serialises to/from the W3C ``traceparent`` header format
(``00-<trace_id>-<span_id>-<flags>``) so a future network front door can
accept upstream contexts unchanged, and it rides the sharded service's
worker pipes today (DESIGN §13).

On top of the context type, the module ships the scrape-side half of
the tracing story:

* :func:`build_trace_tree` — reconstruct the parent/child tree of one
  trace from flat span dicts (the coordinator's JSONL export or a
  ``/trace/<id>`` response body);
* :func:`validate_span_dict` — schema check for exported span records;
* :class:`TraceStore` — bounded, locked ring of recently completed
  traces, served by the exporter's ``/trace/<id>`` route and snapshotted
  into flight-recorder bundles.

The module has no dependency on the tracer (the tracer imports *it*),
so ``repro.api`` can carry a ``TraceContext`` on every
:class:`~repro.api.SearchRequest` without import cycles.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import InvalidParameterError

#: Schema of one exported span record (see ``Span.to_dict``).  ``span_id``
#: is an int for process-local spans and a 16-hex string inside a trace;
#: ``trace_id`` is the 32-hex trace id or None outside any trace.
SPAN_SCHEMA = {
    "name": str,
    "span_id": (int, str),
    "parent_id": (int, str, type(None)),
    "trace_id": (str, type(None)),
    "start": (int, float),
    "end": (int, float, type(None)),
    "duration": (int, float),
    "attributes": dict,
}

_TRACEPARENT_VERSION = "00"
_FLAG_SAMPLED = 0x01


class SpanSchemaError(ValueError):
    """An exported span record does not match :data:`SPAN_SCHEMA`."""


def _hex_id(n_bytes: int) -> str:
    """A non-zero random hex id of ``2 * n_bytes`` characters."""
    while True:
        value = os.urandom(n_bytes).hex()
        if any(ch != "0" for ch in value):
            return value


def _is_hex(value: str, length: int) -> bool:
    if len(value) != length or value == "0" * length:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


@dataclass(frozen=True)
class TraceContext:
    """One request's distributed-trace identity (W3C trace-context style).

    ``trace_id`` is shared by every span of the request across all
    processes; ``span_id`` names the span that is the *parent* of
    whatever work the context is handed to; ``sampled`` gates span
    recording (an unsampled context still propagates its ids so a
    downstream sampler could revive it, but no spans are kept).
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def __post_init__(self) -> None:
        if not _is_hex(self.trace_id, 32):
            raise InvalidParameterError(
                f"trace_id must be 32 lowercase hex chars (non-zero), "
                f"got {self.trace_id!r}"
            )
        if not _is_hex(self.span_id, 16):
            raise InvalidParameterError(
                f"span_id must be 16 lowercase hex chars (non-zero), "
                f"got {self.span_id!r}"
            )

    @classmethod
    def new(cls, *, sampled: bool = True) -> "TraceContext":
        """A fresh root context (new trace id, new parent span id)."""
        return cls(
            trace_id=_hex_id(16), span_id=_hex_id(8), sampled=sampled
        )

    def child(self, span_id: str) -> "TraceContext":
        """The context a child span hands to *its* children."""
        return TraceContext(
            trace_id=self.trace_id, span_id=span_id, sampled=self.sampled
        )

    def to_traceparent(self) -> str:
        """W3C ``traceparent`` header form: ``00-<trace>-<span>-<flags>``."""
        flags = _FLAG_SAMPLED if self.sampled else 0
        return (
            f"{_TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}"
            f"-{flags:02x}"
        )

    @classmethod
    def from_traceparent(cls, header: str) -> "TraceContext":
        """Parse a ``traceparent`` header (unknown versions rejected)."""
        parts = header.strip().split("-")
        if len(parts) != 4:
            raise InvalidParameterError(
                f"malformed traceparent header {header!r}"
            )
        version, trace_id, span_id, flags = parts
        if version != _TRACEPARENT_VERSION:
            raise InvalidParameterError(
                f"unsupported traceparent version {version!r}"
            )
        try:
            sampled = bool(int(flags, 16) & _FLAG_SAMPLED)
        except ValueError:
            raise InvalidParameterError(
                f"malformed traceparent flags {flags!r}"
            ) from None
        return cls(trace_id=trace_id, span_id=span_id, sampled=sampled)

    def to_dict(self) -> dict:
        """Pipe/JSON-portable form (used by the wave protocol)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "TraceContext":
        return cls(
            trace_id=record["trace_id"],
            span_id=record["span_id"],
            sampled=bool(record.get("sampled", True)),
        )


def active_context(context: "TraceContext | None") -> "TraceContext | None":
    """The context iff it exists and is sampled (the span-recording gate)."""
    if context is None or not context.sampled:
        return None
    return context


def new_request_id() -> str:
    """A fresh 16-hex request id (the ``request_id`` default generator)."""
    return _hex_id(8)


def validate_span_dict(record: dict) -> dict:
    """Check one exported span record against :data:`SPAN_SCHEMA`.

    Returns the record on success; raises :class:`SpanSchemaError` with
    the offending field otherwise.  Used by the obs-smoke CI gate to
    validate reconstructed cross-process trees.
    """
    if not isinstance(record, dict):
        raise SpanSchemaError(f"span record must be a dict, got {record!r}")
    for field, types in SPAN_SCHEMA.items():
        if field not in record:
            raise SpanSchemaError(f"span record missing field {field!r}")
        if not isinstance(record[field], types):
            raise SpanSchemaError(
                f"span field {field!r} has type "
                f"{type(record[field]).__name__}, expected {types}"
            )
    trace_id = record["trace_id"]
    if trace_id is not None and not _is_hex(str(trace_id), 32):
        raise SpanSchemaError(f"span trace_id {trace_id!r} is not 32-hex")
    return record


def build_trace_tree(spans: list[dict]) -> dict:
    """Reconstruct one trace's span tree from flat span dicts.

    ``spans`` are ``Span.to_dict`` records sharing one ``trace_id`` (the
    JSONL export or a :class:`TraceStore` entry).  Roots are the spans
    whose parent is not among the records — for a served query that is
    the coordinator's request-root span, whose recorded parent is the
    client context's span id.  Children are ordered by start time.
    Raises :class:`SpanSchemaError` on records from mixed traces.
    """
    trace_ids = {record.get("trace_id") for record in spans}
    trace_ids.discard(None)
    if len(trace_ids) > 1:
        raise SpanSchemaError(
            f"spans belong to {len(trace_ids)} traces: {sorted(trace_ids)}"
        )
    nodes: dict[Any, dict] = {}
    for record in spans:
        node = dict(record)
        node["children"] = []
        nodes[record["span_id"]] = node
    roots = []
    for node in nodes.values():
        parent = nodes.get(node["parent_id"])
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda child: child["start"])
    roots.sort(key=lambda node: node["start"])
    return {
        "trace_id": next(iter(trace_ids)) if trace_ids else None,
        "span_count": len(nodes),
        "roots": roots,
    }


class TraceStore:
    """Bounded ring of recently completed traces, keyed by trace id.

    The serving layer adds each sampled request's finished spans here;
    the exporter's ``/trace/<id>`` route and the flight recorder read
    them back.  Eviction is oldest-trace-first; ``add`` on an id already
    present merges the new spans into the existing entry (a request may
    finish in stages — e.g. the service wave, then a late audit span).

    Thread safety: one lock around every method, so the exporter thread
    can serve ``/trace`` while the query thread publishes.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                f"trace store capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self._traces: OrderedDict[str, dict] = OrderedDict()
        self._added = 0
        self._evicted = 0
        self._lock = threading.Lock()

    def add(self, trace_id: str, spans: list[dict]) -> None:
        """Store (or extend) one trace's finished span records."""
        with self._lock:
            entry = self._traces.get(trace_id)
            if entry is None:
                entry = {"trace_id": trace_id, "spans": []}
                self._traces[trace_id] = entry
                self._added += 1
            entry["spans"].extend(spans)
            self._traces.move_to_end(trace_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)
                self._evicted += 1

    def get(self, trace_id: str) -> list[dict] | None:
        """The trace's span records (copies), or None."""
        with self._lock:
            entry = self._traces.get(trace_id)
            return None if entry is None else [dict(s) for s in entry["spans"]]

    def tree(self, trace_id: str) -> dict | None:
        """The trace reconstructed as a span tree, or None."""
        spans = self.get(trace_id)
        return None if spans is None else build_trace_tree(spans)

    def ids(self) -> list[str]:
        """Stored trace ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def to_dicts(self) -> list[dict]:
        """Every stored trace (oldest first), JSON-serialisable."""
        with self._lock:
            return [
                {
                    "trace_id": entry["trace_id"],
                    "spans": [dict(s) for s in entry["spans"]],
                }
                for entry in self._traces.values()
            ]

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._traces),
                "added": self._added,
                "evicted": self._evicted,
            }

    def export_jsonl(self, path: str | Path) -> Path:
        """Write every stored span as one JSON object per line.

        The format matches ``SpanTracer.export_jsonl``, so
        :func:`~repro.obs.tracer.load_spans_jsonl` round-trips it and
        :func:`build_trace_tree` can reconstruct each trace offline.
        """
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for entry in self.to_dicts():
                for span in entry["spans"]:
                    fh.write(json.dumps(span) + "\n")
        return path
