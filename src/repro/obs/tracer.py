"""Span tracer: monotonic-clock timed sections with parent/child nesting.

A :class:`SpanTracer` hands out context managers that time a named block
of work and remember its position in the call tree::

    tracer = SpanTracer()
    with tracer.span("knn_batch", queries=64):
        with tracer.span("hash"):
            ...
        with tracer.span("rounds"):
            ...
    tracer.export_jsonl("spans.jsonl")

Finished spans land in :attr:`SpanTracer.spans` in completion order
(children before parents, like a profiler's flame graph leaves).  Spans
are plain records — export is one JSON object per line, and
:func:`load_spans_jsonl` round-trips them for offline analysis.

Spans come in two flavours:

* **process-local** (the default): sequential integer ``span_id``s,
  ``trace_id`` None — cheap, and exactly the pre-trace-context
  behaviour;
* **distributed**: opened with a :class:`~repro.obs.trace_context.
  TraceContext` (``tracer.span(name, context=ctx)``), they get random
  16-hex string ids and carry the context's 32-hex ``trace_id``, so
  spans recorded by *different processes* (coordinator and shard
  workers) link into one tree.  Nested spans inherit the enclosing
  trace automatically; :meth:`SpanTracer.current_context` exposes the
  innermost trace identity for handing to another process.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.obs.trace_context import TraceContext, _hex_id


@dataclass
class Span:
    """One timed section of work.

    ``start``/``end`` are monotonic-clock readings (seconds, arbitrary
    epoch); only durations and orderings are meaningful across spans of
    one tracer.  ``span_id``/``parent_id`` are sequential ints for
    process-local spans and random 16-hex strings inside a distributed
    trace (``trace_id`` set).
    """

    name: str
    span_id: int | str
    parent_id: int | str | None
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    trace_id: str | None = None

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attributes: Any) -> None:
        """Attach attributes to the span while it is open."""
        self.attributes.update(attributes)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": self.attributes,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        return cls(
            name=record["name"],
            span_id=record["span_id"],
            parent_id=record["parent_id"],
            start=record["start"],
            end=record["end"],
            attributes=dict(record.get("attributes", {})),
            trace_id=record.get("trace_id"),
        )


class SpanTracer:
    """Produces nested :class:`Span` records under one monotonic clock."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._next_id = 1
        self._stack: list[Span] = []
        self.spans: list[Span] = []

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def current_context(self) -> TraceContext | None:
        """Trace identity of the innermost open *traced* span, or None.

        This is what a coordinator ships to workers: children opened
        under the returned context (in any process) parent themselves to
        the currently open span.
        """
        for span in reversed(self._stack):
            if span.trace_id is not None:
                return TraceContext(
                    trace_id=span.trace_id,
                    span_id=str(span.span_id),
                )
        return None

    @contextmanager
    def span(
        self,
        name: str,
        *,
        context: TraceContext | None = None,
        **attributes: Any,
    ) -> Iterator[Span]:
        """Open a child span of the current span for the ``with`` body.

        With ``context`` (a sampled :class:`TraceContext`), the span
        joins that distributed trace: random 16-hex string id, parented
        to the enclosing open span if it shares the trace, else to the
        context's ``span_id``.  Without ``context``, the span inherits
        the enclosing span's trace if there is one, and otherwise stays
        process-local with the legacy sequential integer ids.
        """
        enclosing = self._stack[-1] if self._stack else None
        if context is None and enclosing is not None and (
            enclosing.trace_id is not None
        ):
            trace_id: str | None = enclosing.trace_id
            span_id: int | str = _hex_id(8)
            parent_id: int | str | None = enclosing.span_id
        elif context is not None:
            trace_id = context.trace_id
            span_id = _hex_id(8)
            if enclosing is not None and enclosing.trace_id == context.trace_id:
                parent_id = enclosing.span_id
            else:
                parent_id = context.span_id
        else:
            trace_id = None
            span_id = self._next_id
            self._next_id += 1
            parent_id = enclosing.span_id if enclosing is not None else None
        record = Span(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            start=self._clock(),
            attributes=dict(attributes),
            trace_id=trace_id,
        )
        self._stack.append(record)
        try:
            yield record
        except BaseException as exc:
            record.attributes.setdefault("error", type(exc).__name__)
            raise
        finally:
            record.end = self._clock()
            self._stack.pop()
            self.spans.append(record)

    def clear(self) -> None:
        """Drop finished spans (open spans are unaffected)."""
        self.spans.clear()

    def pop_trace(self, trace_id: str) -> list[Span]:
        """Remove and return finished spans belonging to ``trace_id``.

        Lets the serving layer move one completed request's spans into a
        :class:`~repro.obs.trace_context.TraceStore` without disturbing
        unrelated process-local spans accumulated by the same tracer.
        """
        kept, popped = [], []
        for span in self.spans:
            (popped if span.trace_id == trace_id else kept).append(span)
        self.spans[:] = kept
        return popped

    def to_dicts(self) -> list[dict]:
        """Finished spans as JSON-serialisable dicts, completion order."""
        return [span.to_dict() for span in self.spans]

    def export_jsonl(self, path: str | Path) -> Path:
        """Write finished spans as one JSON object per line."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for span in self.spans:
                fh.write(json.dumps(span.to_dict()) + "\n")
        return path


def load_spans_jsonl(path: str | Path) -> list[Span]:
    """Read spans back from a :meth:`SpanTracer.export_jsonl` file."""
    spans = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans
