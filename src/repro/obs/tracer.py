"""Span tracer: monotonic-clock timed sections with parent/child nesting.

A :class:`SpanTracer` hands out context managers that time a named block
of work and remember its position in the call tree::

    tracer = SpanTracer()
    with tracer.span("knn_batch", queries=64):
        with tracer.span("hash"):
            ...
        with tracer.span("rounds"):
            ...
    tracer.export_jsonl("spans.jsonl")

Finished spans land in :attr:`SpanTracer.spans` in completion order
(children before parents, like a profiler's flame graph leaves).  Spans
are plain records — export is one JSON object per line, and
:func:`load_spans_jsonl` round-trips them for offline analysis.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator


@dataclass
class Span:
    """One timed section of work.

    ``start``/``end`` are monotonic-clock readings (seconds, arbitrary
    epoch); only durations and orderings are meaningful across spans of
    one tracer.
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attributes: Any) -> None:
        """Attach attributes to the span while it is open."""
        self.attributes.update(attributes)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": self.attributes,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        return cls(
            name=record["name"],
            span_id=record["span_id"],
            parent_id=record["parent_id"],
            start=record["start"],
            end=record["end"],
            attributes=dict(record.get("attributes", {})),
        )


class SpanTracer:
    """Produces nested :class:`Span` records under one monotonic clock."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._next_id = 1
        self._stack: list[Span] = []
        self.spans: list[Span] = []

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span of the current span for the ``with`` body."""
        record = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            start=self._clock(),
            attributes=dict(attributes),
        )
        self._next_id += 1
        self._stack.append(record)
        try:
            yield record
        except BaseException as exc:
            record.attributes.setdefault("error", type(exc).__name__)
            raise
        finally:
            record.end = self._clock()
            self._stack.pop()
            self.spans.append(record)

    def clear(self) -> None:
        """Drop finished spans (open spans are unaffected)."""
        self.spans.clear()

    def to_dicts(self) -> list[dict]:
        """Finished spans as JSON-serialisable dicts, completion order."""
        return [span.to_dict() for span in self.spans]

    def export_jsonl(self, path: str | Path) -> Path:
        """Write finished spans as one JSON object per line."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for span in self.spans:
                fh.write(json.dumps(span.to_dict()) + "\n")
        return path


def load_spans_jsonl(path: str | Path) -> list[Span]:
    """Read spans back from a :meth:`SpanTracer.export_jsonl` file."""
    spans = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans
