"""Declarative SLOs evaluated as multi-window burn rates.

An SLO here is an objective over a *service-level indicator* — a
callable returning cumulative ``(good, total)`` event counts read off
the live metrics registry.  The three indicators that matter for a
LazyLSH fleet map directly onto instruments the query path already
maintains:

* **p-latency** — fraction of queries under a latency bound, read from
  the ``lazylsh_query_latency_seconds`` histogram
  (:func:`latency_sli`);
* **recall@k** — fraction of audited queries meeting the Theorem-1
  guarantee, read from the auditor's sample/success counters
  (:func:`counter_ratio_sli`);
* **error/replay rate** — fraction of waves that did *not* need a
  repair-and-replay (:func:`error_rate_sli` over
  ``lazylsh_wave_replays_total`` vs ``lazylsh_queries_total``).

Evaluation follows the multi-window, multi-burn-rate alerting scheme
(Google SRE workbook ch. 5).  The **burn rate** over a window is::

    burn = windowed_error_rate / (1 - objective)

i.e. how many times faster than "exactly on objective" the error budget
is burning; burn 1.0 spends a 30-day budget in 30 days, burn 14.4
spends it in 50 hours.  Each :class:`BurnWindow` pairs a short and a
long lookback with a threshold, and fires only when **both** exceed it
— the long window proves the problem is material, the short window
proves it is *still happening* (fast reset).  The engine alerts once
per episode: a rising edge of "any window firing" increments
``lazylsh_slo_alerts_total{slo=...}`` exactly once until the SLO
recovers.

Windowed rates are computed from periodic snapshots of the cumulative
SLI counters (taken on each :meth:`SLOEngine.tick`, e.g. per ``/metrics``
scrape).  When the history is younger than a window, the oldest
snapshot stands in — a fresh process alerts on a real violation
immediately instead of waiting an hour to accumulate history.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import InvalidParameterError
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

#: An SLI: cumulative (good_events, total_events), monotone in both.
SLICallable = Callable[[], "tuple[float, float]"]


@dataclass(frozen=True)
class BurnWindow:
    """One (short, long) lookback pair with its burn-rate threshold."""

    name: str
    short_seconds: float
    long_seconds: float
    threshold: float

    def __post_init__(self) -> None:
        if not 0 < self.short_seconds <= self.long_seconds:
            raise InvalidParameterError(
                f"burn window {self.name!r} needs "
                f"0 < short <= long, got ({self.short_seconds}, "
                f"{self.long_seconds})"
            )
        if self.threshold <= 0:
            raise InvalidParameterError(
                f"burn window {self.name!r} threshold must be > 0, "
                f"got {self.threshold}"
            )


#: The SRE-workbook page/ticket pair scaled to a service fleet: the fast
#: window catches a budget burning 14.4x too fast (2% of a 30-day budget
#: in an hour), the slow window catches sustained 6x burns.
DEFAULT_WINDOWS: tuple[BurnWindow, ...] = (
    BurnWindow("fast", short_seconds=300.0, long_seconds=3600.0, threshold=14.4),
    BurnWindow("slow", short_seconds=1800.0, long_seconds=21600.0, threshold=6.0),
)


@dataclass(frozen=True)
class SLOSpec:
    """One objective over one SLI.

    ``objective`` is the target good fraction (e.g. ``0.99`` for "99% of
    queries under 50 ms"); the error budget is ``1 - objective``.
    """

    name: str
    objective: float
    sli: SLICallable
    description: str = ""
    windows: tuple[BurnWindow, ...] = field(default=DEFAULT_WINDOWS)

    def __post_init__(self) -> None:
        if not 0 < self.objective < 1:
            raise InvalidParameterError(
                f"SLO {self.name!r} objective must be in (0, 1), "
                f"got {self.objective}"
            )
        if not self.windows:
            raise InvalidParameterError(
                f"SLO {self.name!r} needs at least one burn window"
            )


class SLOEngine:
    """Evaluates registered :class:`SLOSpec`\\ s against snapshot history.

    Call :meth:`tick` periodically (the exporter does it on every
    ``/metrics`` scrape); read :meth:`state` for ``/healthz`` and
    ``repro top``.  Gauges/counters are published to the registry:

    * ``lazylsh_slo_burn_rate{slo, window}`` — current burn per lookback
      (window label is the lookback length, e.g. ``"300s"``);
    * ``lazylsh_slo_alert_active{slo}`` — 1 while an episode is open;
    * ``lazylsh_slo_alerts_total{slo}`` — episodes since start;
    * ``lazylsh_slo_error_rate{slo}`` — cumulative error fraction.

    Thread safety: one lock around tick/state, so the exporter thread
    and ``repro top``'s reader cannot interleave mid-evaluation.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_alert: Callable[[str, dict], None] | None = None,
    ) -> None:
        self.registry = registry
        self._clock = clock
        self._on_alert = on_alert
        self._lock = threading.Lock()
        self._specs: dict[str, SLOSpec] = {}
        #: Per-SLO snapshot history: list of (t, good, total), oldest first.
        self._history: dict[str, list[tuple[float, float, float]]] = {}
        self._alerting: dict[str, bool] = {}
        self._g_burn = registry.gauge(
            "lazylsh_slo_burn_rate",
            "Error-budget burn rate per SLO and lookback window",
        )
        self._g_active = registry.gauge(
            "lazylsh_slo_alert_active",
            "1 while the SLO has an open alert episode",
        )
        self._c_alerts = registry.counter(
            "lazylsh_slo_alerts_total",
            "SLO alert episodes since process start",
        )
        self._g_error = registry.gauge(
            "lazylsh_slo_error_rate",
            "Cumulative error fraction per SLO",
        )

    def add(self, spec: SLOSpec) -> SLOSpec:
        """Register (or replace) one SLO spec."""
        with self._lock:
            self._specs[spec.name] = spec
            self._history.setdefault(spec.name, [])
            self._alerting.setdefault(spec.name, False)
        return spec

    def names(self) -> list[str]:
        with self._lock:
            return list(self._specs)

    @staticmethod
    def _windowed_error_rate(
        history: list[tuple[float, float, float]],
        now: float,
        window_seconds: float,
    ) -> float:
        """Error fraction of events inside the lookback window.

        Uses the newest snapshot at or before ``now - window`` as the
        baseline; with history younger than the window, the oldest
        snapshot stands in (rate over all available history).
        """
        if not history:
            return 0.0
        cutoff = now - window_seconds
        baseline = history[0]
        for snap in history:
            if snap[0] <= cutoff:
                baseline = snap
            else:
                break
        _, good0, total0 = baseline
        _, good1, total1 = history[-1]
        d_total = total1 - total0
        if d_total <= 0:
            return 0.0
        d_bad = (total1 - good1) - (total0 - good0)
        return min(1.0, max(0.0, d_bad / d_total))

    def tick(self, now: float | None = None) -> dict:
        """Snapshot every SLI, evaluate burn rates, update alert state.

        Returns the same structure as :meth:`state` (evaluated fresh).
        """
        if now is None:
            now = self._clock()
        with self._lock:
            report = {"now": now, "alerting": [], "slos": []}
            horizon = max(
                (
                    w.long_seconds
                    for spec in self._specs.values()
                    for w in spec.windows
                ),
                default=0.0,
            )
            for name, spec in self._specs.items():
                good, total = spec.sli()
                history = self._history[name]
                history.append((now, float(good), float(total)))
                # Prune to the longest lookback (keep one pre-cutoff
                # snapshot as the window baseline).
                cutoff = now - horizon
                while len(history) > 2 and history[1][0] <= cutoff:
                    history.pop(0)
                budget = 1.0 - spec.objective
                cumulative_err = (
                    (total - good) / total if total > 0 else 0.0
                )
                self._g_error.set(cumulative_err, slo=name)
                windows_state = []
                firing = False
                for window in spec.windows:
                    burns = {}
                    for seconds in (window.short_seconds, window.long_seconds):
                        err = self._windowed_error_rate(history, now, seconds)
                        burn = err / budget
                        burns[seconds] = burn
                        self._g_burn.set(
                            burn, slo=name, window=f"{int(seconds)}s"
                        )
                    window_firing = all(
                        burn > window.threshold for burn in burns.values()
                    )
                    firing = firing or window_firing
                    windows_state.append(
                        {
                            "name": window.name,
                            "threshold": window.threshold,
                            "short_seconds": window.short_seconds,
                            "long_seconds": window.long_seconds,
                            "short_burn": burns[window.short_seconds],
                            "long_burn": burns[window.long_seconds],
                            "firing": window_firing,
                        }
                    )
                was_alerting = self._alerting[name]
                if firing and not was_alerting:
                    self._c_alerts.inc(slo=name)
                    if self._on_alert is not None:
                        try:
                            self._on_alert(
                                name,
                                {
                                    "objective": spec.objective,
                                    "error_rate": cumulative_err,
                                    "windows": windows_state,
                                },
                            )
                        except Exception:  # pragma: no cover - defensive
                            pass
                self._alerting[name] = firing
                self._g_active.set(1.0 if firing else 0.0, slo=name)
                if firing:
                    report["alerting"].append(name)
                report["slos"].append(
                    {
                        "name": name,
                        "description": spec.description,
                        "objective": spec.objective,
                        "good": float(good),
                        "total": float(total),
                        "error_rate": cumulative_err,
                        "alerting": firing,
                        "alert_episodes": self._c_alerts.value(slo=name),
                        "windows": windows_state,
                    }
                )
            report["healthy"] = not report["alerting"]
            return report

    def state(self) -> dict:
        """The last-evaluated alert state without taking a new snapshot."""
        with self._lock:
            return {
                "alerting": [n for n, on in self._alerting.items() if on],
                "slos": [
                    {
                        "name": name,
                        "objective": spec.objective,
                        "alerting": self._alerting[name],
                        "alert_episodes": self._c_alerts.value(slo=name),
                    }
                    for name, spec in self._specs.items()
                ],
            }


# ---------------------------------------------------------------------------
# SLI factories over the instruments the query path already maintains.


def latency_sli(histogram: Histogram, threshold_seconds: float) -> SLICallable:
    """Good = observations at or under ``threshold_seconds``.

    The threshold must equal one of the histogram's bucket bounds —
    Prometheus ``le`` semantics make any other cut line unobservable.
    """
    bounds = histogram.buckets
    if float(threshold_seconds) not in bounds:
        raise InvalidParameterError(
            f"latency SLO threshold {threshold_seconds} must be one of the "
            f"histogram's bucket bounds {list(bounds)}"
        )
    cut = bounds.index(float(threshold_seconds)) + 1

    def sli() -> tuple[float, float]:
        counts = histogram.bucket_counts()
        return float(sum(counts[:cut])), float(sum(counts))

    return sli


def counter_ratio_sli(good: Counter, total: Counter) -> SLICallable:
    """Good/total read from two cumulative counters (summed over labels)."""

    def sli() -> tuple[float, float]:
        return good.total(), total.total()

    return sli


def error_rate_sli(
    errors: Counter | Gauge, total: Counter
) -> SLICallable:
    """Good = total - errors, for counters that count *failures*."""

    def sli() -> tuple[float, float]:
        all_events = total.total()
        return max(0.0, all_events - errors.total()), all_events

    return sli
