"""Continuous sampling profiler: folded stacks and per-phase attribution.

The metrics/tracing planes can say *that* a query was slow; this module
says *where the time went*.  :class:`ContinuousProfiler` is a wall-clock
sampling profiler over :func:`sys._current_frames`: a daemon thread
wakes ``hz`` times per second, snapshots every other thread's Python
stack, and aggregates the snapshots into folded-stack counts —
the ``frame;frame;frame count`` text format flamegraph tooling consumes
directly (Brendan Gregg's ``flamegraph.pl``, speedscope, etc.).

Two attribution axes ride every sample:

* **per thread** — the sampled thread's name is the first folded
  segment, so the coordinator, the frontend planner and the exporter
  separate cleanly in one capture;
* **per phase** — each stack is classified into one of LazyLSH's
  serving phases (``hash`` / ``scan`` / ``merge`` / ``wave``, DESIGN
  §15) by matching frame file/function names against the code paths the
  existing span names (``serve.search_batch``, ``worker.round``,
  ``serve.merge``) already delimit.  Stacks parked in waits classify as
  ``idle``; anything else is ``other``.

Overhead discipline (same as tracing, DESIGN §10): a sample is one
``sys._current_frames()`` call plus a dict update — no tracing hooks,
no interpreter instrumentation — and the sampler publishes its own
measured duty cycle as ``lazylsh_profile_overhead_ratio`` so the
obs-smoke gate can assert the documented <= 3% budget against a live
fleet rather than trusting the design.

The exporter serves captures at ``GET /profile`` (the continuous
aggregate) and ``GET /profile?seconds=N`` (a fresh on-demand capture).
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Iterable, Mapping

from repro.errors import InvalidParameterError
from repro.obs.registry import MetricsRegistry

#: Phase labels, most specific classification first; ``other`` and
#: ``idle`` are the fallthroughs.
PHASES = ("hash", "scan", "merge", "wave", "other", "idle")

#: Frame-name patterns per phase.  A pattern matches a frame when the
#: file's basename contains the first element and (if non-empty) the
#: function name starts with one of the listed prefixes.  Classification
#: walks the stack leaf-first, so the innermost phase-bearing frame
#: wins — a ``_merge_round`` running under ``_run_wave`` is ``merge``.
_PHASE_RULES: tuple[tuple[str, str, tuple[str, ...]], ...] = (
    ("hash", "hashing", ()),
    ("hash", "", ("hash_points",)),
    ("scan", "worker", ("round", "_scan", "_window")),
    ("scan", "inverted_index", ()),
    ("scan", "engine", ("run_query", "_scan", "charge")),
    ("scan", "multiquery", ("_scan", "_round")),
    ("merge", "service", ("_merge_round", "_finish_run", "_merge_wave")),
    ("merge", "multiquery", ("_merge", "_fan")),
    ("wave", "service", ("_run_wave", "_broadcast", "_send", "_recv",
                         "_execute", "search_batch", "search")),
    ("wave", "frontend", ("_execute_plan", "_run_scans")),
)

#: Leaf function names that mean "parked, not burning CPU".
_IDLE_LEAVES = frozenset(
    (
        "wait", "sleep", "select", "poll", "epoll", "accept", "recv",
        "recv_bytes", "read", "readinto", "readline", "_recv", "get",
        "acquire", "run_forever", "serve_forever", "_run_once",
        "handle_request", "get_request",
    )
)


def classify_frames(frames: Iterable[tuple[str, str]]) -> str:
    """Phase of one sampled stack; ``frames`` are (filename, funcname).

    The stack is scanned leaf-first (callers pass root-first order, as
    stored in folded form).  Returns the first matching phase, ``idle``
    when the leaf is a known wait, else ``other``.
    """
    stack = list(frames)
    for filename, func in reversed(stack):
        for phase, file_part, func_prefixes in _PHASE_RULES:
            if file_part and file_part not in filename:
                continue
            if func_prefixes and not any(
                func.startswith(prefix) for prefix in func_prefixes
            ):
                continue
            if not file_part and not func_prefixes:  # pragma: no cover
                continue
            return phase
    if stack and stack[-1][1] in _IDLE_LEAVES:
        return "idle"
    return "other"


def _frame_label(filename: str, func: str) -> str:
    """``basename:func`` — short, stable across checkouts."""
    base = filename.rsplit("/", 1)[-1]
    if base.endswith(".py"):
        base = base[:-3]
    return f"{base}:{func}"


class ContinuousProfiler:
    """Daemon-thread wall-clock sampler with folded-stack aggregation.

    Parameters
    ----------
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when
        given, per-phase sample counts, the configured rate and the
        measured sampling duty cycle are published as
        ``lazylsh_profile_*`` instruments.
    hz:
        Target sampling rate (samples per second), in ``(0, 1000]``.
        The default 29 Hz deliberately avoids divisors of common
        scheduler quanta (lockstep sampling aliases periodic work) and
        keeps the sampling duty cycle well under 1% even on a
        single-core host, where the sampler thread steals wall-clock
        directly from the serving path (the <=3% overhead gate in
        ``benchmarks/obs_smoke.py`` is measured, not assumed).
    max_depth:
        Frames kept per stack (leaf-most beyond it are truncated).
    max_stacks:
        Distinct folded stacks retained; the rarest stacks are dropped
        first once the table is full, so a long-running server's
        profile stays bounded.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        hz: float = 29.0,
        max_depth: int = 64,
        max_stacks: int = 4096,
    ) -> None:
        if not 0 < hz <= 1000:
            raise InvalidParameterError(
                f"profiler hz must be in (0, 1000], got {hz}"
            )
        if max_depth < 1:
            raise InvalidParameterError(
                f"profiler max_depth must be >= 1, got {max_depth}"
            )
        if max_stacks < 1:
            raise InvalidParameterError(
                f"profiler max_stacks must be >= 1, got {max_stacks}"
            )
        self.hz = float(hz)
        self.max_depth = int(max_depth)
        self.max_stacks = int(max_stacks)
        self._lock = threading.Lock()
        #: (thread_name, phase, folded_frames) -> sample count
        self._folded: dict[tuple[str, str, str], int] = {}
        self._phase_counts: dict[str, int] = {}
        self._thread_counts: dict[str, int] = {}
        self.samples = 0
        self._dropped_stacks = 0
        self._sampling_seconds = 0.0
        self._started_at: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._c_samples = None
        self._g_hz = None
        self._g_overhead = None
        self._c_captures = None
        if registry is not None:
            self._c_samples = registry.counter(
                "lazylsh_profile_samples_total",
                "Profiler stack samples by serving phase",
            )
            self._g_hz = registry.gauge(
                "lazylsh_profile_hz", "Configured profiler sampling rate"
            )
            self._g_overhead = registry.gauge(
                "lazylsh_profile_overhead_ratio",
                "Measured fraction of wall time spent taking samples",
            )
            self._c_captures = registry.counter(
                "lazylsh_profile_captures_total",
                "On-demand /profile?seconds=N captures served",
            )
            self._g_hz.set(self.hz)

    # -- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ContinuousProfiler":
        """Begin continuous sampling on a daemon thread (idempotent)."""
        if self.running:
            return self
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sampling thread and join it (idempotent)."""
        thread = self._thread
        self._thread = None
        self._stop.set()
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)

    def __enter__(self) -> "ContinuousProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop.is_set():
            t0 = time.perf_counter()
            self.sample_once()
            spent = time.perf_counter() - t0
            with self._lock:
                self._sampling_seconds += spent
            if self._g_overhead is not None and self._started_at is not None:
                wall = time.perf_counter() - self._started_at
                if wall > 0:
                    self._g_overhead.set(self._sampling_seconds / wall)
            self._stop.wait(max(0.0, interval - spent))

    # -- sampling --------------------------------------------------------

    def sample_once(
        self, accumulator: dict[tuple[str, str, str], int] | None = None
    ) -> int:
        """Take one snapshot of every other thread's stack.

        Folds each stack into the continuous aggregate (or into
        ``accumulator`` for on-demand captures) and returns the number
        of threads sampled.  Exposed directly so tests can drive the
        profiler deterministically without the timer thread.
        """
        me = threading.get_ident()
        frames = sys._current_frames()
        names = {t.ident: t.name for t in threading.enumerate()}
        sampled = 0
        records = []
        for tid, frame in frames.items():
            if tid == me:
                continue
            stack: list[tuple[str, str]] = []
            f = frame
            while f is not None and len(stack) < self.max_depth:
                code = f.f_code
                stack.append((code.co_filename, code.co_name))
                f = f.f_back
            stack.reverse()  # root-first, like a flame graph
            phase = classify_frames(stack)
            folded = ";".join(_frame_label(fn, fu) for fn, fu in stack)
            thread_name = names.get(tid, f"tid-{tid}")
            records.append((thread_name, phase, folded))
            sampled += 1
        del frames  # drop frame references promptly
        with self._lock:
            target = self._folded if accumulator is None else accumulator
            for key in records:
                target[key] = target.get(key, 0) + 1
                if accumulator is None:
                    thread_name, phase, _ = key
                    self.samples += 1
                    self._phase_counts[phase] = (
                        self._phase_counts.get(phase, 0) + 1
                    )
                    self._thread_counts[thread_name] = (
                        self._thread_counts.get(thread_name, 0) + 1
                    )
            if accumulator is None and len(self._folded) > self.max_stacks:
                self._evict_locked()
        if accumulator is None and self._c_samples is not None:
            for _, phase, _ in records:
                self._c_samples.inc(phase=phase)
        return sampled

    def _evict_locked(self) -> None:
        """Drop the rarest stacks until the table fits (lock held)."""
        keep = sorted(
            self._folded.items(), key=lambda kv: kv[1], reverse=True
        )[: self.max_stacks]
        self._dropped_stacks += len(self._folded) - len(keep)
        self._folded = dict(keep)

    def capture(self, seconds: float, *, hz: float | None = None) -> str:
        """Blocking on-demand capture; returns its folded-stack text.

        Samples into a private accumulator for ``seconds`` (at ``hz``,
        default the profiler's own rate) without disturbing the
        continuous aggregate.  This is what ``GET /profile?seconds=N``
        serves; it works whether or not the continuous thread runs.
        """
        if not 0 < seconds <= 60:
            raise InvalidParameterError(
                f"capture seconds must be in (0, 60], got {seconds}"
            )
        rate = self.hz if hz is None else float(hz)
        if not 0 < rate <= 1000:
            raise InvalidParameterError(
                f"capture hz must be in (0, 1000], got {rate}"
            )
        interval = 1.0 / rate
        local: dict[tuple[str, str, str], int] = {}
        deadline = time.perf_counter() + float(seconds)
        while time.perf_counter() < deadline:
            t0 = time.perf_counter()
            self.sample_once(accumulator=local)
            time.sleep(max(0.0, interval - (time.perf_counter() - t0)))
        if self._c_captures is not None:
            self._c_captures.inc()
        return self.render_folded(local)

    # -- read side -------------------------------------------------------

    @staticmethod
    def render_folded(
        folded: Mapping[tuple[str, str, str], int]
    ) -> str:
        """Folded accumulator -> flamegraph text, one stack per line.

        Lines read ``thread;phase:<phase>;frame;...;frame count`` —
        plain semicolon-folded stacks with the thread and phase as the
        two root segments, so standard flamegraph tooling groups by
        thread then phase for free.
        """
        lines = []
        for (thread, phase, stack), count in sorted(
            folded.items(), key=lambda kv: kv[1], reverse=True
        ):
            root = f"{thread};phase:{phase}"
            lines.append(
                f"{root};{stack} {count}" if stack else f"{root} {count}"
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def folded(self) -> str:
        """The continuous aggregate as flamegraph folded text."""
        with self._lock:
            return self.render_folded(dict(self._folded))

    def phase_table(self) -> dict[str, dict]:
        """Per-phase sample counts and fractions (``repro top`` fodder)."""
        with self._lock:
            total = self.samples
            return {
                phase: {
                    "samples": count,
                    "fraction": (count / total) if total else 0.0,
                }
                for phase, count in sorted(
                    self._phase_counts.items(),
                    key=lambda kv: kv[1],
                    reverse=True,
                )
            }

    def thread_table(self) -> dict[str, int]:
        """Per-thread sample counts."""
        with self._lock:
            return dict(self._thread_counts)

    def stats(self) -> dict:
        """JSON-serialisable sampler state (served beside the capture)."""
        with self._lock:
            wall = (
                time.perf_counter() - self._started_at
                if self._started_at is not None
                else 0.0
            )
            return {
                "running": self.running,
                "hz": self.hz,
                "samples": self.samples,
                "distinct_stacks": len(self._folded),
                "dropped_stacks": self._dropped_stacks,
                "sampling_seconds": self._sampling_seconds,
                "duty_cycle": (
                    self._sampling_seconds / wall if wall > 0 else 0.0
                ),
            }

    def clear(self) -> None:
        """Reset the continuous aggregate (rate and lifecycle are kept)."""
        with self._lock:
            self._folded.clear()
            self._phase_counts.clear()
            self._thread_counts.clear()
            self.samples = 0
            self._dropped_stacks = 0
            self._sampling_seconds = 0.0
            if self._started_at is not None:
                self._started_at = time.perf_counter()
