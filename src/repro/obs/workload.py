"""Workload analytics: heavy hitters, demand histograms, cache efficacy.

ROADMAP's remaining frontiers — weighted per-user ``lp`` functions and
multi-family search — all start with the same question: *what does the
live workload actually look like?*  This module answers it with three
bounded-memory summaries maintained on the query hot path:

* **Heavy hitters** over (a) exact query digests and (b) round-0 base
  buckets (the untrimmed ``hash_points`` signature that round 0 scans),
  via the Space-Saving sketch of Metwally, Agrawal & El Abbadi (2005).
  With capacity ``m``, after ``N`` observations every reported count
  over-estimates its key's true frequency by at most ``N / m`` (the
  tracked ``error`` field bounds it per key), and any key with true
  frequency above ``N / m`` is guaranteed to be in the sketch.  64
  counters therefore pin down every bucket hotter than ~1.6% of
  traffic, in O(m) memory regardless of workload size.
* **Demand histograms** over a rolling window of ``(p, k)`` pairs — the
  distribution the multi-metric frontend and any future family-picker
  would route on.
* **Cache efficacy by heat**: the frontend reports every result-cache
  lookup with the query's base bucket; hit rates split into *hot*
  (bucket currently a top heavy hitter) vs *cold* tell us whether cache
  admission favouring hot buckets is actually paying off.

Everything is exported as ``lazylsh_workload_*`` metrics, summarised by
:meth:`WorkloadAnalytics.stats` (surfaced at ``/v1/stats`` and in
``repro top``), and consulted by the frontend's cache-eviction policy
via :meth:`WorkloadAnalytics.is_hot`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Hashable

import numpy as np

from repro.errors import InvalidParameterError
from repro.obs.registry import MetricsRegistry


class SpaceSavingSketch:
    """Space-Saving heavy-hitter sketch (Metwally et al., 2005).

    Tracks at most ``capacity`` keys.  A new key arriving at a full
    sketch evicts the minimum-count entry and inherits its count (plus
    the new weight), recording that minimum as its ``error`` —
    the classic over-estimate bound.  ``top(n)`` reports
    ``(key, count, error)`` descending; the true frequency of ``key``
    lies in ``[count - error, count]``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                f"sketch capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self._counts: dict[Hashable, int] = {}
        self._errors: dict[Hashable, int] = {}
        self.total = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._counts)

    def observe(self, key: Hashable, weight: int = 1) -> None:
        """Count one occurrence of ``key`` (``weight`` of them)."""
        weight = int(weight)
        if weight <= 0:
            raise InvalidParameterError(
                f"sketch weight must be >= 1, got {weight}"
            )
        self.total += weight
        if key in self._counts:
            self._counts[key] += weight
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = weight
            self._errors[key] = 0
            return
        victim = min(self._counts, key=self._counts.__getitem__)
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self.evictions += 1
        self._counts[key] = floor + weight
        self._errors[key] = floor

    def count(self, key: Hashable) -> int:
        """Tracked (over-estimated) count for ``key``; 0 if untracked."""
        return self._counts.get(key, 0)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts

    def top(self, n: int) -> list[tuple[Hashable, int, int]]:
        """The ``n`` heaviest tracked keys as ``(key, count, error)``."""
        ranked = sorted(
            self._counts.items(), key=lambda kv: kv[1], reverse=True
        )
        return [(key, count, self._errors[key]) for key, count in ranked[:n]]

    def error_bound(self) -> float:
        """Max over-estimate any reported count can carry: ``N / m``."""
        return self.total / self.capacity


class WorkloadAnalytics:
    """Live workload summary shared by the service and the frontend.

    Thread-safe: the service's merge loop and the frontend's planner
    both feed it (``observe_query`` / ``note_cache``) while ``stats``
    and ``is_hot`` read concurrently.  All state is O(sketch capacity +
    demand window) regardless of traffic.

    The canonical *bucket* key is the raw ``.tobytes()`` of the full
    (untrimmed) int64 ``hash_points`` column of the query — the round-0
    base bucket every metric's scan starts from — so the service-side
    and frontend-side feeds agree on identity.  Bytes keep the hot-path
    feed to one memcpy per query (a Python int tuple over ``eta`` ~1000
    hash values costs ~10x more per wave); :meth:`heavy_hitters`
    decodes them back to int lists for display.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        sketch_capacity: int = 64,
        demand_window: int = 2048,
        hot_buckets: int = 8,
    ) -> None:
        if hot_buckets < 1:
            raise InvalidParameterError(
                f"hot_buckets must be >= 1, got {hot_buckets}"
            )
        if demand_window < 1:
            raise InvalidParameterError(
                f"demand_window must be >= 1, got {demand_window}"
            )
        self.hot_buckets = int(hot_buckets)
        self._lock = threading.Lock()
        self._digests = SpaceSavingSketch(sketch_capacity)
        self._buckets = SpaceSavingSketch(sketch_capacity)
        self._demand: deque[tuple[float, int]] = deque(maxlen=demand_window)
        self._cache: dict[tuple[str, str], int] = {}
        self._observed = 0
        self._c_queries = None
        self._c_cache = None
        self._g_tracked = None
        if registry is not None:
            self._c_queries = registry.counter(
                "lazylsh_workload_queries_total",
                "Queries observed by workload analytics, by (p, k)",
            )
            self._c_cache = registry.counter(
                "lazylsh_workload_cache_lookups_total",
                "Frontend cache lookups by bucket heat and outcome",
            )
            self._g_tracked = registry.gauge(
                "lazylsh_workload_tracked_keys",
                "Keys currently tracked by the heavy-hitter sketches",
            )

    # -- write side ------------------------------------------------------

    def observe_query(
        self,
        *,
        digest: str,
        bucket: bytes,
        p: float,
        k: int,
    ) -> None:
        """Feed one executed query into the sketches and histograms."""
        with self._lock:
            self._digests.observe(digest)
            self._buckets.observe(bucket)
            self._demand.append((float(p), int(k)))
            self._observed += 1
            observed = self._observed
        if self._c_queries is not None:
            self._c_queries.inc(p=f"{float(p):g}", k=str(int(k)))
        # The tracked-key gauges only move while the sketches are still
        # filling, so refreshing them on every query buys nothing once
        # they saturate; sampling every 32nd keeps the per-query feed to
        # two counter bumps.
        if self._g_tracked is not None and observed % 32 == 1:
            self._g_tracked.set(len(self._digests), sketch="digests")
            self._g_tracked.set(len(self._buckets), sketch="buckets")

    def note_cache(self, bucket: bytes, *, hit: bool) -> str:
        """Record a frontend cache lookup; returns the bucket's heat."""
        heat = "hot" if self.is_hot(bucket) else "cold"
        outcome = "hit" if hit else "miss"
        with self._lock:
            key = (heat, outcome)
            self._cache[key] = self._cache.get(key, 0) + 1
        if self._c_cache is not None:
            self._c_cache.inc(heat=heat, outcome=outcome)
        return heat

    # -- read side -------------------------------------------------------

    def is_hot(self, bucket: bytes) -> bool:
        """Whether ``bucket`` is currently a top-``hot_buckets`` hitter."""
        with self._lock:
            top = self._buckets.top(self.hot_buckets)
        return any(key == bucket for key, _, _ in top)

    @staticmethod
    def _decode_bucket(key: Hashable) -> list:
        """Canonical int64-bytes keys back to int lists for display."""
        if isinstance(key, bytes):
            return np.frombuffer(key, dtype=np.int64).tolist()
        return list(key)  # tolerate tuple keys from hand-fed sketches

    def heavy_hitters(self, n: int = 10) -> dict:
        """Top query digests and base buckets with error bounds."""
        with self._lock:
            return {
                "digests": [
                    {"digest": key, "count": count, "error": error}
                    for key, count, error in self._digests.top(n)
                ],
                "buckets": [
                    {
                        "bucket": self._decode_bucket(key),
                        "count": count,
                        "error": error,
                    }
                    for key, count, error in self._buckets.top(n)
                ],
                "total": self._buckets.total,
                "error_bound": self._buckets.error_bound(),
            }

    def demand(self) -> dict:
        """Rolling ``(p, k)`` demand histogram over the window."""
        with self._lock:
            window = list(self._demand)
        p_hist: dict[str, int] = {}
        k_hist: dict[str, int] = {}
        for p, k in window:
            p_key = f"{p:g}"
            k_key = str(k)
            p_hist[p_key] = p_hist.get(p_key, 0) + 1
            k_hist[k_key] = k_hist.get(k_key, 0) + 1
        return {"window": len(window), "p": p_hist, "k": k_hist}

    def cache_efficacy(self) -> dict:
        """Cache hit rates split by bucket heat (hot vs cold)."""
        with self._lock:
            counts = dict(self._cache)
        out = {}
        for heat in ("hot", "cold"):
            hits = counts.get((heat, "hit"), 0)
            misses = counts.get((heat, "miss"), 0)
            lookups = hits + misses
            out[heat] = {
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / lookups) if lookups else None,
            }
        return out

    def stats(self) -> dict:
        """Full JSON-serialisable summary (``/v1/stats``, ``repro top``)."""
        return {
            "heavy_hitters": self.heavy_hitters(),
            "demand": self.demand(),
            "cache": self.cache_efficacy(),
        }
