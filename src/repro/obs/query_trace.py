"""Structured per-query trace records for Algorithm 4 executions.

A :class:`QueryTrace` captures what the paper's evaluation (Section 5)
reads off internal counters, but per query and per rehashing round:
collision counts, threshold crossings (candidate promotions), cumulative
candidate / within-radius counters, the simulated I/O delta of each
round, and why the query terminated.  The flat and scalar engines emit
traces through the same :class:`QueryTraceBuilder` hook surface, so a
trace is comparable across execution plans — round structure, I/O deltas
and the termination reason are bit-identical between the two.  The
sharded service (:mod:`repro.serve`) emits one *merged* trace per query
under ``engine="sharded"``, again through the same hooks and with the
same cross-plan invariants.

Serialisation is one JSON object per query (JSONL for a whole run);
:func:`validate_trace_dict` checks a record against :data:`TRACE_SCHEMA`
without any external schema library.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.errors import ReproError
from repro.storage.io_stats import IOStats

#: Query stopped because ``k`` candidates lay within ``c * delta``
#: (Algorithm 4 line 15).
TERMINATION_K_WITHIN = "k_within_radius"

#: Query stopped because the candidate budget ``k + beta * n`` was
#: exhausted (Algorithm 4 line 16).
TERMINATION_CAP = "candidate_cap"

TERMINATION_REASONS = (TERMINATION_K_WITHIN, TERMINATION_CAP)

#: Trace record version; bump on breaking schema changes.
TRACE_VERSION = 1


class TraceSchemaError(ReproError, ValueError):
    """A trace record does not conform to :data:`TRACE_SCHEMA`."""


#: JSON-Schema-shaped description of one serialised :class:`QueryTrace`.
#: Kept data-only so external tooling can consume it; the in-repo
#: validator (:func:`validate_trace_dict`) implements exactly this.
TRACE_SCHEMA: dict = {
    "type": "object",
    "required": [
        "version",
        "p",
        "k",
        "engine",
        "rehashing",
        "termination",
        "candidates",
        "num_rounds",
        "io",
        "rounds",
    ],
    "properties": {
        "version": {"type": "integer", "const": TRACE_VERSION},
        "query_id": {"type": ["integer", "null"]},
        "p": {"type": "number", "exclusiveMinimum": 0},
        "k": {"type": "integer", "minimum": 1},
        "engine": {"type": "string", "enum": ["flat", "scalar", "sharded"]},
        "rehashing": {"type": "string"},
        "termination": {"type": "string", "enum": list(TERMINATION_REASONS)},
        "candidates": {"type": "integer", "minimum": 0},
        "num_rounds": {"type": "integer", "minimum": 1},
        "elapsed_seconds": {"type": ["number", "null"], "minimum": 0},
        "io": {
            "type": "object",
            "required": ["sequential", "random"],
            "properties": {
                "sequential": {"type": "integer", "minimum": 0},
                "random": {"type": "integer", "minimum": 0},
            },
        },
        "rounds": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "round",
                    "level",
                    "radius",
                    "collisions",
                    "crossings",
                    "candidates",
                    "within",
                    "io",
                ],
                "properties": {
                    "round": {"type": "integer", "minimum": 1},
                    "level": {"type": "number"},
                    "radius": {"type": "number"},
                    "collisions": {"type": "integer", "minimum": 0},
                    "crossings": {"type": "integer", "minimum": 0},
                    "candidates": {"type": "integer", "minimum": 0},
                    "within": {"type": "integer", "minimum": 0},
                    "io": {
                        "type": "object",
                        "required": ["sequential", "random"],
                    },
                },
            },
        },
    },
}


@dataclass
class RoundRecord:
    """One rehashing round of one query.

    ``collisions`` counts inverted-list entries consumed (collision
    counter increments), ``crossings`` the candidates promoted this
    round; ``candidates``/``within`` are cumulative at round end, and
    ``io`` is the round's simulated I/O *delta*.
    """

    round: int
    level: float
    radius: float
    collisions: int
    crossings: int
    candidates: int
    within: int
    io: IOStats = field(default_factory=IOStats)

    def to_dict(self) -> dict:
        return {
            "round": self.round,
            "level": self.level,
            "radius": self.radius,
            "collisions": self.collisions,
            "crossings": self.crossings,
            "candidates": self.candidates,
            "within": self.within,
            "io": self.io.to_dict(),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "RoundRecord":
        return cls(
            round=record["round"],
            level=record["level"],
            radius=record["radius"],
            collisions=record["collisions"],
            crossings=record["crossings"],
            candidates=record["candidates"],
            within=record["within"],
            io=IOStats.from_dict(record["io"]),
        )


@dataclass
class QueryTrace:
    """Complete structured record of one ``Np(q, k, c)`` execution."""

    p: float
    k: int
    engine: str
    rehashing: str
    termination: str
    candidates: int
    io: IOStats
    rounds: list[RoundRecord] = field(default_factory=list)
    query_id: int | None = None
    elapsed_seconds: float | None = None

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def io_delta_sum(self) -> IOStats:
        """Sum of the per-round I/O deltas (equals :attr:`io` exactly)."""
        total = IOStats()
        for record in self.rounds:
            total.add_sequential(record.io.sequential)
            total.add_random(record.io.random)
        return total

    def to_dict(self) -> dict:
        return {
            "version": TRACE_VERSION,
            "query_id": self.query_id,
            "p": self.p,
            "k": self.k,
            "engine": self.engine,
            "rehashing": self.rehashing,
            "termination": self.termination,
            "candidates": self.candidates,
            "num_rounds": self.num_rounds,
            "elapsed_seconds": self.elapsed_seconds,
            "io": self.io.to_dict(),
            "rounds": [record.to_dict() for record in self.rounds],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "QueryTrace":
        return cls(
            p=record["p"],
            k=record["k"],
            engine=record["engine"],
            rehashing=record["rehashing"],
            termination=record["termination"],
            candidates=record["candidates"],
            io=IOStats.from_dict(record["io"]),
            rounds=[RoundRecord.from_dict(r) for r in record["rounds"]],
            query_id=record.get("query_id"),
            elapsed_seconds=record.get("elapsed_seconds"),
        )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise TraceSchemaError(message)


def validate_trace_dict(record: dict) -> None:
    """Validate one serialised trace against :data:`TRACE_SCHEMA`.

    Raises :class:`TraceSchemaError` on the first violation.  Also checks
    the cross-field invariant the schema cannot express: the per-round
    I/O deltas must sum to the trace's I/O totals exactly.
    """
    _require(isinstance(record, dict), "trace record must be an object")
    for name in TRACE_SCHEMA["required"]:
        _require(name in record, f"trace record missing field {name!r}")
    _require(
        record["version"] == TRACE_VERSION,
        f"unsupported trace version {record['version']!r}",
    )
    _require(
        isinstance(record["p"], (int, float)) and record["p"] > 0,
        "p must be a positive number",
    )
    _require(
        isinstance(record["k"], int) and record["k"] >= 1,
        "k must be an integer >= 1",
    )
    _require(
        record["engine"] in ("flat", "scalar", "sharded"),
        f"unknown engine {record['engine']!r}",
    )
    _require(
        record["termination"] in TERMINATION_REASONS,
        f"unknown termination reason {record['termination']!r}",
    )
    _require(
        isinstance(record["candidates"], int) and record["candidates"] >= 0,
        "candidates must be a non-negative integer",
    )
    qid = record.get("query_id")
    _require(
        qid is None or isinstance(qid, int),
        "query_id must be an integer or null",
    )
    elapsed = record.get("elapsed_seconds")
    _require(
        elapsed is None or (isinstance(elapsed, (int, float)) and elapsed >= 0),
        "elapsed_seconds must be a non-negative number or null",
    )

    def check_io(io: object, where: str) -> tuple[int, int]:
        _require(isinstance(io, dict), f"{where} io must be an object")
        for axis in ("sequential", "random"):
            _require(
                isinstance(io.get(axis), int) and io[axis] >= 0,
                f"{where} io.{axis} must be a non-negative integer",
            )
        return io["sequential"], io["random"]

    total_seq, total_rnd = check_io(record["io"], "trace")
    rounds = record["rounds"]
    _require(isinstance(rounds, list) and rounds, "rounds must be non-empty")
    _require(
        record["num_rounds"] == len(rounds),
        f"num_rounds={record['num_rounds']} but {len(rounds)} round records",
    )
    sum_seq = sum_rnd = 0
    for j, rnd in enumerate(rounds):
        where = f"round[{j}]"
        _require(isinstance(rnd, dict), f"{where} must be an object")
        for name in (
            "round",
            "level",
            "radius",
            "collisions",
            "crossings",
            "candidates",
            "within",
            "io",
        ):
            _require(name in rnd, f"{where} missing field {name!r}")
        _require(rnd["round"] == j + 1, f"{where} has round={rnd['round']}")
        for name in ("collisions", "crossings", "candidates", "within"):
            _require(
                isinstance(rnd[name], int) and rnd[name] >= 0,
                f"{where}.{name} must be a non-negative integer",
            )
        seq, rnd_io = check_io(rnd["io"], where)
        sum_seq += seq
        sum_rnd += rnd_io
    _require(
        (sum_seq, sum_rnd) == (total_seq, total_rnd),
        f"per-round I/O deltas sum to ({sum_seq}, {sum_rnd}) but the trace "
        f"total is ({total_seq}, {total_rnd})",
    )


class QueryTraceBuilder:
    """Incremental :class:`QueryTrace` construction hook for the engines.

    The engines call ``begin_round`` / ``add_collisions`` /
    ``add_crossings`` / ``end_round`` as Algorithm 4 progresses and
    ``finish`` once the query terminates.  The builder snapshots the
    query's :class:`IOStats` at round boundaries, so round records carry
    exact I/O deltas without the engine exposing private counters.
    """

    def __init__(
        self,
        *,
        p: float,
        k: int,
        engine: str,
        rehashing: str,
        query_id: int | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.p = p
        self.k = k
        self.engine = engine
        self.rehashing = rehashing
        self.query_id = query_id
        self.rounds: list[RoundRecord] = []
        self._clock = clock
        self._t0 = clock()
        self._cur: dict | None = None

    def begin_round(self, *, level: float, radius: float, io: IOStats) -> None:
        """Open a round record; ``io`` is snapshotted for the delta."""
        self._cur = {
            "level": float(level),
            "radius": float(radius),
            "seq0": io.sequential,
            "rnd0": io.random,
            "collisions": 0,
            "crossings": 0,
        }

    def add_collisions(self, count: int) -> None:
        """Record ``count`` collision-counter increments this round."""
        self._cur["collisions"] += int(count)

    def add_crossings(self, count: int) -> None:
        """Record ``count`` threshold crossings (promotions) this round."""
        self._cur["crossings"] += int(count)

    def end_round(self, *, io: IOStats, candidates: int, within: int) -> None:
        """Close the open round with cumulative counters and I/O delta."""
        cur = self._cur
        self.rounds.append(
            RoundRecord(
                round=len(self.rounds) + 1,
                level=cur["level"],
                radius=cur["radius"],
                collisions=cur["collisions"],
                crossings=cur["crossings"],
                candidates=int(candidates),
                within=int(within),
                io=IOStats(
                    sequential=io.sequential - cur["seq0"],
                    random=io.random - cur["rnd0"],
                ),
            )
        )
        self._cur = None

    def finish(
        self, *, termination: str, io: IOStats, candidates: int
    ) -> QueryTrace:
        """Seal the trace with the termination reason and I/O totals."""
        return QueryTrace(
            p=self.p,
            k=self.k,
            engine=self.engine,
            rehashing=self.rehashing,
            termination=termination,
            candidates=int(candidates),
            io=io.snapshot(),
            rounds=self.rounds,
            query_id=self.query_id,
            elapsed_seconds=self._clock() - self._t0,
        )


def write_traces_jsonl(
    traces: Iterable[QueryTrace], path: str | Path
) -> Path:
    """Write traces as one JSON object per line."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for trace in traces:
            fh.write(json.dumps(trace.to_dict()) + "\n")
    return path


def load_traces_jsonl(
    path: str | Path, *, validate: bool = True
) -> list[QueryTrace]:
    """Read (and by default validate) traces from a JSONL file."""
    traces = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if validate:
                validate_trace_dict(record)
            traces.append(QueryTrace.from_dict(record))
    return traces
