"""Query EXPLAIN: a structured plan/cost report for one Np(q, k, c) run.

LazyLSH has no optimizer, but Algorithm 4 still executes a *plan*: a
sequence of rehashing rounds, each scanning wider query windows over the
same base index (radius ``delta * c^j``), promoting candidates whose
collision counters cross the threshold, until either ``k`` neighbours
sit within ``c * delta`` (``k_within_radius``) or the candidate budget
``k + beta * n`` is exhausted (``candidate_cap``).  An EXPLAIN record
flattens one :class:`~repro.obs.query_trace.QueryTrace` into exactly
that story — per-round windows scanned, candidates promoted, how far
each termination counter had progressed, the round's simulated I/O
delta — plus the shard-level view only the sharded service can add:
per-shard random I/O and the skew between the busiest shard and the
mean.

The record is produced by :func:`build_explain` from the trace the
engine already emits (no second instrumentation path, so the I/O
delta-sum invariant of :func:`~repro.obs.query_trace.validate_trace_dict`
holds for EXPLAIN for free), validated by :func:`validate_explain_dict`
against :data:`EXPLAIN_SCHEMA`, carried on ``SearchResult.explain``
when ``SearchRequest(explain=True)``, shipped over the v1 wire codec as
a plain dict, and rendered for humans by :func:`render_explain` (the
``repro explain`` subcommand).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.obs.query_trace import (
    TERMINATION_REASONS,
    QueryTrace,
    validate_trace_dict,
)
from repro.storage.io_stats import IOStats

#: EXPLAIN record version; bump on breaking schema changes.
EXPLAIN_VERSION = 1


class ExplainSchemaError(ReproError, ValueError):
    """An EXPLAIN record does not conform to :data:`EXPLAIN_SCHEMA`."""


#: JSON-Schema-shaped description of one EXPLAIN record (same data-only
#: convention as :data:`~repro.obs.query_trace.TRACE_SCHEMA`).
EXPLAIN_SCHEMA: dict = {
    "type": "object",
    "required": [
        "version",
        "p",
        "k",
        "engine",
        "rehashing",
        "termination",
        "candidates",
        "num_rounds",
        "io",
        "rounds",
    ],
    "properties": {
        "version": {"type": "integer", "const": EXPLAIN_VERSION},
        "query_id": {"type": ["integer", "null"]},
        "request_id": {"type": ["string", "null"]},
        "trace_id": {"type": ["string", "null"]},
        "p": {"type": "number", "exclusiveMinimum": 0},
        "k": {"type": "integer", "minimum": 1},
        "engine": {"type": "string", "enum": ["flat", "scalar", "sharded"]},
        "rehashing": {"type": "string"},
        "termination": {"type": "string", "enum": list(TERMINATION_REASONS)},
        "candidates": {"type": "integer", "minimum": 0},
        "cap": {"type": ["integer", "null"], "minimum": 1},
        "num_rounds": {"type": "integer", "minimum": 1},
        "elapsed_seconds": {"type": ["number", "null"], "minimum": 0},
        "io": {
            "type": "object",
            "required": ["sequential", "random"],
            "properties": {
                "sequential": {"type": "integer", "minimum": 0},
                "random": {"type": "integer", "minimum": 0},
            },
        },
        "rounds": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "round",
                    "level",
                    "radius",
                    "windows_scanned",
                    "promoted",
                    "candidates_total",
                    "within_radius",
                    "k_progress",
                    "cap_progress",
                    "io",
                ],
                "properties": {
                    "round": {"type": "integer", "minimum": 1},
                    "level": {"type": "number"},
                    "radius": {"type": "number"},
                    "windows_scanned": {"type": "integer", "minimum": 0},
                    "promoted": {"type": "integer", "minimum": 0},
                    "candidates_total": {"type": "integer", "minimum": 0},
                    "within_radius": {"type": "integer", "minimum": 0},
                    "k_progress": {"type": "number", "minimum": 0},
                    "cap_progress": {"type": ["number", "null"], "minimum": 0},
                    "io": {
                        "type": "object",
                        "required": ["sequential", "random"],
                    },
                },
            },
        },
        "shards": {
            "type": ["object", "null"],
            "required": ["count", "random_io", "skew", "busiest"],
            "properties": {
                "count": {"type": "integer", "minimum": 1},
                "random_io": {"type": "array", "items": {"type": "integer"}},
                "skew": {"type": ["number", "null"], "minimum": 0},
                "busiest": {"type": "integer", "minimum": 0},
            },
        },
    },
}


def build_explain(
    trace: QueryTrace,
    *,
    shard_io: list[IOStats] | None = None,
    cap: int | None = None,
    request_id: str | None = None,
    trace_id: str | None = None,
) -> dict:
    """Flatten one finished trace into an EXPLAIN record (a plain dict).

    ``windows_scanned`` is the round's collision-counter increments (one
    per inverted-list window entry consumed), ``promoted`` its threshold
    crossings; ``k_progress`` / ``cap_progress`` report each
    termination counter as a fraction of its trigger at round end.  The
    per-round ``io`` deltas are copied verbatim from the trace, so they
    sum to the top-level ``io`` totals exactly — the same invariant the
    trace schema enforces.
    """
    cap_value = int(cap) if cap is not None else None
    rounds = []
    for record in trace.rounds:
        rounds.append(
            {
                "round": record.round,
                "level": record.level,
                "radius": record.radius,
                "windows_scanned": record.collisions,
                "promoted": record.crossings,
                "candidates_total": record.candidates,
                "within_radius": record.within,
                "k_progress": record.within / trace.k,
                "cap_progress": (
                    record.candidates / cap_value
                    if cap_value
                    else None
                ),
                "io": record.io.to_dict(),
            }
        )
    shards = None
    if shard_io:
        random_io = [int(io.random) for io in shard_io]
        mean = sum(random_io) / len(random_io)
        shards = {
            "count": len(random_io),
            "random_io": random_io,
            "skew": (max(random_io) / mean) if mean > 0 else None,
            "busiest": max(range(len(random_io)), key=random_io.__getitem__),
        }
    return {
        "version": EXPLAIN_VERSION,
        "query_id": trace.query_id,
        "request_id": request_id,
        "trace_id": trace_id,
        "p": trace.p,
        "k": trace.k,
        "engine": trace.engine,
        "rehashing": trace.rehashing,
        "termination": trace.termination,
        "candidates": trace.candidates,
        "cap": cap_value,
        "num_rounds": trace.num_rounds,
        "elapsed_seconds": trace.elapsed_seconds,
        "io": trace.io.to_dict(),
        "rounds": rounds,
        "shards": shards,
    }


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ExplainSchemaError(message)


def validate_explain_dict(record: dict) -> None:
    """Validate one EXPLAIN record against :data:`EXPLAIN_SCHEMA`.

    Raises :class:`ExplainSchemaError` on the first violation.  Reuses
    the trace validator for the shared core (via a field remap), then
    checks the EXPLAIN-only pieces: progress fractions, the optional
    ``shards`` section, and — the invariant the acceptance gate cares
    about — per-round I/O deltas summing to the record's I/O totals.
    """
    _require(isinstance(record, dict), "explain record must be an object")
    for name in EXPLAIN_SCHEMA["required"]:
        _require(name in record, f"explain record missing field {name!r}")
    _require(
        record["version"] == EXPLAIN_VERSION,
        f"unsupported explain version {record['version']!r}",
    )
    rounds = record["rounds"]
    _require(isinstance(rounds, list) and rounds, "rounds must be non-empty")
    # Map back onto the trace shape and let the trace validator do the
    # heavy lifting (types, ordering, the I/O delta-sum invariant).
    as_trace = dict(record)
    as_trace["version"] = 1
    as_trace.pop("request_id", None)
    as_trace.pop("trace_id", None)
    as_trace.pop("cap", None)
    as_trace.pop("shards", None)
    as_trace["rounds"] = []
    for j, rnd in enumerate(rounds):
        where = f"round[{j}]"
        _require(isinstance(rnd, dict), f"{where} must be an object")
        for name in (
            "windows_scanned",
            "promoted",
            "candidates_total",
            "within_radius",
            "k_progress",
            "cap_progress",
        ):
            _require(name in rnd, f"{where} missing field {name!r}")
        _require(
            isinstance(rnd["k_progress"], (int, float))
            and rnd["k_progress"] >= 0,
            f"{where}.k_progress must be a non-negative number",
        )
        cp = rnd["cap_progress"]
        _require(
            cp is None or (isinstance(cp, (int, float)) and cp >= 0),
            f"{where}.cap_progress must be a non-negative number or null",
        )
        as_trace["rounds"].append(
            {
                "round": rnd.get("round"),
                "level": rnd.get("level"),
                "radius": rnd.get("radius"),
                "collisions": rnd["windows_scanned"],
                "crossings": rnd["promoted"],
                "candidates": rnd["candidates_total"],
                "within": rnd["within_radius"],
                "io": rnd.get("io"),
            }
        )
    try:
        validate_trace_dict(as_trace)
    except Exception as exc:  # TraceSchemaError -> ExplainSchemaError
        raise ExplainSchemaError(str(exc)) from exc
    cap = record.get("cap")
    _require(
        cap is None or (isinstance(cap, int) and cap >= 1),
        "cap must be a positive integer or null",
    )
    for name in ("request_id", "trace_id"):
        value = record.get(name)
        _require(
            value is None or isinstance(value, str),
            f"{name} must be a string or null",
        )
    shards = record.get("shards")
    if shards is not None:
        _require(isinstance(shards, dict), "shards must be an object")
        for name in ("count", "random_io", "skew", "busiest"):
            _require(name in shards, f"shards missing field {name!r}")
        random_io = shards["random_io"]
        _require(
            isinstance(random_io, list)
            and len(random_io) == shards["count"]
            and all(isinstance(x, int) and x >= 0 for x in random_io),
            "shards.random_io must list one non-negative integer per shard",
        )
        _require(
            isinstance(shards["busiest"], int)
            and 0 <= shards["busiest"] < shards["count"],
            "shards.busiest must index into shards.random_io",
        )


def render_explain(record: dict) -> str:
    """Human-readable rendering of one EXPLAIN record (CLI output)."""
    lines = []
    header = (
        f"EXPLAIN  Np(q, k={record['k']}, p={record['p']})"
        f"  engine={record['engine']}  rehashing={record['rehashing']}"
    )
    lines.append(header)
    ids = [
        f"{name}={record[name]}"
        for name in ("query_id", "request_id", "trace_id")
        if record.get(name) is not None
    ]
    if ids:
        lines.append("  " + "  ".join(ids))
    cap = record.get("cap")
    lines.append(
        f"  terminated: {record['termination']}"
        f"  candidates={record['candidates']}"
        + (f"/{cap} cap" if cap is not None else "")
        + (
            f"  elapsed={record['elapsed_seconds'] * 1e3:.2f}ms"
            if record.get("elapsed_seconds") is not None
            else ""
        )
    )
    io = record["io"]
    lines.append(
        f"  io: sequential={io['sequential']}  random={io['random']}"
        f"  (simulated page charges)"
    )
    lines.append("")
    lines.append(
        "  round  radius      windows  promoted  cand.  within  "
        "k-prog  cap-prog  io(seq/rnd)"
    )
    for rnd in record["rounds"]:
        cap_prog = rnd.get("cap_progress")
        cap_cell = f"{cap_prog:>8.0%}" if cap_prog is not None else f"{'-':>8}"
        lines.append(
            f"  {rnd['round']:>5}  {rnd['radius']:<10.4g}"
            f"  {rnd['windows_scanned']:>7}  {rnd['promoted']:>8}"
            f"  {rnd['candidates_total']:>5}  {rnd['within_radius']:>6}"
            f"  {rnd['k_progress']:>6.0%}  {cap_cell}"
            f"  {rnd['io']['sequential']}/{rnd['io']['random']}"
        )
    shards = record.get("shards")
    if shards is not None:
        lines.append("")
        skew = shards.get("skew")
        lines.append(
            f"  shards: {shards['count']}"
            f"  random_io={shards['random_io']}"
            f"  busiest=shard[{shards['busiest']}]"
            + (f"  skew={skew:.2f}x mean" if skew is not None else "")
        )
    return "\n".join(lines) + "\n"
