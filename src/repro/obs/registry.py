"""Process-local metrics registry: counters, gauges and histograms.

The paper's entire evaluation (Section 5) is read off internal counters —
simulated I/Os, candidate counts, rounds — so the query engine needs a
first-class place to put them.  :class:`MetricsRegistry` keeps named
instruments, each optionally keyed by a small label set, and exports the
whole registry either as a plain dict (for JSON run records) or in the
Prometheus text exposition format (for scraping a long-running server).

Instruments are deliberately minimal and dependency-free:

* :class:`Counter` — monotonically increasing float,
* :class:`Gauge` — last-written float,
* :class:`Histogram` — fixed upper-bound buckets chosen at creation time
  (no dynamic rebucketing; the registry is on the query path).

Every mutation is O(1) on a dict keyed by the sorted label items, so the
registry is cheap enough to update once per query.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import InvalidParameterError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    """Canonical hashable key for a label set (values stringified)."""
    if not labels:
        return ()
    for name in labels:
        if not _LABEL_RE.match(name):
            raise InvalidParameterError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring per the text exposition format.

    Only backslash and line feed are escaped on HELP lines (quotes are
    legal there, unlike in label values).
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = key + extra
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return "{" + body + "}"


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """Shared naming/labelling machinery of all instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise InvalidParameterError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help

    def reset(self) -> None:
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError

    def render(self) -> list[str]:
        raise NotImplementedError

    def _header(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {_escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Instrument):
    """Monotonically increasing counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise InvalidParameterError(
                f"counter {self.name} cannot decrease (amount={amount})"
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of the labelled series (0 if never written)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every labelled series (0.0 when never written).

        The SLO engine reads SLIs off counters that the query path keys
        by engine/shard labels; the objective cares about the aggregate.
        """
        return sum(self._values.values())

    def reset(self) -> None:
        self._values.clear()

    def to_dict(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "values": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ],
        }

    def render(self) -> list[str]:
        lines = self._header()
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_render_labels(key)} "
                f"{_format_number(self._values[key])}"
            )
        return lines


class Gauge(_Instrument):
    """Last-written value, optionally labelled."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Overwrite the labelled series with ``value``."""
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every labelled series (0.0 when never written)."""
        return sum(self._values.values())

    def reset(self) -> None:
        self._values.clear()

    def to_dict(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "values": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ],
        }

    def render(self) -> list[str]:
        lines = self._header()
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_render_labels(key)} "
                f"{_format_number(self._values[key])}"
            )
        return lines


class Histogram(_Instrument):
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches everything above the last bound.
    An observation lands in the first bucket whose bound is >= value.
    """

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", *, buckets: Sequence[float]
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise InvalidParameterError(
                f"histogram {name} needs at least one bucket bound"
            )
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise InvalidParameterError(
                f"histogram {name} buckets must be strictly increasing, "
                f"got {bounds}"
            )
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # +Inf bucket is implicit
        self.buckets = bounds
        self._series: dict[LabelKey, dict] = {}

    def _get(self, key: LabelKey) -> dict:
        series = self._series.get(key)
        if series is None:
            series = {
                "counts": [0] * (len(self.buckets) + 1),
                "sum": 0.0,
                "count": 0,
            }
            self._series[key] = series
        return series

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation in the labelled series."""
        series = self._get(_label_key(labels))
        series["counts"][bisect_left(self.buckets, float(value))] += 1
        series["sum"] += float(value)
        series["count"] += 1

    def count(self, **labels: Any) -> int:
        """Number of observations in the labelled series."""
        series = self._series.get(_label_key(labels))
        return 0 if series is None else series["count"]

    def sum(self, **labels: Any) -> float:
        """Sum of observed values in the labelled series."""
        series = self._series.get(_label_key(labels))
        return 0.0 if series is None else series["sum"]

    def bucket_counts(self, **labels: Any) -> list[int]:
        """Per-bucket (non-cumulative) counts, last entry is +Inf."""
        series = self._series.get(_label_key(labels))
        if series is None:
            return [0] * (len(self.buckets) + 1)
        return list(series["counts"])

    def reset(self) -> None:
        self._series.clear()

    def to_dict(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "values": [
                {
                    "labels": dict(key),
                    "counts": list(series["counts"]),
                    "sum": series["sum"],
                    "count": series["count"],
                }
                for key, series in sorted(self._series.items())
            ],
        }

    def render(self) -> list[str]:
        lines = self._header()
        bounds = [_format_number(b) for b in self.buckets] + ["+Inf"]
        for key in sorted(self._series):
            series = self._series[key]
            cumulative = 0
            for bound, count in zip(bounds, series["counts"]):
                cumulative += count
                labels = _render_labels(key, (("le", bound),))
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            lines.append(
                f"{self.name}_sum{_render_labels(key)} "
                f"{_format_number(series['sum'])}"
            )
            lines.append(
                f"{self.name}_count{_render_labels(key)} {series['count']}"
            )
        return lines


class MetricsRegistry:
    """Named instruments with get-or-create registration.

    Registration is idempotent — asking for an existing name returns the
    existing instrument — but the kind (and, for histograms, the bucket
    bounds) must match, so two subsystems cannot silently fight over one
    name.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Any:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise InvalidParameterError(
                    f"metric {name!r} is already registered as a "
                    f"{existing.kind}, not a {cls.kind}"
                )
            if cls is Histogram and "buckets" in kwargs:
                bounds = tuple(float(b) for b in kwargs["buckets"])
                if bounds[-1] == float("inf"):
                    bounds = bounds[:-1]
                if bounds != existing.buckets:
                    raise InvalidParameterError(
                        f"histogram {name!r} re-registered with different "
                        f"buckets"
                    )
            return existing
        instrument = cls(name, help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", *, buckets: Sequence[float]
    ) -> Histogram:
        """Get or create a :class:`Histogram` with the given buckets."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> _Instrument | None:
        """The registered instrument, or None."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        """Registered metric names, in registration order."""
        return list(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self) -> Iterable[_Instrument]:
        return iter(self._instruments.values())

    def reset(self) -> None:
        """Zero every instrument (registrations are kept)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot of every instrument."""
        return {
            name: instrument.to_dict()
            for name, instrument in self._instruments.items()
        }

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format.

        One ``# HELP``/``# TYPE`` header per metric family (emitted once
        even when the family has many labeled children), label values
        escaped per the exposition rules.  Iterates over a snapshot of
        the instrument table so a background exporter thread can render
        while the query path registers new instruments.
        """
        lines: list[str] = []
        for instrument in list(self._instruments.values()):
            lines.extend(instrument.render())
        return "\n".join(lines) + ("\n" if lines else "")


#: Shared process-wide registry for callers that want one aggregation
#: point across many indexes / telemetry objects.
_DEFAULT_REGISTRY = MetricsRegistry()


def get_default_registry() -> MetricsRegistry:
    """The process-local shared registry (created on import)."""
    return _DEFAULT_REGISTRY
