"""Real paging metrics: major faults and page-cache residency.

The PR-6 mmap backend reports ``lazylsh_store_{resident,mapped}_bytes``
from ``mincore(2)``; this module adds the process-level half of the
picture so operators can tell *simulated* I/O charge (the paper's cost
model) apart from *actual* disk traffic:

* ``lazylsh_major_faults_total`` — cumulative major page faults of the
  process, parsed from ``/proc/self/stat`` field 12 (``majflt``).  A
  major fault is a page that had to come from disk — on a warm page
  cache the counter stays flat even while the simulated charge grows;
* ``lazylsh_minor_faults_total`` — field 10 (``minflt``), for contrast;
* ``lazylsh_page_cache_resident_ratio`` — resident fraction of a mapped
  region per ``mincore(2)``, published per-store by
  :func:`residency_ratio`.

Everything degrades gracefully off Linux: probes return None and the
updater publishes nothing, so importing this module is always safe.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import mmap
import sys
from typing import Any

import numpy as np

from repro.obs.registry import MetricsRegistry

_PAGE_SIZE = mmap.PAGESIZE

#: /proc/<pid>/stat fields (1-based, per proc(5)): minflt=10, majflt=12.
_STAT_MINFLT_INDEX = 9
_STAT_MAJFLT_INDEX = 11


def read_fault_counts() -> tuple[int, int] | None:
    """Cumulative ``(minor, major)`` page faults, or None off Linux.

    Parses ``/proc/self/stat``; the executable name (field 2) may
    contain spaces and parentheses, so fields are counted from the
    *last* ``)``.
    """
    if not sys.platform.startswith("linux"):
        return None
    try:
        with open("/proc/self/stat", "rb") as fh:
            raw = fh.read().decode("ascii", "replace")
    except OSError:
        return None
    try:
        rest = raw[raw.rindex(")") + 2 :].split()
        # ``rest`` starts at field 3 (state); translate the 1-based
        # proc(5) indices.
        minflt = int(rest[_STAT_MINFLT_INDEX - 2])
        majflt = int(rest[_STAT_MAJFLT_INDEX - 2])
    except (ValueError, IndexError):
        return None
    return minflt, majflt


_libc: Any = None
_mincore_missing = False


def _get_mincore() -> Any:
    global _libc, _mincore_missing
    if _mincore_missing:
        return None
    if _libc is None:
        if not sys.platform.startswith("linux"):
            _mincore_missing = True
            return None
        name = ctypes.util.find_library("c")
        try:
            _libc = ctypes.CDLL(name, use_errno=True)
            _libc.mincore  # probe
        except (OSError, AttributeError):
            _mincore_missing = True
            return None
    return _libc.mincore


def residency_ratio(buffer: Any) -> float | None:
    """Resident fraction (0..1) of a buffer's pages, or None.

    ``buffer`` is anything exposing the buffer protocol over a mapped
    region (an ``mmap.mmap`` or a numpy array backed by one).  Returns
    None when ``mincore`` is unavailable or the address cannot be
    probed (e.g. anonymous CoW memory on some kernels).
    """
    mincore = _get_mincore()
    if mincore is None:
        return None
    try:
        # numpy resolves the base address even for read-only buffers
        # (ctypes.from_buffer refuses those).
        flat = np.frombuffer(buffer, dtype=np.uint8)
    except (TypeError, ValueError, BufferError):
        return None
    length = flat.size
    if length == 0:
        return None
    address = int(flat.__array_interface__["data"][0])
    offset = address % _PAGE_SIZE
    start = address - offset
    span = length + offset
    n_pages = (span + _PAGE_SIZE - 1) // _PAGE_SIZE
    vec = (ctypes.c_ubyte * n_pages)()
    rc = mincore(
        ctypes.c_void_p(start), ctypes.c_size_t(span), vec
    )
    del flat
    if rc != 0:
        return None
    resident = sum(1 for b in vec if b & 1)
    return resident / n_pages


class PagingMetrics:
    """Publishes fault counters and residency gauges into a registry.

    Counters are cumulative from *process start* even though
    ``/proc/self/stat`` predates this object: the first :meth:`update`
    baselines at the construction-time reading, then increments by
    deltas, so the exported series is monotone and restart-safe.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._c_major = registry.counter(
            "lazylsh_major_faults_total",
            "Major page faults (disk reads) since metrics start",
        )
        self._c_minor = registry.counter(
            "lazylsh_minor_faults_total",
            "Minor page faults since metrics start",
        )
        self._g_residency = registry.gauge(
            "lazylsh_page_cache_resident_ratio",
            "Resident fraction of a store's mapped pages per mincore(2)",
        )
        self._last: tuple[int, int] | None = read_fault_counts()
        self.supported = self._last is not None

    def update(self, stores: dict[str, Any] | None = None) -> dict:
        """Refresh fault counters and, optionally, per-store residency.

        ``stores`` maps a label (e.g. ``"shard0"``) to a buffer handed
        to :func:`residency_ratio`.  Returns the readings for callers
        that also want them as plain numbers (``repro top``).
        """
        report: dict[str, Any] = {"supported": self.supported}
        counts = read_fault_counts()
        if counts is not None and self._last is not None:
            d_minor = max(0, counts[0] - self._last[0])
            d_major = max(0, counts[1] - self._last[1])
            self._last = counts
            if d_minor:
                self._c_minor.inc(d_minor)
            if d_major:
                self._c_major.inc(d_major)
            report["minor_faults"] = counts[0]
            report["major_faults"] = counts[1]
        if stores:
            residency = {}
            for label, buffer in stores.items():
                ratio = residency_ratio(buffer)
                if ratio is not None:
                    self._g_residency.set(ratio, store=str(label))
                    residency[str(label)] = ratio
            report["residency"] = residency
        return report
