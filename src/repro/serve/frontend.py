"""Async HTTP front door over :class:`~repro.serve.ShardedSearchService`.

:class:`Frontend` is the serving layer's network edge: an asyncio
HTTP/1.1 server (stdlib only, own event loop on a daemon thread — the
same start/stop lifecycle as :class:`~repro.obs.ObsExporter`) speaking
the versioned v1 wire API of :mod:`repro.api`.  Three mechanisms sit
between the socket and the shard fleet (DESIGN §14):

* **Admission control.**  At most ``max_pending`` search requests may be
  in flight; the next one is rejected with HTTP 429
  (:class:`~repro.errors.OverloadedError`) *before* any index work
  happens, so overload sheds cheaply at the edge.  An unhealthy fleet
  (dead worker, closed service) rejects with 503 without attempting the
  query.  Deadlines (``deadline_ms``) are stamped from each request's
  *arrival* time, so queue wait counts against the budget.
* **Request coalescing.**  Admitted requests buffer for up to
  ``coalesce_ms``; each flush plans one batch.  Identical single-metric
  requests dedup to one wave row, requests sharing ``(k, p, cap,
  radius)`` ride one ``search_batch`` wave, and requests sharing a query
  point but differing in ``p`` merge into one Section 4.3 multi-metric
  scan (:class:`~repro.core.MultiQueryEngine`) whose per-metric parts
  fan back to their requesters.  Every path returns ids/distances
  bit-identical to issuing the request alone through
  :meth:`~repro.serve.ShardedSearchService.search` (the batch wave and
  the shared scan are both pinned bit-identical to the single-process
  engine).
* **Result caching.**  An LRU keyed by the query's *base bucket* (its
  integer hash vector at ``delta_0`` — one matmul, no index scan) plus
  the exact query digest and tuning knobs.  Entries remember the service
  epoch they were computed at; :meth:`Frontend.ingest` routes WAL
  records into the service, whose epoch bump invalidates every older
  entry on its next lookup.  A hit is served without touching the shard
  fleet at all.

The service's re-entrant ``lock`` serialises the frontend's plan
execution (on a single worker thread) against any other caller, so the
event loop never blocks on index work and the pipe protocol stays
single-threaded.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import logging
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.api import WIRE_VERSION, SearchRequest, SearchResult
from repro.core.multiquery import MultiQueryEngine
from repro.errors import (
    InvalidParameterError,
    OverloadedError,
    ReproError,
    ServiceUnhealthyError,
    UnavailableError,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import LATENCY_BUCKETS
from repro.obs.workload import WorkloadAnalytics

logger = logging.getLogger("repro.serve.frontend")

#: Error ``code`` → HTTP status.  Codes missing here are server faults
#: (500).  The mapping is append-only: a shipped code never changes its
#: status class.
HTTP_STATUS_BY_CODE = {
    "invalid_parameter": 400,
    "wire_format": 400,
    "unsupported_metric": 400,
    "dimensionality_mismatch": 400,
    "dataset_error": 400,
    "overloaded": 429,
    "unhealthy": 503,
    "index_not_built": 503,
    "unavailable": 503,
    "stale_read": 503,
}

_MAX_BODY_BYTES = 8 * 1024 * 1024  # a 1M-dim float64 query is ~8 MB of JSON

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def error_body(code: str, message: str) -> dict:
    """The v1 wire error envelope for one error ``code``."""
    return {"v": WIRE_VERSION, "error": {"code": code, "message": message}}


@dataclass
class _Pending:
    """One admitted search request waiting for its batch to execute."""

    request: SearchRequest
    future: asyncio.Future
    arrival: float
    cache_hit: bool = False
    coalesced: bool = False


@dataclass
class _CacheEntry:
    epoch: int
    result: SearchResult


@dataclass
class _PlanStats:
    """What one flush actually did (feeds the coalescing metrics)."""

    requests: int = 0
    waves: int = 0
    multi_scans: int = 0
    cache_hits: int = 0
    deduped: int = 0
    groups: list = field(default_factory=list)


class Frontend:
    """Asyncio HTTP front door: admission, coalescing, caching.

    Parameters
    ----------
    service:
        A running :class:`~repro.serve.ShardedSearchService`.
    host / port:
        Bind address; ``port=0`` picks a free port (read it back off
        :attr:`port` after :meth:`start`).
    coalesce_ms:
        Batching window: the first request of a batch waits at most this
        long for company before the flush.  ``0`` flushes on the next
        loop tick (batching then only happens under concurrency).
    max_pending:
        Admission bound — requests in flight beyond it are rejected
        with 429.
    cache_capacity:
        Result-cache entries (LRU).  ``0`` disables caching.
    registry:
        Metrics registry to instrument; defaults to the service
        telemetry's registry when present, else a private one.
    workload:
        :class:`~repro.obs.workload.WorkloadAnalytics` feeding the
        hot-bucket cache-admission policy and the cache-efficacy-by-heat
        stats.  Defaults to the service telemetry's workload when one is
        attached (so the service-side query feed and the frontend-side
        cache feed share sketches), else a private instance.
    """

    def __init__(
        self,
        service,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        coalesce_ms: float = 2.0,
        max_pending: int = 256,
        cache_capacity: int = 1024,
        registry: MetricsRegistry | None = None,
        workload: WorkloadAnalytics | None = None,
    ) -> None:
        if coalesce_ms < 0:
            raise InvalidParameterError(
                f"coalesce_ms must be >= 0, got {coalesce_ms}"
            )
        if max_pending < 1:
            raise InvalidParameterError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if cache_capacity < 0:
            raise InvalidParameterError(
                f"cache_capacity must be >= 0, got {cache_capacity}"
            )
        self.service = service
        self.host = host
        self._requested_port = int(port)
        self.coalesce_ms = float(coalesce_ms)
        self.max_pending = int(max_pending)
        self.cache_capacity = int(cache_capacity)
        if registry is None:
            telemetry = getattr(service, "telemetry", None)
            registry = (
                telemetry.registry if telemetry is not None
                else MetricsRegistry()
            )
        self.registry = registry
        if workload is None:
            telemetry = getattr(service, "telemetry", None)
            workload = getattr(telemetry, "workload", None)
        if workload is None:
            workload = WorkloadAnalytics(registry=self.registry)
        self.workload = workload
        # When the service's telemetry shares this workload object it
        # observes every scanned query itself; otherwise the frontend
        # feeds the sketches for the scans it issues.
        self._service_feeds_workload = (
            getattr(getattr(service, "telemetry", None), "workload", None)
            is workload
        )
        self._cache: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self._queue: list[_Pending] = []
        self._flush_scheduled = False
        self._inflight = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._port = 0
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        # Sec 4.3 shared-scan engine over the coordinator's index copy;
        # only usable under query-centric rehashing.
        try:
            self._multi = MultiQueryEngine(service.index)
        except InvalidParameterError:
            self._multi = None
        reg = self.registry
        self._m_requests = reg.counter(
            "lazylsh_frontend_http_requests_total",
            "HTTP requests by status code",
        )
        self._m_queue_depth = reg.gauge(
            "lazylsh_frontend_queue_depth",
            "Search requests admitted and not yet answered",
        )
        self._m_rejected = reg.counter(
            "lazylsh_frontend_rejected_total",
            "Search requests shed by admission control (429)",
        )
        self._m_coalesced = reg.counter(
            "lazylsh_frontend_coalesced_requests_total",
            "Admitted search requests that shared an index scan",
        )
        self._m_waves = reg.counter(
            "lazylsh_frontend_scans_total",
            "Index scans issued (batch waves + multi-metric scans)",
        )
        self._m_scanned_requests = reg.counter(
            "lazylsh_frontend_scanned_requests_total",
            "Search requests answered by an index scan (cache misses)",
        )
        self._m_cache_hits = reg.counter(
            "lazylsh_frontend_cache_hits_total",
            "Search requests served from the result cache",
        )
        self._m_cache_misses = reg.counter(
            "lazylsh_frontend_cache_misses_total",
            "Search requests that missed the result cache",
        )
        self._m_batch_size = reg.histogram(
            "lazylsh_frontend_batch_size",
            "Admitted requests per coalescing flush",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
        )
        self._m_latency = reg.histogram(
            "lazylsh_frontend_request_latency_seconds",
            "Arrival-to-response latency of search requests",
            buckets=LATENCY_BUCKETS,
        )

    # ------------------------------------------------------------------
    # Lifecycle (exporter-style: own loop on a daemon thread)
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    @property
    def port(self) -> int:
        """The bound port (0 until started)."""
        return self._port

    @property
    def url(self) -> str:
        """Base URL of the running front door."""
        return f"http://{self.host}:{self._port}"

    def start(self) -> "Frontend":
        """Bind and serve on a daemon thread (idempotent)."""
        if self._thread is not None:
            return self
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-frontend-plan"
        )
        self._started.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-frontend", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self.stop()
            logger.error("front door failed to start: %s", error)
            raise error
        logger.info("front door listening on %s", self.url)
        return self

    def stop(self) -> None:
        """Stop serving and join the loop thread (idempotent)."""
        thread, loop = self._thread, self._loop
        if loop is not None and thread is not None and thread.is_alive():
            loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=10)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self._thread = None
        self._loop = None
        self._server = None
        self._executor = None
        self._port = 0

    def __enter__(self) -> "Frontend":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(
                    self._handle_conn, self.host, self._requested_port
                )
            )
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._server = server
        self._port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            # Fail any requests still waiting for a flush.
            for item in self._queue:
                if not item.future.done():
                    item.future.set_exception(
                        ReproError("front door stopped")
                    )
            self._queue = []
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    # ------------------------------------------------------------------
    # Maintenance API (called from any thread)
    # ------------------------------------------------------------------

    def ingest(self, records) -> int:
        """Apply WAL records to the fleet; the epoch bump invalidates
        every cache entry computed before it (checked lazily on lookup).
        """
        return self.service.ingest(records)

    def stats(self) -> dict:
        """Frontend counters plus the service's own stats."""
        scans = self._m_waves.total()
        scanned = self._m_scanned_requests.total()
        hits = self._m_cache_hits.total()
        misses = self._m_cache_misses.total()
        looked_up = hits + misses
        return {
            "requests": {
                entry["labels"].get("code", ""): int(entry["value"])
                for entry in self._m_requests.to_dict()["values"]
            },
            "queue_depth": int(self._m_queue_depth.value()),
            "max_pending": self.max_pending,
            "coalesce_ms": self.coalesce_ms,
            "rejected": int(self._m_rejected.total()),
            "scans": int(scans),
            "scanned_requests": int(scanned),
            "coalesced_requests": int(self._m_coalesced.total()),
            # >1.0 means scans are being shared across requests.
            "coalesce_ratio": (scanned / scans) if scans else 0.0,
            "cache": {
                "capacity": self.cache_capacity,
                "entries": len(self._cache),
                "hits": int(hits),
                "misses": int(misses),
                "hit_rate": (hits / looked_up) if looked_up else 0.0,
            },
            "workload": self.workload.stats(),
            "service": self.service.stats(),
        }

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, _version = (
                        request_line.decode("latin-1").split(None, 2)
                    )
                except ValueError:
                    await self._respond(
                        writer, 400,
                        error_body("wire_format", "malformed request line"),
                    )
                    break
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0"))
                except ValueError:
                    length = -1
                if length < 0 or length > _MAX_BODY_BYTES:
                    await self._respond(
                        writer, 413,
                        error_body(
                            "wire_format",
                            f"content-length must be an integer in "
                            f"[0, {_MAX_BODY_BYTES}]",
                        ),
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload = await self._dispatch(method, target, body)
                keep = headers.get("connection", "").lower() != "close"
                await self._respond(writer, status, payload, keep_alive=keep)
                if not keep:
                    break
        except (
            asyncio.IncompleteReadError, ConnectionError, TimeoutError
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - races
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        keep_alive: bool = False,
    ) -> None:
        self._m_requests.inc(code=status)
        body = json.dumps(payload).encode()
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict]:
        path = target.split("?", 1)[0]
        try:
            if path == "/v1/search":
                if method != "POST":
                    return 405, error_body(
                        "method_not_allowed", "use POST /v1/search"
                    )
                return await self._handle_search(body)
            if path == "/v1/health":
                if method != "GET":
                    return 405, error_body(
                        "method_not_allowed", "use GET /v1/health"
                    )
                report = self.service.health()
                return (200 if report.get("healthy") else 503), report
            if path == "/v1/stats":
                if method != "GET":
                    return 405, error_body(
                        "method_not_allowed", "use GET /v1/stats"
                    )
                return 200, self.stats()
            return 404, error_body("not_found", f"unknown path {path!r}")
        except ReproError as exc:
            return self._error_response(exc)
        except Exception as exc:  # noqa: BLE001 - the edge must not drop
            return 500, error_body("internal", f"{type(exc).__name__}: {exc}")

    def _error_response(self, exc: ReproError) -> tuple[int, dict]:
        status = HTTP_STATUS_BY_CODE.get(exc.code, 500)
        return status, error_body(exc.code, str(exc))

    # ------------------------------------------------------------------
    # Search path: admit → coalesce → execute → fan back
    # ------------------------------------------------------------------

    async def _handle_search(self, body: bytes) -> tuple[int, dict]:
        arrival = time.monotonic()
        try:
            record = json.loads(body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, error_body("wire_format", f"invalid JSON body: {exc}")
        request = SearchRequest.from_dict(record)
        if request.metrics is not None:
            raise InvalidParameterError(
                "the front door answers one metric per request; issue one "
                "request per p (concurrent requests sharing a query point "
                "are merged into one multi-metric scan server-side)"
            )
        if np.asarray(request.query).ndim != 1:
            raise InvalidParameterError(
                "the front door answers one query point per request"
            )
        # Admission control: shed before any index work.
        if self._inflight >= self.max_pending:
            self._m_rejected.inc()
            raise OverloadedError(
                f"front door at capacity ({self.max_pending} requests "
                "in flight); retry after a backoff"
            )
        if self.service._closed:
            raise ServiceUnhealthyError("the sharded service is closed")
        if not self.service.health().get("healthy", False):
            # Mid-failover (dead worker, detached storage): reject with
            # a retryable typed error instead of queueing a request the
            # fleet may never answer.
            raise UnavailableError(
                "the shard fleet is unhealthy (mid-failover); retry "
                "after a backoff"
            )
        self._inflight += 1
        self._m_queue_depth.set(self._inflight)
        loop = asyncio.get_running_loop()
        item = _Pending(request, loop.create_future(), arrival)
        self._queue.append(item)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            loop.call_later(self.coalesce_ms / 1000.0, self._flush)
        try:
            result = await self._await_result(item)
        finally:
            self._inflight -= 1
            self._m_queue_depth.set(self._inflight)
        elapsed = time.monotonic() - arrival
        self._m_latency.observe(elapsed)
        payload = result.to_dict()
        if request.request_id is not None:
            payload["request_id"] = request.request_id
        payload["cached"] = item.cache_hit
        payload["coalesced"] = item.coalesced
        if request.deadline_ms is not None:
            overrun = elapsed * 1000.0 > request.deadline_ms
            payload["deadline_exceeded"] = bool(
                overrun or payload.get("deadline_exceeded", False)
            )
            telemetry = getattr(self.service, "telemetry", None)
            if overrun and telemetry is not None:
                telemetry.note_deadline_overrun(
                    deadline_ms=request.deadline_ms,
                    elapsed_seconds=elapsed,
                    where="serve.frontend",
                    request_id=request.request_id,
                )
        return 200, payload

    async def _await_result(self, item: _Pending) -> SearchResult:
        """Wait for the planned result; bounded when a deadline is set.

        Deadlines stay *advisory* on a healthy fleet — the plan always
        runs to completion and the result is returned however late, so
        answers remain bit-identical.  But a request must not hang past
        its deadline when the service dies under it mid-failover, so
        once the budget expires the wait re-checks fleet health on
        every tick and converts a dead fleet into a typed
        ``unavailable`` error instead of waiting forever.
        """
        if item.request.deadline_ms is None:
            return await item.future
        # Re-check at least every 50 ms so a sub-ms deadline does not
        # busy-spin; the shield keeps the underlying future alive for
        # the next tick (wait_for cancels what it wraps).
        interval = max(item.request.deadline_ms / 1000.0, 0.05)
        while True:
            try:
                return await asyncio.wait_for(
                    asyncio.shield(item.future), interval
                )
            except asyncio.TimeoutError:
                if item.future.done():
                    return item.future.result()
                if self.service._closed or not self.service.health().get(
                    "healthy", False
                ):
                    raise UnavailableError(
                        "the backing service became unavailable while "
                        "this request waited past its deadline of "
                        f"{item.request.deadline_ms}ms; retry after a "
                        "backoff"
                    ) from None

    def _flush(self) -> None:
        """Coalescing-window timer fired: hand the batch to the planner."""
        self._flush_scheduled = False
        items, self._queue = self._queue, []
        if not items:
            return
        loop = self._loop
        assert loop is not None and self._executor is not None
        self._m_batch_size.observe(len(items))
        future = loop.run_in_executor(
            self._executor, self._execute_plan, items
        )

        def _on_done(fut: "asyncio.Future") -> None:
            exc = fut.exception()
            if exc is None:
                return
            logger.error(
                "plan execution failed for a %d-request flush: %s",
                len(items),
                exc,
            )
            for item in items:  # plan-level fault: fail the whole batch
                if not item.future.done():
                    item.future.set_exception(exc)

        future.add_done_callback(_on_done)

    # -- planner (runs on the single executor thread) -------------------

    def _cache_key(self, request: SearchRequest) -> tuple:
        """Base bucket + exact-query digest + tuning knobs.

        The base bucket (the query's integer hash vector at ``delta_0``,
        Section 4.1) costs one matmul and no index I/O; the sha1 digest
        disambiguates colliding queries within a bucket, since distances
        depend on the exact point.  ``key[0]`` is the bucket as raw
        int64 bytes — the same canonical form the workload sketches
        track, so the eviction policy can ask
        :meth:`WorkloadAnalytics.is_hot` about any cached entry.
        Explain requests key separately (their results carry the
        EXPLAIN payload).
        """
        query = np.ascontiguousarray(request.query, dtype=np.float64)
        bucket = self.service.index._bank.hash_points(query[None, :])[:, 0]
        return (
            np.ascontiguousarray(bucket).tobytes(),
            hashlib.sha1(query.tobytes()).hexdigest(),
            int(request.k),
            float(request.p),
            None if request.cap is None else float(request.cap),
            None if request.radius is None else float(request.radius),
            bool(request.explain),
        )

    def _cache_get(self, key: tuple) -> SearchResult | None:
        entry = self._cache.get(key)
        if entry is None:
            return None
        if entry.epoch != self.service.epoch:  # WAL moved on: stale
            del self._cache[key]
            return None
        self._cache.move_to_end(key)
        return entry.result

    #: Oldest entries inspected per eviction before falling back to
    #: plain LRU; bounds the policy's cost per insert.
    _EVICT_SCAN = 8

    def _cache_put(self, key: tuple, result: SearchResult) -> None:
        if self.cache_capacity == 0:
            return
        self._cache[key] = _CacheEntry(self.service.epoch, result)
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_capacity:
            # Heat-aware eviction: prefer dropping a cold-bucket entry
            # from the LRU end, keeping heavy-hitter buckets resident
            # longer than plain LRU would.
            victim = None
            for old_key in itertools.islice(
                self._cache.keys(), self._EVICT_SCAN
            ):
                if not self.workload.is_hot(old_key[0]):
                    victim = old_key
                    break
            if victim is not None:
                del self._cache[victim]
            else:  # every inspected entry is hot: fall back to LRU
                self._cache.popitem(last=False)

    def _resolve(self, item: _Pending, result: SearchResult) -> None:
        loop = self._loop
        assert loop is not None

        def _set() -> None:
            if not item.future.done():
                item.future.set_result(result)

        loop.call_soon_threadsafe(_set)

    def _fail(self, item: _Pending, exc: BaseException) -> None:
        loop = self._loop
        assert loop is not None

        def _set() -> None:
            if not item.future.done():
                item.future.set_exception(exc)

        loop.call_soon_threadsafe(_set)

    def _execute_plan(self, items: list[_Pending]) -> None:
        """Serve one flush: cache, then merged scans, under one lock.

        Holding the service's re-entrant lock across the whole plan
        keeps the epoch stable between cache lookups and scans (an
        ``ingest`` cannot interleave), so an entry written here is
        always tagged with the epoch its scan actually saw.
        """
        service = self.service
        with service.lock:
            misses: list[tuple[_Pending, tuple]] = []
            for item in items:
                try:
                    key = self._cache_key(item.request)
                except ReproError as exc:
                    self._fail(item, exc)
                    continue
                cached = self._cache_get(key)
                self.workload.note_cache(key[0], hit=cached is not None)
                if cached is not None:
                    item.cache_hit = True
                    self._m_cache_hits.inc()
                    # A hit never reaches the service, so feed the
                    # sketches here to keep the bucket's heat live.
                    self.workload.observe_query(
                        digest=key[1],
                        bucket=key[0],
                        p=float(item.request.p),
                        k=int(item.request.k),
                    )
                    self._resolve(item, cached)
                else:
                    self._m_cache_misses.inc()
                    misses.append((item, key))
            if misses:
                self._m_scanned_requests.inc(len(misses))
                self._run_scans(misses)

    def _run_scans(self, misses: list[tuple[_Pending, tuple]]) -> None:
        """Group cache misses into the fewest bit-identical scans."""
        service = self.service
        # 1) Multi-metric merge (Sec 4.3): same query point, same
        #    (k, cap), no radius override, >= 2 distinct metrics.
        by_point: dict[tuple, list[tuple[_Pending, tuple]]] = {}
        for item, key in misses:
            r = item.request
            # Explain requests stay out: the shared scan has no EXPLAIN
            # surface, so they ride a batch wave instead.
            if self._multi is not None and r.radius is None and not r.explain:
                digest = key[1]  # exact-query sha1
                cap = None if r.cap is None else float(r.cap)
                by_point.setdefault(
                    (digest, int(r.k), cap), []
                ).append((item, key))
        rest: list[tuple[_Pending, tuple]] = []
        claimed: set[int] = set()
        for group in by_point.values():
            metrics = sorted({float(it.request.p) for it, _ in group})
            if len(metrics) < 2:
                continue
            item0 = group[0][0]
            try:
                multi = self._multi.knn(
                    item0.request.query,
                    int(item0.request.k),
                    metrics=metrics,
                    cap=item0.request.cap,
                )
            except ReproError as exc:
                for item, _key in group:
                    claimed.add(id(item))
                    self._fail(item, exc)
                continue
            self._m_waves.inc()
            self._m_coalesced.inc(len(group))
            fanned: set[tuple] = set()
            for item, key in group:
                claimed.add(id(item))
                item.coalesced = True
                part = multi[float(item.request.p)]
                if key not in fanned:
                    fanned.add(key)
                    self._cache_put(key, part)
                    # The shared scan bypasses the sharded service, so
                    # the service-side workload feed never sees it.
                    self.workload.observe_query(
                        digest=key[1],
                        bucket=key[0],
                        p=float(item.request.p),
                        k=int(item.request.k),
                    )
                self._resolve(item, part)
        for item, key in misses:
            if id(item) not in claimed:
                rest.append((item, key))
        # 2) Batch waves: group by tuning knobs, dedup identical rows.
        by_knobs: dict[tuple, list[tuple[_Pending, tuple]]] = {}
        for item, key in rest:
            r = item.request
            knob = (
                int(r.k), float(r.p),
                None if r.cap is None else float(r.cap),
                None if r.radius is None else float(r.radius),
                bool(r.explain),
            )
            by_knobs.setdefault(knob, []).append((item, key))
        for (k, p, cap, radius, explain), group in by_knobs.items():
            rows: list[np.ndarray] = []
            row_of: dict[tuple, int] = {}
            for item, key in group:
                if key not in row_of:
                    row_of[key] = len(rows)
                    rows.append(
                        np.asarray(item.request.query, dtype=np.float64)
                    )
            try:
                results = service.search_batch(
                    np.stack(rows), k, p=p, cap=cap, radius=radius,
                    explain=explain,
                )
            except ReproError as exc:
                for item, _key in group:
                    self._fail(item, exc)
                continue
            self._m_waves.inc()
            if len(group) > 1:
                self._m_coalesced.inc(len(group))
            stored: set[tuple] = set()
            for item, key in group:
                if len(group) > 1:
                    item.coalesced = True
                result = results[row_of[key]]
                if key not in stored:
                    stored.add(key)
                    self._cache_put(key, result)
                    if not self._service_feeds_workload:
                        # The service's telemetry does not share this
                        # workload object, so feed the scan here.
                        self.workload.observe_query(
                            digest=key[1],
                            bucket=key[0],
                            p=float(item.request.p),
                            k=int(item.request.k),
                        )
                self._resolve(item, result)
