"""Sharded parallel query serving for a built LazyLSH index.

The package splits the flat-array inverted index into contiguous
point-id shards, exports each through zero-copy shared memory to a
persistent worker process, and merges per-shard scans into results —
ids, distances, termination and simulated I/O — that are bit-identical
to the single-process engine's (see ``repro.serve.service`` for the
argument).

Entry points: :class:`ShardedSearchService` (the coordinator),
:class:`Frontend` (the async HTTP front door with admission control,
request coalescing and an epoch-invalidated result cache),
:func:`plan_shards`/:func:`pack_shard`/:func:`attach_shard` (shard
layout and shared-memory plumbing), :func:`worker_main` (the worker
process body) and :func:`run_serve_benchmark` (the honest-numbers
benchmark behind ``repro bench-serve``).
"""

from repro.serve.bench import run_serve_benchmark
from repro.serve.frontend import HTTP_STATUS_BY_CODE, Frontend
from repro.serve.service import ShardedSearchService, default_shards
from repro.serve.sharding import (
    MmapShardSpec,
    ShardSpec,
    attach_shard,
    open_mmap_shard,
    pack_shard,
    plan_shards,
)
from repro.serve.worker import MmapShardSearcher, ShardSearcher, worker_main

__all__ = [
    "Frontend",
    "HTTP_STATUS_BY_CODE",
    "MmapShardSearcher",
    "MmapShardSpec",
    "ShardSearcher",
    "ShardSpec",
    "ShardedSearchService",
    "attach_shard",
    "default_shards",
    "open_mmap_shard",
    "pack_shard",
    "plan_shards",
    "run_serve_benchmark",
    "worker_main",
]
