"""Shard worker: the per-process half of the sharded query service.

Each worker owns one contiguous id-range shard of the inverted index
(attached zero-copy from shared memory) and answers *round* requests:
given one rehashing round's window bounds it scans its shard's sub-runs
speculatively in full and reports

* every collision-threshold crossing in its shard — point id, the hash
  function where the count crossed ``theta``, the crossing entry's
  position in the **full** run, and the true ``lp`` distance (computed
  from the shard's own data rows), and
* per-function scan extents (min/max full-run positions of the left and
  right ring runs), from which the coordinator reconstructs the exact
  full-run page intervals for sequential-I/O charging.

The worker never decides termination: the coordinator merges the
per-shard crossings in the engine's promotion order, finds the global
stop function, and discards crossings past it.  Speculative over-scan
past the stop function only ever happens in a query's final round, so
the worker's per-point collision state never diverges from the
single-process engine's on any round that continues.

The wire protocol is one ``(op_id, op, payload)`` tuple per request with
one ``(op_id, "ok", payload)`` or ``(op_id, "err", traceback)`` reply.
The coordinator's ``op_id`` is a monotonically increasing sequence
number: after a worker death it lets the coordinator discard stale
replies still queued in surviving workers' pipes before replaying the
wave.  Ops:

=============  ======================================================
``ping``       liveness / warm-up check, returns the shard id
``begin``      register a wave of queries (id, vector, metric params)
``round``      scan one round for a list of active queries
``end``        drop the listed queries' state
``reset``      drop *all* query state (coordinator repair/replay)
``update``     apply one WAL record's delta to the shard (epoch/LSN
               sequenced, idempotent by LSN — see DESIGN §11)
``crash``      ``os._exit(1)`` — test hook for worker-death recovery;
               an int payload ``n`` arms a deferred crash during the
               n-th subsequent ``round`` op instead (mid-wave death),
               ``{"after_updates": n}`` the same for ``update`` ops
               (death mid-catch-up)
``shutdown``   clean exit
=============  ======================================================

Live updates (DESIGN §11): an ``update`` payload carries one committed
WAL record translated into shard terms — for an insert, the store's
:class:`~repro.storage.inverted_index.InsertPlan` (full-run insertion
and destination positions) plus the batch's points and owner
assignment; for a remove, the tombstoned ids.  The worker applies it
copy-on-write (the shared-memory arrays stay pristine for future
respawns): old sub-run positions shift by the number of plan entries at
or before them, owned new entries merge into the sub-runs at their
plan-given positions, so the shard arrays stay exactly the restriction
of the coordinator's full index and query waves remain bit-identical to
single-process execution.  Updates are sequenced by LSN: a record at or
below the shard's acked LSN is acknowledged but not re-applied, which
makes coordinator replay after a repair idempotent.

Telemetry piggyback (DESIGN §10): each worker runs its *own*
:class:`~repro.obs.registry.MetricsRegistry` and :class:`~repro.obs.
tracer.SpanTracer`.  A ``round`` payload may be the legacy request list
or ``{"requests": [...], "obs": bool}``; with ``obs`` set the reply
payload carries an ``"obs"`` dict of deltas since the last ship —
rows scanned, crossings found, and the finished span dicts of this
round's ``worker.round`` scan span — which the coordinator merges into
the parent telemetry under per-shard labels.  With ``obs`` unset the
only residue is two integer adds per scan, keeping the no-telemetry
fast path inside the <= 3% overhead budget.
"""

from __future__ import annotations

import logging
import os
import time
import traceback

import numpy as np

from repro.errors import ReproError
from repro.metrics.lp import lp_distance
from repro.obs.registry import MetricsRegistry
from repro.obs.trace_context import TraceContext
from repro.obs.tracer import SpanTracer
from repro.serve.sharding import (
    MmapShardSpec,
    ShardSpec,
    attach_shard,
    open_mmap_shard,
)

logger = logging.getLogger("repro.serve.worker")

#: Mirrors the engine's dead-row slack sentinel (see repro.core.engine):
#: rows that can never cross the threshold again.
_SLACK_DEAD = 2**30

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_F64 = np.empty(0, dtype=np.float64)


class _QueryState:
    """Per-query Algorithm-4 collision state restricted to one shard."""

    __slots__ = (
        "query",
        "p",
        "theta",
        "eta",
        "slack",
        "plos",
        "phis",
        "pstarts",
        "pstops",
        "first_round",
    )

    def __init__(
        self, query: np.ndarray, p: float, theta: int, eta: int, m: int,
        alive: np.ndarray,
    ) -> None:
        self.query = query
        self.p = p
        self.theta = theta
        self.eta = eta
        # Fused crossing test (same idiom as the engine's Lane): a local
        # row crosses theta in a round iff the round adds more than
        # ``slack`` collisions; dead rows carry _SLACK_DEAD.
        self.slack = np.full(m, _SLACK_DEAD, dtype=np.int32)
        np.copyto(self.slack, theta, where=alive)
        # Previous-round windows (hash-value bounds, shared with the
        # coordinator) and this shard's previous raw sub-run endpoints.
        self.plos = np.zeros(eta, dtype=np.int64)
        self.phis = np.zeros(eta, dtype=np.int64)
        self.pstarts = np.zeros(eta, dtype=np.int64)
        self.pstops = np.zeros(eta, dtype=np.int64)
        self.first_round = True


class ShardSearcher:
    """Executes rounds over one attached shard.

    ``values``/``ids``/``positions`` are ``(num_functions, m)`` views of
    the shard's per-function sorted sub-runs (``positions`` holds each
    entry's index in the full run); ``data`` the shard's point rows.
    """

    def __init__(
        self,
        shard_id: int,
        lo: int,
        hi: int,
        values: np.ndarray,
        ids: np.ndarray,
        positions: np.ndarray,
        data: np.ndarray,
        alive: np.ndarray,
    ) -> None:
        self.shard_id = shard_id
        self.lo = lo
        self.hi = hi
        self.values = values
        self.ids = ids
        self.positions = positions
        self.data = data
        self.alive = alive
        self.m = int(hi - lo)
        self.queries: dict[int, _QueryState] = {}
        # Always-on scan accumulators (two int adds per scan); the
        # obs-enabled reply path ships deltas of these.
        self.rows_scanned = 0
        self.crossings = 0
        # Live-update state (DESIGN §11).  Until the first insert update
        # the shard's point ids are exactly [lo, hi) and local rows are
        # ``gid - lo``; afterwards ``_gid_of`` maps local row -> global id
        # and ``_lookup`` (sized to the full index) maps back.  ``alive``
        # starts as a read-only shared-memory view and is copied on the
        # first tombstone (copy-on-write keeps the segment pristine for
        # respawned workers, which catch up by replay instead).
        self.epoch = 0
        self.acked_lsn = 0
        self._gid_of: np.ndarray | None = None
        self._lookup: np.ndarray | None = None
        self._owns_alive = False

    # -- protocol ops ---------------------------------------------------

    def begin(self, entries: list) -> None:
        for qid, query, p, theta, eta in entries:
            self.queries[qid] = _QueryState(
                np.asarray(query, dtype=np.float64),
                float(p),
                int(theta),
                int(eta),
                self.m,
                self.alive,
            )

    def end(self, qids: list) -> None:
        for qid in qids:
            self.queries.pop(qid, None)

    def reset(self) -> None:
        self.queries.clear()

    def round(self, requests: list) -> dict:
        return {
            qid: self._round_one(self.queries[qid], los, his)
            for qid, los, his in requests
        }

    def apply_update(self, delta: dict) -> dict:
        """Apply one WAL record's shard delta (idempotent by LSN)."""
        lsn = int(delta["lsn"])
        applied = False
        if lsn > self.acked_lsn:
            if delta["op"] == "insert":
                self._apply_insert_delta(delta)
            elif delta["op"] == "remove":
                self._apply_remove_delta(
                    np.asarray(delta["gids"], dtype=np.int64)
                )
            else:
                raise ReproError(f"unknown update op {delta['op']!r}")
            self.acked_lsn = lsn
            self.epoch = int(delta["epoch"])
            applied = True
        return {
            "shard": self.shard_id,
            "lsn": self.acked_lsn,
            "epoch": self.epoch,
            "points": self.m,
            "applied": applied,
        }

    def _apply_insert_delta(self, delta: dict) -> None:
        """Merge an insert batch's plan into the shard's sub-runs.

        Every worker receives the *full* batch plan plus the owner
        assignment; it extends its data rows with the points it owns and
        splices its share of each run in at the plan's positions, while
        shifting every pre-existing entry's full-run position by the
        number of plan entries inserted at or before it.
        """
        rel = np.asarray(delta["rel"], dtype=np.int64)
        plan_values = np.asarray(delta["values"], dtype=np.int64)
        plan_ids = np.asarray(delta["ids"], dtype=np.int64)
        plan_dest = np.asarray(delta["dest"], dtype=np.int64)
        points = np.asarray(delta["points"], dtype=np.float64)
        start = int(delta["batch_start"])
        owners = np.asarray(delta["owners"], dtype=np.int64)
        num_funcs, m_batch = plan_values.shape
        if self._gid_of is None:
            self._gid_of = np.arange(self.lo, self.hi, dtype=np.int64)
        # Points this shard now owns (ascending gid order).
        sel = np.flatnonzero(owners == self.shard_id)
        new_gids = start + sel
        m_own = int(sel.size)
        self.data = np.vstack([self.data, points[sel]])
        self.alive = np.concatenate(
            [self.alive, np.ones(m_own, dtype=bool)]
        )
        self._owns_alive = True
        self._gid_of = np.concatenate([self._gid_of, new_gids])
        m_old = int(self.values.shape[1])
        m_new = m_old + m_own
        new_values = np.empty((num_funcs, m_new), dtype=np.int64)
        new_ids = np.empty((num_funcs, m_new), dtype=np.int64)
        new_positions = np.empty((num_funcs, m_new), dtype=np.int64)
        if m_own:
            own_mask = (owners[plan_ids - start] == self.shard_id)
            vals_own = plan_values[own_mask].reshape(num_funcs, m_own)
            gids_own = plan_ids[own_mask].reshape(num_funcs, m_own)
            dest_own = plan_dest[own_mask].reshape(num_funcs, m_own)
        for f in range(num_funcs):
            old_v = self.values[f]
            # Old entries shift right by the number of batch entries whose
            # old-run insertion position is <= theirs (ties resolve after
            # equal-valued old entries, so "<=" is exact).
            shifted = self.positions[f] + np.searchsorted(
                rel[f], self.positions[f], side="right"
            )
            if m_own:
                loc = np.searchsorted(
                    old_v, vals_own[f], side="right"
                ) + np.arange(m_own, dtype=np.int64)
                taken = np.zeros(m_new, dtype=bool)
                taken[loc] = True
                new_values[f, loc] = vals_own[f]
                new_values[f, ~taken] = old_v
                new_ids[f, loc] = gids_own[f]
                new_ids[f, ~taken] = self.ids[f]
                new_positions[f, loc] = dest_own[f]
                new_positions[f, ~taken] = shifted
            else:
                new_values[f] = old_v
                new_ids[f] = self.ids[f]
                new_positions[f] = shifted
        self.values = new_values
        self.ids = new_ids
        self.positions = new_positions
        self.m = m_new
        # Global id -> local row map over the grown index.
        lookup = np.full(start + m_batch, -1, dtype=np.int64)
        lookup[self._gid_of] = np.arange(self.m, dtype=np.int64)
        self._lookup = lookup

    def _apply_remove_delta(self, gids: np.ndarray) -> None:
        """Tombstone the removed ids this shard owns (copy-on-write)."""
        if self._lookup is None:
            owned = gids[(gids >= self.lo) & (gids < self.hi)]
            local = owned - self.lo
        else:
            local = self._lookup[gids]
            local = local[local >= 0]
        if local.size == 0:
            return
        if not self._owns_alive:
            self.alive = self.alive.copy()
            self._owns_alive = True
        self.alive[local] = False

    # -- the per-round shard scan --------------------------------------

    def _round_one(
        self, q: _QueryState, los: np.ndarray, his: np.ndarray
    ) -> dict:
        """One round's speculative full scan of this shard.

        Replicates the engine's ring split exactly, restricted to the
        shard: sub-runs preserve full-run order, so ``searchsorted`` on
        the shard's values restricts the full run's window endpoints and
        the per-function left/right ring runs are the shard's share of
        the engine's runs.
        """
        eta = q.eta
        los = np.asarray(los, dtype=np.int64)
        his = np.asarray(his, dtype=np.int64)
        starts = np.empty(eta, dtype=np.int64)
        stops = np.empty(eta, dtype=np.int64)
        for i in range(eta):
            row = self.values[i]
            starts[i] = np.searchsorted(row, los[i], side="left")
            stops[i] = np.searchsorted(row, his[i], side="right")
        stops = np.maximum(starts, stops)
        if q.first_round:
            left_starts, left_stops = starts, stops
            right_starts = right_stops = stops
        else:
            nested = (los <= q.plos) & (q.phis <= his)
            left_starts = starts
            left_stops = np.where(
                nested, np.minimum(q.pstarts, stops), stops
            )
            right_starts = np.where(
                nested, np.maximum(q.pstops, starts), stops
            )
            right_stops = stops
        reply = self._scan(
            q, left_starts, left_stops, right_starts, right_stops
        )
        q.plos[:] = los
        q.phis[:] = his
        q.pstarts[:] = starts
        q.pstops[:] = stops
        q.first_round = False
        return reply

    def _scan(
        self,
        q: _QueryState,
        left_starts: np.ndarray,
        left_stops: np.ndarray,
        right_starts: np.ndarray,
        right_stops: np.ndarray,
    ) -> dict:
        eta = q.eta
        m = self.m
        # Gather the round's entries function-major, left run before
        # right run — the engine's scan order.
        seg_rows = np.repeat(np.arange(eta, dtype=np.int64), 2)
        seg_starts = np.empty(2 * eta, dtype=np.int64)
        seg_stops = np.empty(2 * eta, dtype=np.int64)
        seg_starts[0::2] = left_starts
        seg_stops[0::2] = left_stops
        seg_starts[1::2] = right_starts
        seg_stops[1::2] = right_stops
        seg_lens = seg_stops - seg_starts
        total = int(seg_lens.sum())
        self.rows_scanned += total
        # Per-function full-run extents of the two ring runs (-1 = empty).
        l_lo, l_hi = self._extents(left_starts, left_stops)
        r_lo, r_hi = self._extents(right_starts, right_stops)
        if total == 0:
            return {
                "gids": _EMPTY_I64,
                "funcs": _EMPTY_I64,
                "pos": _EMPTY_I64,
                "dists": _EMPTY_F64,
                "l_lo": l_lo,
                "l_hi": l_hi,
                "r_lo": r_lo,
                "r_hi": r_hi,
            }
        flat_base = seg_rows * m
        offsets = np.empty(2 * eta, dtype=np.int64)
        offsets[0] = 0
        np.cumsum(seg_lens[:-1], out=offsets[1:])
        idx = np.repeat(flat_base + seg_starts - offsets, seg_lens)
        idx += np.arange(total, dtype=np.int64)
        if self._lookup is None:
            sub = self.ids.ravel()[idx] - self.lo  # shard-local point rows
        else:
            sub = self._lookup[self.ids.ravel()[idx]]
        subpos = self.positions.ravel()[idx]
        func_lens = seg_lens[0::2] + seg_lens[1::2]
        bounds = np.empty(eta + 1, dtype=np.int64)
        bounds[0] = 0
        np.cumsum(func_lens, out=bounds[1:])
        # Threshold crossings, engine idiom: bincount finds the few rows
        # whose count crosses theta this round, a stable rank over just
        # their occurrences recovers the exact crossing entry.
        add = np.bincount(sub, minlength=m)
        crossers = np.flatnonzero(add > q.slack)
        if crossers.size:
            lookup = np.zeros(m, dtype=bool)
            lookup[crossers] = True
            pos = np.flatnonzero(lookup[sub])
            psub = sub[pos]
            order = np.argsort(psub, kind="stable")
            sid = psub[order]
            first = np.empty(sid.size, dtype=bool)
            first[0] = True
            np.not_equal(sid[1:], sid[:-1], out=first[1:])
            group_starts = np.flatnonzero(first)
            group_idx = np.cumsum(first) - 1
            rank = np.arange(sid.size, dtype=np.int64) - group_starts[group_idx]
            hits = rank == q.slack[sid]
            elems = pos[order[hits]]
            elems.sort()
            cross_local = sub[elems]
            cross_func = np.searchsorted(bounds, elems, side="right") - 1
            cross_pos = subpos[elems]
            dists = lp_distance(self.data[cross_local], q.query, q.p)
            if self._gid_of is None:
                gids = cross_local + self.lo
            else:
                gids = self._gid_of[cross_local]
        else:
            gids = cross_func = cross_pos = _EMPTY_I64
            dists = _EMPTY_F64
            cross_local = _EMPTY_I64
        self.crossings += int(gids.size)
        np.subtract(q.slack, add, out=q.slack, casting="unsafe")
        if cross_local.size:
            q.slack[cross_local] = _SLACK_DEAD
        return {
            "gids": gids,
            "funcs": cross_func,
            "pos": cross_pos,
            "dists": dists,
            "l_lo": l_lo,
            "l_hi": l_hi,
            "r_lo": r_lo,
            "r_hi": r_hi,
        }

    def _extents(
        self, run_starts: np.ndarray, run_stops: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Full-run positions (min, max) of each function's sub-run."""
        eta = run_starts.shape[0]
        lo = np.full(eta, -1, dtype=np.int64)
        hi = np.full(eta, -1, dtype=np.int64)
        nonempty = run_stops > run_starts
        for i in np.flatnonzero(nonempty):
            row = self.positions[i]
            lo[i] = row[run_starts[i]]
            hi[i] = row[run_stops[i] - 1]
        return lo, hi


class MmapShardSearcher(ShardSearcher):
    """A shard searcher over the memory-mapped *full* index file.

    Nothing is packed per shard: ``values``/``ids``/``data`` are
    read-only memmaps of the whole v3 file, shared byte-for-byte with
    every other worker through the OS page cache.  The per-round window
    search runs directly on the full runs; the scan then keeps only the
    entries this shard owns (``lo <= id < hi``).  Because a shard's
    sub-run preserves full-run order, restricting the full-run ring
    segments to owned entries yields exactly the entry set, order and
    extents the shm-packed :class:`ShardSearcher` scans — replies are
    bit-identical, so the coordinator cannot tell the attach modes apart.

    Live updates mutate shard-private arrays, so the first ``update`` op
    makes ``worker_main`` swap this searcher for a materialised
    :class:`ShardSearcher` via :meth:`materialize`; the memmap pages are
    dropped and the classic copy-on-write delta path takes over.
    """

    def __init__(
        self,
        shard_id: int,
        lo: int,
        hi: int,
        values: np.ndarray,
        ids: np.ndarray,
        data: np.ndarray,
        alive: np.ndarray,
    ) -> None:
        super().__init__(shard_id, lo, hi, values, ids, None, data, alive)
        # ``open_mmap_shard`` hands each worker a private alive slice.
        self._owns_alive = True
        self.num_rows = int(values.shape[1])

    def materialize(self) -> ShardSearcher:
        """Copy the owned sub-runs into RAM and return a classic searcher.

        The extraction is exactly ``InvertedListStore.shard_view`` (same
        mask, same flat order), so the materialised worker starts from
        the same arrays a shm pack would have shipped — the update path
        stays bit-identical across attach modes.
        """
        n = self.num_rows
        mask = (self.ids >= self.lo) & (self.ids < self.hi)
        flat = np.flatnonzero(mask.ravel())
        shape = (self.values.shape[0], self.m)
        searcher = ShardSearcher(
            self.shard_id,
            self.lo,
            self.hi,
            np.ascontiguousarray(self.values.ravel()[flat].reshape(shape)),
            np.ascontiguousarray(self.ids.ravel()[flat].reshape(shape)),
            np.ascontiguousarray((flat % n).reshape(shape)),
            np.array(self.data[self.lo : self.hi]),
            self.alive,
        )
        searcher._owns_alive = True
        searcher.queries = self.queries
        searcher.rows_scanned = self.rows_scanned
        searcher.crossings = self.crossings
        searcher.epoch = self.epoch
        searcher.acked_lsn = self.acked_lsn
        return searcher

    def _scan(
        self,
        q: _QueryState,
        left_starts: np.ndarray,
        left_stops: np.ndarray,
        right_starts: np.ndarray,
        right_stops: np.ndarray,
    ) -> dict:
        eta = q.eta
        n = self.num_rows
        m = self.m
        seg_starts = np.empty(2 * eta, dtype=np.int64)
        seg_stops = np.empty(2 * eta, dtype=np.int64)
        seg_starts[0::2] = left_starts
        seg_stops[0::2] = left_stops
        seg_starts[1::2] = right_starts
        seg_stops[1::2] = right_stops
        seg_lens = seg_stops - seg_starts
        total_full = int(seg_lens.sum())
        l_lo = np.full(eta, -1, dtype=np.int64)
        l_hi = np.full(eta, -1, dtype=np.int64)
        r_lo = np.full(eta, -1, dtype=np.int64)
        r_hi = np.full(eta, -1, dtype=np.int64)
        if total_full == 0:
            return {
                "gids": _EMPTY_I64,
                "funcs": _EMPTY_I64,
                "pos": _EMPTY_I64,
                "dists": _EMPTY_F64,
                "l_lo": l_lo,
                "l_hi": l_hi,
                "r_lo": r_lo,
                "r_hi": r_hi,
            }
        seg_rows = np.repeat(np.arange(eta, dtype=np.int64), 2)
        offsets = np.empty(2 * eta, dtype=np.int64)
        offsets[0] = 0
        np.cumsum(seg_lens[:-1], out=offsets[1:])
        # Full-run positions of every scanned entry, segment-major: this
        # gather is the real disk read the simulated charge models.
        run_pos = np.repeat(seg_starts - offsets, seg_lens)
        run_pos += np.arange(total_full, dtype=np.int64)
        flat_idx = run_pos + np.repeat(seg_rows * n, seg_lens)
        gid_all = self.ids.ravel()[flat_idx]
        keep = (gid_all >= self.lo) & (gid_all < self.hi)
        seg_col = np.repeat(np.arange(2 * eta, dtype=np.int64), seg_lens)
        kept_seg = seg_col[keep]
        sub = gid_all[keep] - self.lo
        subpos = run_pos[keep]
        total = int(sub.size)
        self.rows_scanned += total
        # Per-segment owned extents: kept_seg is sorted (segments were
        # gathered in order) and subpos ascends within each segment, so
        # the extents are the first/last owned entry of each slice.
        seg_ids = np.arange(2 * eta, dtype=np.int64)
        first = np.searchsorted(kept_seg, seg_ids, side="left")
        last = np.searchsorted(kept_seg, seg_ids, side="right")
        for i in range(eta):
            a, b = first[2 * i], last[2 * i]
            if b > a:
                l_lo[i] = subpos[a]
                l_hi[i] = subpos[b - 1]
            a, b = first[2 * i + 1], last[2 * i + 1]
            if b > a:
                r_lo[i] = subpos[a]
                r_hi[i] = subpos[b - 1]
        if total == 0:
            return {
                "gids": _EMPTY_I64,
                "funcs": _EMPTY_I64,
                "pos": _EMPTY_I64,
                "dists": _EMPTY_F64,
                "l_lo": l_lo,
                "l_hi": l_hi,
                "r_lo": r_lo,
                "r_hi": r_hi,
            }
        func_lens = (last - first)[0::2] + (last - first)[1::2]
        bounds = np.empty(eta + 1, dtype=np.int64)
        bounds[0] = 0
        np.cumsum(func_lens, out=bounds[1:])
        add = np.bincount(sub, minlength=m)
        crossers = np.flatnonzero(add > q.slack)
        if crossers.size:
            lookup = np.zeros(m, dtype=bool)
            lookup[crossers] = True
            pos = np.flatnonzero(lookup[sub])
            psub = sub[pos]
            order = np.argsort(psub, kind="stable")
            sid = psub[order]
            first_occ = np.empty(sid.size, dtype=bool)
            first_occ[0] = True
            np.not_equal(sid[1:], sid[:-1], out=first_occ[1:])
            group_starts = np.flatnonzero(first_occ)
            group_idx = np.cumsum(first_occ) - 1
            rank = np.arange(sid.size, dtype=np.int64) - group_starts[group_idx]
            hits = rank == q.slack[sid]
            elems = pos[order[hits]]
            elems.sort()
            cross_local = sub[elems]
            cross_func = np.searchsorted(bounds, elems, side="right") - 1
            cross_pos = subpos[elems]
            # Distances come straight off the mapped data rows (global
            # row index == global id until the first update, which
            # materialises this searcher away).
            dists = lp_distance(
                self.data[cross_local + self.lo], q.query, q.p
            )
            gids = cross_local + self.lo
        else:
            gids = cross_func = cross_pos = _EMPTY_I64
            dists = _EMPTY_F64
            cross_local = _EMPTY_I64
        self.crossings += int(gids.size)
        np.subtract(q.slack, add, out=q.slack, casting="unsafe")
        if cross_local.size:
            q.slack[cross_local] = _SLACK_DEAD
        return {
            "gids": gids,
            "funcs": cross_func,
            "pos": cross_pos,
            "dists": dists,
            "l_lo": l_lo,
            "l_hi": l_hi,
            "r_lo": r_lo,
            "r_hi": r_hi,
        }


def worker_main(conn, spec: ShardSpec | MmapShardSpec) -> None:
    """Worker process entry point (importable, spawn-safe).

    Attaches the shard, then serves ``(op_id, op, payload)`` requests
    until ``shutdown`` (or the pipe closes).  Every reply echoes the
    ``op_id`` and carries the op's wall-clock ``busy`` seconds (for
    per-shard utilisation) plus its ``cpu`` process-time seconds (for
    scheduler-noise-immune cost accounting on oversubscribed hosts).
    """
    try:
        if isinstance(spec, MmapShardSpec):
            shm = None
            arrays = open_mmap_shard(spec)
            searcher: ShardSearcher = MmapShardSearcher(
                spec.shard_id,
                spec.lo,
                spec.hi,
                arrays["values"],
                arrays["ids"],
                arrays["data"],
                arrays["alive"],
            )
        else:
            arrays, shm = attach_shard(spec)
            searcher = ShardSearcher(
                spec.shard_id,
                spec.lo,
                spec.hi,
                arrays["values"],
                arrays["ids"],
                arrays["positions"],
                arrays["data"],
                arrays["alive"],
            )
    except Exception:  # pragma: no cover - attach failures are fatal
        logger.exception(
            "shard %d worker failed to attach its segment", spec.shard_id
        )
        conn.send((-1, "err", traceback.format_exc()))
        return
    # Worker-local observability: its own registry + tracer, shipped to
    # the coordinator as deltas on obs-enabled round replies.
    registry = MetricsRegistry()
    tracer = SpanTracer()
    rows_total = registry.counter(
        "lazylsh_worker_rows_scanned_total",
        "Inverted-list entries scanned by this shard worker",
    )
    crossings_total = registry.counter(
        "lazylsh_worker_crossings_total",
        "Collision-threshold crossings found by this shard worker",
    )
    shipped_rows = 0
    shipped_crossings = 0
    crash_in_rounds: int | None = None  # armed mid-wave crash countdown
    crash_in_updates: int | None = None  # armed mid-catch-up crash countdown
    while True:
        try:
            op_id, op, payload = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        t0 = time.perf_counter()
        c0 = time.process_time()
        try:
            obs_delta = None
            if op == "ping":
                result = {"shard": searcher.shard_id, "points": searcher.m}
            elif op == "begin":
                searcher.begin(payload)
                result = None
            elif op == "round":
                requests = payload
                ship_obs = False
                wave_ctx = None
                if isinstance(payload, dict):
                    requests = payload["requests"]
                    ship_obs = bool(payload.get("obs", False))
                    raw_ctx = payload.get("trace")
                    if raw_ctx is not None:
                        # The coordinator's wave-root span context: this
                        # round's span becomes its child in the shared
                        # distributed trace (DESIGN §13).
                        wave_ctx = TraceContext.from_dict(raw_ctx)
                if crash_in_rounds is not None:
                    crash_in_rounds -= 1
                    if crash_in_rounds <= 0:
                        os._exit(1)
                if ship_obs:
                    if wave_ctx is not None:
                        with tracer.span(
                            "worker.round",
                            context=wave_ctx,
                            shard=searcher.shard_id,
                            queries=len(requests),
                        ) as span:
                            result = searcher.round(requests)
                            span.set(
                                rows=searcher.rows_scanned - shipped_rows,
                                crossings=searcher.crossings
                                - shipped_crossings,
                            )
                    else:
                        # Untraced wave: no span, zero tracing overhead.
                        result = searcher.round(requests)
                    d_rows = searcher.rows_scanned - shipped_rows
                    d_crossings = searcher.crossings - shipped_crossings
                    shipped_rows = searcher.rows_scanned
                    shipped_crossings = searcher.crossings
                    rows_total.inc(d_rows)
                    crossings_total.inc(d_crossings)
                    obs_delta = {
                        "rows": d_rows,
                        "crossings": d_crossings,
                        "spans": tracer.to_dicts(),
                    }
                    tracer.clear()
                else:
                    result = searcher.round(requests)
            elif op == "end":
                searcher.end(payload)
                result = None
            elif op == "reset":
                searcher.reset()
                result = None
            elif op == "update":
                if crash_in_updates is not None:
                    crash_in_updates -= 1
                    if crash_in_updates <= 0:
                        os._exit(1)
                if isinstance(searcher, MmapShardSearcher):
                    # The delta path mutates shard-private arrays; leave
                    # the read-only mapping behind first.
                    searcher = searcher.materialize()
                result = searcher.apply_update(payload)
            elif op == "crash":
                if isinstance(payload, dict) and payload.get("after_updates"):
                    crash_in_updates = int(payload["after_updates"])
                    result = None
                elif isinstance(payload, int) and payload > 0:
                    crash_in_rounds = payload
                    result = None
                else:
                    os._exit(1)
            elif op == "shutdown":
                conn.send(
                    (op_id, "ok", {"busy": 0.0, "cpu": 0.0, "result": None})
                )
                break
            else:
                raise ReproError(f"unknown worker op {op!r}")
            reply = {
                "busy": time.perf_counter() - t0,
                "cpu": time.process_time() - c0,
                "result": result,
            }
            if obs_delta is not None:
                reply["obs"] = obs_delta
            conn.send((op_id, "ok", reply))
        except Exception:
            logger.exception(
                "shard %d worker op %r (op_id=%d) failed",
                searcher.shard_id,
                op,
                op_id,
            )
            try:
                conn.send((op_id, "err", traceback.format_exc()))
            except (BrokenPipeError, OSError):  # pragma: no cover
                break
    if shm is not None:
        shm.close()
