"""Shard planning and zero-copy shard export for the query service.

The sharded service partitions the point set into ``n_shards``
contiguous id ranges.  For each shard it extracts, per hash function,
the sub-run of inverted-list entries owned by the shard
(:meth:`~repro.storage.inverted_index.InvertedListStore.shard_view`)
plus the shard's data rows and alive mask, and publishes all of it
through one :class:`multiprocessing.shared_memory.SharedMemory` block.
Workers attach read-only views — queries ship only window bounds and
crossing summaries over the pipes, never index data.

Shared-memory lifetime rules (see DESIGN.md section 9):

* the parent creates each segment, keeps the handle for the service's
  lifetime, and is the only unlinker (``close()``/context-manager exit);
* workers attach by name and immediately deregister the segment from
  their ``resource_tracker`` so a worker death (or the crash test hook)
  cannot reap memory the parent still owns;
* all views are read-only by convention — workers never write to the
  segment, so respawned workers can re-attach mid-flight.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

from repro.errors import InvalidParameterError

#: Serialises the Python < 3.13 ``resource_tracker.register`` patch in
#: :func:`attach_shard`: the patch swaps a process-global attribute, so
#: two concurrent attaches could otherwise restore the wrong original.
_TRACKER_PATCH_LOCK = threading.Lock()


def plan_shards(n_rows: int, n_shards: int) -> list[tuple[int, int]]:
    """Balanced contiguous id ranges ``[lo, hi)`` covering ``n_rows``.

    The first ``n_rows % n_shards`` shards take one extra point, so
    shard sizes differ by at most one.  ``n_shards`` is clamped to
    ``n_rows`` (a shard must own at least one point).
    """
    if n_rows < 1:
        raise InvalidParameterError(f"need at least one row, got {n_rows}")
    if n_shards < 1:
        raise InvalidParameterError(
            f"n_shards must be >= 1, got {n_shards}"
        )
    n_shards = min(n_shards, n_rows)
    base, extra = divmod(n_rows, n_shards)
    ranges = []
    lo = 0
    for s in range(n_shards):
        hi = lo + base + (1 if s < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to attach one shard (picklable).

    ``arrays`` maps array name to ``(offset, shape, dtype_str)`` inside
    the shared-memory block named ``shm_name``.
    """

    shard_id: int
    lo: int
    hi: int
    shm_name: str
    arrays: dict = field(default_factory=dict)


@dataclass(frozen=True)
class MmapShardSpec:
    """Zero-copy attach: the worker maps the v3 index file itself.

    Nothing is packed or copied — the spec is just the shard's id range
    plus the path of the format-v3 index file every worker opens
    read-only (:func:`open_mmap_shard`), which makes worker start O(1)
    in index size and lets the OS page cache act as the shared buffer
    pool the shm path emulates with an explicit segment.
    """

    shard_id: int
    lo: int
    hi: int
    path: str


def open_mmap_shard(spec: MmapShardSpec) -> dict:
    """Open a worker's view of an mmap-attached shard.

    Returns the full-index ``values``/``ids``/``data`` sections as
    read-only memmaps plus a private, writable RAM copy of the shard's
    ``alive`` slice (tombstones are per-worker copy-on-write state).
    """
    from repro.persistence import open_v3_arrays

    _header, arrays = open_v3_arrays(
        Path(spec.path), names=("values", "ids", "data", "alive")
    )
    alive = np.array(arrays["alive"][spec.lo : spec.hi], dtype=bool)
    return {
        "values": arrays["values"],
        "ids": arrays["ids"],
        "data": arrays["data"],
        "alive": alive,
    }


#: Array layout of one shard segment, in packing order.
_SHARD_ARRAYS = ("values", "ids", "positions", "data", "alive")


def pack_shard(
    shard_id: int,
    lo: int,
    hi: int,
    store,
    data: np.ndarray,
    alive: np.ndarray,
) -> tuple[ShardSpec, shared_memory.SharedMemory]:
    """Export shard ``[lo, hi)`` into a fresh shared-memory segment.

    Returns the spec to hand to the worker and the parent-side handle
    (the caller owns closing and unlinking it).
    """
    values, ids, positions = store.shard_view(lo, hi)
    arrays = {
        "values": values,
        "ids": ids,
        "positions": positions,
        "data": np.ascontiguousarray(data[lo:hi]),
        "alive": np.ascontiguousarray(alive[lo:hi]),
    }
    manifest: dict = {}
    offset = 0
    for name in _SHARD_ARRAYS:
        arr = arrays[name]
        # 8-byte alignment keeps every int64/float64 view well-formed.
        offset = (offset + 7) & ~7
        manifest[name] = (offset, arr.shape, arr.dtype.str)
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for name in _SHARD_ARRAYS:
        arr = arrays[name]
        off, shape, dtype = manifest[name]
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
        view[...] = arr
    spec = ShardSpec(
        shard_id=shard_id, lo=lo, hi=hi, shm_name=shm.name, arrays=manifest
    )
    return spec, shm


def attach_shard(
    spec: ShardSpec,
) -> tuple[dict, shared_memory.SharedMemory]:
    """Attach a packed shard in a worker process.

    Returns ``(arrays, shm)`` where ``arrays`` maps name to a read-only
    numpy view over the segment.  The attach is kept out of the
    ``resource_tracker`` so a worker's exit (clean or not) never unlinks
    or deregisters memory the parent still serves from.
    """
    try:
        shm = shared_memory.SharedMemory(name=spec.shm_name, track=False)
    except TypeError:
        # Python < 3.13 has no track= parameter and registers every
        # attach with the (process-tree-wide) resource tracker, which
        # would let a worker's exit clobber the parent's registration.
        # Suppress the registration for the duration of the attach; the
        # lock keeps concurrent attaches from racing the save/restore of
        # the process-global attribute.
        with _TRACKER_PATCH_LOCK:
            original = resource_tracker.register

            def _skip(name: str, rtype: str) -> None:
                if rtype != "shared_memory":  # pragma: no cover
                    original(name, rtype)

            resource_tracker.register = _skip
            try:
                shm = shared_memory.SharedMemory(name=spec.shm_name)
            finally:
                resource_tracker.register = original
    arrays = {}
    for name, (off, shape, dtype) in spec.arrays.items():
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
        view.flags.writeable = False
        arrays[name] = view
    return arrays, shm
