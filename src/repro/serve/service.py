"""Sharded multiprocess query service with bit-identical I/O accounting.

:class:`ShardedSearchService` snapshots a built :class:`~repro.core.
lazylsh.LazyLSH` index into ``n_shards`` contiguous point-id ranges
(one shared-memory segment and one persistent worker process each) and
answers the same ``Np(q, k, c)`` queries as :meth:`LazyLSH.knn` by
fanning every rehashing round out to all shards and merging.

Exactness
---------

The merged results — candidate order, termination round *and* hash
function, ids, distances, and the simulated sequential/random I/O
counts — are bit-identical to the single-process flat engine.  Three
observations make this work:

* **Shard scans restrict engine scans.**  Each shard's per-function
  sub-run preserves the full run's order, so ``searchsorted`` over the
  shard restricts the engine's window endpoints exactly, and the ring
  split (left/right of the previous window) commutes with the
  restriction.  A shard therefore sees precisely its share of every
  window the engine would scan.
* **Speculation is unobservable.**  Workers scan each round in full
  even though the engine may stop mid-round at some hash function
  ``i_stop``.  On any round the query *continues*, the engine consumed
  the whole round too, so worker state matches; on the round it stops,
  the post-``i_stop`` shard state is never read again.  The coordinator
  recovers ``i_stop`` exactly by replaying the engine's promotion order
  (function-major, left ring run before right — a ``lexsort`` on
  (function, full-run position)) through one cumulative sum of the
  per-function within-radius and candidate counts.
* **Positions are dense.**  Every reported crossing and scan extent
  carries its position in the *full* run, and shard sub-runs partition
  the run, so the full scan interval per function is just the min/max
  over shards of the reported extents — from which the coordinator
  charges sequential page I/O through the very same
  :func:`~repro.core.engine.charge_ring_hulls` interval arithmetic the
  engine uses.

I/O attribution: random I/Os (candidate fetches) are attributed to the
shard owning the candidate (``SearchResult.shard_io``); sequential page
reads are charged globally at the coordinator because pages are a
property of the full run, not of any shard.  The totals in
``SearchResult.io`` equal the single-process engine's exactly.

Fault tolerance: a worker death (detected as a broken pipe) triggers a
repair — dead workers are respawned against the still-live shared
memory, survivors are reset, stale replies are discarded by sequence
number — and the whole wave is replayed once from round zero (the scan
is deterministic, so the replay returns the same results).  A second
failure raises :class:`~repro.errors.ReproError`.
"""

from __future__ import annotations

import hashlib
import logging
import multiprocessing as mp
import os
import threading
import time
from contextlib import nullcontext

import numpy as np

from repro.api import SearchRequest, SearchResult
from repro.core.engine import (
    TERMINATION_CAP,
    TERMINATION_K_WITHIN,
    charge_ring_hulls,
)
from repro.errors import (
    IndexNotBuiltError,
    InvalidParameterError,
    ReproError,
    WalGapError,
)
from repro.metrics.lp import validate_p
from repro.obs.explain import build_explain
from repro.obs.query_trace import QueryTraceBuilder
from repro.obs.trace_context import new_request_id
from repro.obs.tracer import Span
from repro.serve.sharding import MmapShardSpec, pack_shard, plan_shards
from repro.serve.worker import worker_main
from repro.storage.io_stats import IOStats

logger = logging.getLogger("repro.serve.service")

#: Mirror of the engine's round cap and hull sentinel (kept local so the
#: service depends only on the engine's public charging primitive).
_MAX_ROUNDS = 128
_HULL_EMPTY_FIRST = 2**62

_KNN_ABORT = "knn did not terminate; this indicates a corrupted index"

#: Pipe round-trip latency buckets (seconds): a round trip is one op's
#: send → worker scan → reply receipt, so sub-millisecond to ~1s.
_ROUNDTRIP_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
)


class _WorkerDied(Exception):
    """A worker's pipe broke mid-wave; the coordinator should repair."""

    def __init__(self, shard_id: int) -> None:
        super().__init__(f"worker for shard {shard_id} died")
        self.shard_id = shard_id


def _worker_entry(conn, spec, parent_fd: int | None = None) -> None:
    """Worker bootstrap that first sheds the inherited coordinator fd.

    ``parent_fd`` is the coordinator's end of this worker's own pipe as
    numbered in a fork child's inherited fd table.  Closing it here is
    what lets ``conn.recv()`` observe EOF when the coordinator process
    dies without running ``close()`` — without this, an orphaned worker
    would hold its own pipe's write side open and wait forever.
    """
    if parent_fd is not None:
        try:
            os.close(parent_fd)
        except OSError:  # pragma: no cover - already closed is fine
            pass
    worker_main(conn, spec)


class _WaveObs:
    """Per-shard telemetry buffered over one wave attempt.

    The buffer is merged into the parent telemetry only when the wave
    *succeeds*; an attempt aborted by a worker death is discarded whole,
    so replayed waves never double-count (repair events themselves are
    recorded separately — they are facts about the service, not
    residue of the aborted attempt).
    """

    def __init__(self, n_shards: int) -> None:
        self.rows = [0] * n_shards
        self.crossings = [0] * n_shards
        self.busy = [0.0] * n_shards
        self.ops = [0] * n_shards
        self.roundtrips: list[list[float]] = [[] for _ in range(n_shards)]
        self.spans: list[list[dict]] = [[] for _ in range(n_shards)]
        #: Trace context of the wave's root span (None when unsampled);
        #: shipped on round payloads so workers parent their spans to it.
        self.trace = None

    def add_delta(self, sid: int, delta: dict) -> None:
        self.rows[sid] += int(delta.get("rows", 0))
        self.crossings[sid] += int(delta.get("crossings", 0))
        self.spans[sid].extend(delta.get("spans", ()))


class _QueryRun:
    """Coordinator-side Algorithm-4 state for one in-flight query."""

    __slots__ = (
        "qid",
        "query",
        "k",
        "p",
        "theta",
        "eta",
        "r_hat",
        "cap",
        "delta",
        "c_delta",
        "level",
        "rounds",
        "n_cand",
        "n_within",
        "outside",
        "id_chunks",
        "dist_chunks",
        "io",
        "shard_random",
        "seen_first",
        "seen_stop",
        "query_hashes",
        "cur_los",
        "cur_his",
        "done",
        "reason",
        "trace",
    )

    def __init__(
        self,
        qid: int,
        query: np.ndarray,
        k: int,
        p: float,
        params,
        cap: float,
        delta0: float,
        query_hashes: np.ndarray,
        n_shards: int,
    ) -> None:
        self.qid = qid
        self.query = query
        self.k = k
        self.p = p
        self.theta = int(params.theta)
        self.eta = int(params.eta)
        self.r_hat = float(params.r_hat)
        self.cap = cap
        self.delta = delta0
        self.c_delta = 0.0
        self.level = 0.0
        self.rounds = 0
        self.n_cand = 0
        self.n_within = 0
        self.outside = np.empty(0, dtype=np.float64)
        self.id_chunks: list[np.ndarray] = []
        self.dist_chunks: list[np.ndarray] = []
        self.io = IOStats()
        self.shard_random = np.zeros(n_shards, dtype=np.int64)
        self.seen_first = np.full(self.eta, _HULL_EMPTY_FIRST, dtype=np.int64)
        self.seen_stop = np.zeros(self.eta, dtype=np.int64)
        self.query_hashes = query_hashes[: self.eta]
        self.cur_los: np.ndarray | None = None
        self.cur_his: np.ndarray | None = None
        self.done = False
        self.reason = ""
        self.trace = None


class ShardedSearchService:
    """Queries a built index through persistent per-shard workers.

    Parameters
    ----------
    index:
        A built :class:`~repro.core.lazylsh.LazyLSH`.  The service
        snapshots its data and inverted lists at construction time and
        *owns* the index afterwards: direct ``insert``/``remove`` calls
        on it are not visible to the workers — route updates through
        :meth:`ingest` (committed WAL records), which mutates the
        coordinator's copy and ships per-shard deltas in one step.
    n_shards:
        Number of shards — and worker processes; clamped to the number
        of stored rows.  Each shard owns a contiguous id range of
        balanced size (sizes differ by at most one point).
    start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``) or ``None`` for the platform default.
    telemetry:
        Service-level :class:`~repro.obs.telemetry.Telemetry` used for
        every wave that does not pass its own (per-call ``telemetry=``
        wins).  This is what a long-running server scraped through
        :class:`~repro.obs.exporter.ObsExporter` wants: one registry
        accumulating across all waves.
    auditor:
        Optional :class:`~repro.obs.auditor.GuaranteeAuditor`; every
        successfully answered query is offered to it (the auditor does
        its own sampling).
    base_lsn:
        WAL position the snapshotted index already covers (the
        checkpoint's ``wal_lsn`` when serving a recovered index);
        :meth:`ingest` expects the next record at ``base_lsn + 1`` and
        silently skips anything at or below it.
    attach:
        How workers get their shard: ``"shm"`` (default) packs each
        shard's sub-runs into a shared-memory segment; ``"mmap"`` skips
        packing entirely — every worker memory-maps the same format-v3
        index file read-only (O(1) start, the OS page cache is the
        shared buffer pool).  ``"mmap"`` needs the index to have been
        opened from a v3 file (``load_index(..., backend=...)``), or an
        explicit ``index_path``; results are bit-identical either way.
    index_path:
        Path of the v3 file backing ``attach="mmap"``.  Defaults to the
        file the index was loaded from; required when the index was
        built in-process.  The file must match the index state exactly.

    Use as a context manager (or call :meth:`close`) to release the
    worker processes and shared-memory segments::

        with ShardedSearchService(index, n_shards=4) as service:
            result = service.search(query, k=10, p=0.5)
    """

    def __init__(
        self,
        index,
        *,
        n_shards: int = 2,
        start_method: str | None = None,
        telemetry=None,
        auditor=None,
        base_lsn: int = 0,
        attach: str = "shm",
        index_path=None,
    ) -> None:
        if not getattr(index, "is_built", False):
            raise IndexNotBuiltError(
                "ShardedSearchService needs a built index; call build(data)"
            )
        if attach not in ("shm", "mmap"):
            raise InvalidParameterError(
                f"attach must be 'shm' or 'mmap', got {attach!r}"
            )
        self.attach = attach
        self._index_path = None
        if attach == "mmap":
            if index_path is None:
                index_path = index.store.storage_info().get("source_path")
            if index_path is None:
                raise InvalidParameterError(
                    "attach='mmap' needs an index opened from a format-v3 "
                    "file (load_index(..., backend='mmap')) or an explicit "
                    "index_path"
                )
            self._index_path = str(index_path)
        self.index = index
        self.ranges = plan_shards(index.num_rows, n_shards)
        self.n_shards = len(self.ranges)
        self._shard_los = np.array([lo for lo, _hi in self.ranges], dtype=np.int64)
        # Live-update plane (DESIGN §11): rows beyond the packed base are
        # owned per _extra_owner; epoch counts applied updates, acked_lsn
        # the newest WAL record folded in.  _update_log keeps every
        # shipped delta so a respawned worker can catch up by replay.
        self._base_rows = int(index.num_rows)
        self._extra_owner = np.empty(0, dtype=np.int64)
        self._shard_points = np.array(
            [hi - lo for lo, hi in self.ranges], dtype=np.int64
        )
        self.epoch = 0
        self.acked_lsn = int(base_lsn)
        self._update_log: list[dict] = []
        self.updates_applied = 0
        self._epp = int(index.store.layout.entries_per_page)
        self._ctx = mp.get_context(start_method)
        self._specs = []
        self._shms = []
        self._procs: list = [None] * self.n_shards
        self._conns: list = [None] * self.n_shards
        self.busy_seconds = [0.0] * self.n_shards
        self.cpu_seconds = [0.0] * self.n_shards
        self.restarts = 0
        self.replays = 0
        self.queries_served = 0
        self.telemetry = telemetry
        self.auditor = auditor
        self._op_seq = 0
        self._qid_seq = 0
        self._closed = False
        # Serialises every pipe-touching entry point (search waves and
        # ingest).  Re-entrant so the HTTP front door can hold it across
        # a whole coalesced plan — including a nested
        # MultiQueryEngine scan over self.index — without deadlocking on
        # the service's own acquisition.  Single-threaded callers never
        # contend on it.
        self.lock = threading.RLock()
        self._test_kill_during_catchup: int | None = None
        self._wave_obs: _WaveObs | None = None
        # Wall-clock time of each shard's last successful reply; read by
        # health() (never poked from the exporter thread).
        self._last_reply = [0.0] * self.n_shards
        try:
            if self.attach == "mmap":
                # Zero-copy: no packing, no segments — every worker maps
                # the v3 file itself, so startup cost is O(1) in index
                # size and the only copy is each worker's alive slice.
                self._specs = [
                    MmapShardSpec(sid, lo, hi, self._index_path)
                    for sid, (lo, hi) in enumerate(self.ranges)
                ]
            else:
                for sid, (lo, hi) in enumerate(self.ranges):
                    spec, shm = pack_shard(
                        sid, lo, hi, index.store, index.data, index._alive
                    )
                    self._specs.append(spec)
                    self._shms.append(shm)
            for sid in range(self.n_shards):
                self._spawn(sid)
            self._broadcast("ping")
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _spawn(self, sid: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        # Under fork the child's fd table carries the coordinator's end
        # of this very pipe; unless the worker drops it, coordinator
        # death (SIGKILL included) never surfaces as EOF and an orphaned
        # worker blocks in recv() forever.  spawn/forkserver children
        # inherit nothing, so there is no fd to close there.
        parent_fd = (
            parent_conn.fileno()
            if self._ctx.get_start_method() == "fork"
            else None
        )
        proc = self._ctx.Process(
            target=_worker_entry,
            args=(child_conn, self._specs[sid], parent_fd),
            daemon=True,
            name=f"repro-shard-{sid}",
        )
        proc.start()
        # Close the parent's copy of the child end so a worker death
        # surfaces as EOF instead of a hang.
        child_conn.close()
        self._procs[sid] = proc
        self._conns[sid] = parent_conn

    def close(self) -> None:
        """Shut workers down and release the shared-memory segments.

        Idempotent; also invoked by ``__exit__``.  The parent is the
        sole unlinker of the segments (see ``repro.serve.sharding``).
        """
        if self._closed:
            return
        self._closed = True
        logger.info(
            "closing sharded service: %d shard(s), %d queries served, "
            "%d restart(s)",
            self.n_shards,
            self.queries_served,
            self.restarts,
        )
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send((self._next_op(), "shutdown", None))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            if conn is not None:
                conn.close()
        for shm in self._shms:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._shms = []

    def __enter__(self) -> "ShardedSearchService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def stats(self) -> dict:
        """Service-level counters (JSON-serialisable)."""
        return {
            "n_shards": self.n_shards,
            "attach": self.attach,
            "shard_ranges": [list(r) for r in self.ranges],
            "shard_points": [int(x) for x in self._shard_points],
            "busy_seconds": list(self.busy_seconds),
            "cpu_seconds": list(self.cpu_seconds),
            "restarts": self.restarts,
            "replays": self.replays,
            "queries_served": self.queries_served,
            "epoch": self.epoch,
            "acked_lsn": self.acked_lsn,
            "updates_applied": self.updates_applied,
        }

    def health(self) -> dict:
        """Read-only health report (safe from the exporter thread).

        Per-shard worker liveness, last-heartbeat age and shared-memory
        attachment status; ``healthy`` is true iff the service is open
        and every worker process is alive.  Strictly reads cached state
        — no pipe traffic — so a scrape can never interleave with (or
        block on) an in-flight wave's op sequence.
        """
        now = time.time()
        shards = []
        healthy = not self._closed
        for sid in range(self.n_shards):
            proc = self._procs[sid]
            alive = bool(proc is not None and proc.is_alive())
            healthy = healthy and alive
            last = self._last_reply[sid]
            entry = {
                "shard": sid,
                "alive": alive,
                "points": int(self._shard_points[sid]),
                "last_heartbeat_age_seconds": (
                    now - last if last else None
                ),
            }
            if self.attach == "mmap":
                entry["mmap"] = {
                    "path": self._index_path,
                    "attached": alive,
                }
            else:
                attached = not self._closed and sid < len(self._shms)
                entry["shm"] = {
                    "name": self._specs[sid].shm_name,
                    "size": (
                        int(self._shms[sid].size) if attached else 0
                    ),
                    "attached": attached,
                }
            shards.append(entry)
        storage = {"attach": self.attach}
        storage.update(self.index.storage_info())
        return {
            "healthy": bool(healthy),
            "closed": self._closed,
            "n_shards": self.n_shards,
            "restarts": self.restarts,
            "replays": self.replays,
            "queries_served": self.queries_served,
            "storage": storage,
            "shards": shards,
            "wal": {
                "epoch": self.epoch,
                "acked_lsn": self.acked_lsn,
                "updates_applied": self.updates_applied,
                "extra_points": int(self._extra_owner.size),
            },
        }

    # ------------------------------------------------------------------
    # Worker protocol
    # ------------------------------------------------------------------

    def _next_op(self) -> int:
        self._op_seq += 1
        return self._op_seq

    def _send(self, sid: int, op_id: int, op: str, payload) -> None:
        try:
            self._conns[sid].send((op_id, op, payload))
        except (BrokenPipeError, OSError) as exc:
            raise _WorkerDied(sid) from exc

    def _recv(self, sid: int, op_id: int):
        """Receive shard ``sid``'s reply to ``op_id``.

        Replies to older ops (stale queue entries surviving a repair)
        are discarded; a broken pipe raises :class:`_WorkerDied`; a
        worker-side exception is re-raised here (it is a bug, not a
        death — no retry).
        """
        while True:
            try:
                reply_id, status, payload = self._conns[sid].recv()
            except (EOFError, OSError) as exc:
                raise _WorkerDied(sid) from exc
            if status == "err":
                raise ReproError(
                    f"shard {sid} worker failed:\n{payload}"
                )
            if reply_id == op_id:
                self.busy_seconds[sid] += payload["busy"]
                self.cpu_seconds[sid] += payload.get("cpu", 0.0)
                self._last_reply[sid] = time.time()
                wave_obs = self._wave_obs
                if wave_obs is not None:
                    wave_obs.busy[sid] += payload["busy"]
                    delta = payload.get("obs")
                    if delta is not None:
                        wave_obs.add_delta(sid, delta)
                return payload["result"]
            if reply_id > op_id:  # pragma: no cover - protocol bug
                raise ReproError(
                    f"shard {sid} replied to op {reply_id} while awaiting "
                    f"{op_id}"
                )
            # reply_id < op_id: stale reply from before a repair — drop.

    def _broadcast(self, op: str, payload=None) -> list:
        """Send one op to every shard, then collect every reply."""
        op_id = self._next_op()
        t0 = time.perf_counter()
        for sid in range(self.n_shards):
            self._send(sid, op_id, op, payload)
        replies = []
        wave_obs = self._wave_obs
        for sid in range(self.n_shards):
            replies.append(self._recv(sid, op_id))
            if wave_obs is not None:
                wave_obs.ops[sid] += 1
                wave_obs.roundtrips[sid].append(time.perf_counter() - t0)
        return replies

    def _repair(self, known_dead: int | None = None) -> list[int]:
        """Respawn dead workers, replay updates to them, reset survivors.

        ``known_dead`` is the shard whose pipe broke: its EOF can arrive
        before ``waitpid`` observes the exit, so it is joined first
        rather than trusting ``is_alive()``.  A respawned worker attaches
        the *original* shared-memory snapshot, so it catches up by
        replaying the whole update log (cheap idempotent skip for
        records at or below its acked LSN — zero for a fresh attach).
        A worker dying again mid-catch-up restarts the repair, up to
        three attempts.  Returns the shard ids that were respawned.
        """
        all_respawned: set[int] = set()
        for _attempt in range(3):
            try:
                if known_dead is not None:
                    self._procs[known_dead].join(timeout=5)
                respawned = []
                for sid in range(self.n_shards):
                    proc = self._procs[sid]
                    if sid != known_dead and proc.is_alive():
                        continue
                    self._conns[sid].close()
                    self._spawn(sid)
                    self.restarts += 1
                    respawned.append(sid)
                all_respawned.update(respawned)
                if respawned:
                    logger.warning(
                        "respawned shard worker(s) %s after a death "
                        "(restarts=%d)",
                        respawned,
                        self.restarts,
                    )
                known_dead = None
                self._catch_up(respawned)
                # Survivors may hold per-query state and queued replies
                # from the aborted wave; the reset's fresh op id flushes
                # both (stale replies are skipped by _recv's check).
                self._broadcast("reset")
                return sorted(all_respawned)
            except _WorkerDied as died:
                known_dead = died.shard_id
        raise ReproError(
            "sharded service: workers kept dying during repair; giving up"
        )

    def _catch_up(self, shard_ids: list[int]) -> None:
        """Replay the update log to the given (freshly spawned) shards."""
        tracer = (
            self.telemetry.tracer if self.telemetry is not None else None
        )
        # Catch-up spans only join an already-open trace (a traced wave's
        # repair or a sampled ingest); untraced repairs open no spans.
        traced = tracer is not None and tracer.current_context() is not None
        for sid in shard_ids:
            cm = (
                tracer.span(
                    "serve.catch_up",
                    shard=sid,
                    records=len(self._update_log),
                )
                if traced
                else nullcontext()
            )
            with cm:
                for j, delta in enumerate(self._update_log):
                    if (
                        self._test_kill_during_catchup == sid and j == 1
                    ):  # deterministic mid-catch-up death (test hook)
                        self._test_kill_during_catchup = None
                        self._send(sid, self._next_op(), "crash", None)
                        self._procs[sid].join(timeout=5)
                    op_id = self._next_op()
                    self._send(sid, op_id, "update", delta)
                    self._recv(sid, op_id)

    def _crash_worker(
        self, shard_id: int, after_rounds: int | None = None
    ) -> None:
        """Test hook: kill one worker (``os._exit(1)``).

        With ``after_rounds=n`` the worker acknowledges and arms a
        deferred crash: it dies while handling the n-th subsequent
        ``round`` op, i.e. *mid-wave*, exercising the repair-and-replay
        path from inside a wave rather than between waves.
        """
        if after_rounds is None:
            self._send(shard_id, self._next_op(), "crash", None)
            self._procs[shard_id].join(timeout=5)
        else:
            op_id = self._next_op()
            self._send(shard_id, op_id, "crash", int(after_rounds))
            self._recv(shard_id, op_id)

    # ------------------------------------------------------------------
    # Live updates (DESIGN §11)
    # ------------------------------------------------------------------

    def _owner_of(self, gids: np.ndarray) -> np.ndarray:
        """Owning shard of each global id (base ranges or ingest-assigned)."""
        owner = np.searchsorted(self._shard_los, gids, side="right") - 1
        extra = gids >= self._base_rows
        if extra.any():
            owner[extra] = self._extra_owner[gids[extra] - self._base_rows]
        return owner

    def _assign_owners(self, count: int) -> np.ndarray:
        """Deterministically place ``count`` new points on shards.

        Each point goes to the currently least-loaded shard (ties break
        to the lowest id), so ownership stays balanced and every
        coordinator replaying the same WAL assigns identically.
        """
        owners = np.empty(count, dtype=np.int64)
        for j in range(count):
            sid = int(np.argmin(self._shard_points))
            owners[j] = sid
            self._shard_points[sid] += 1
        return owners

    def ingest(self, records) -> int:
        """Apply committed WAL records to the live fleet.

        ``records`` is an iterable of :class:`~repro.durability.wal.
        WalRecord` (e.g. a :class:`~repro.durability.feed.WalFeed`
        poll).  Records at or below the service's acked LSN are skipped
        (idempotent replay); a gap raises.  Each applied record bumps the
        service epoch, mutates the coordinator's index, and ships the
        shard deltas over the worker pipes; queries issued after
        ``ingest`` returns see the new state bit-identically to a
        single-process index that applied the same records.  Returns the
        number of records applied.

        Thread-safe: serialised against search waves by ``self.lock``.
        """
        with self.lock:
            return self._ingest_locked(records)

    def _ingest_locked(self, records) -> int:
        if self._closed:
            raise ReproError("service is closed")
        applied = 0
        for record in records:
            lsn = int(record.lsn)
            if lsn <= self.acked_lsn:
                continue
            if lsn != self.acked_lsn + 1:
                raise WalGapError(self.acked_lsn + 1, lsn)
            if record.op == "insert":
                start = self.index.num_rows
                expected = np.arange(
                    start, start + record.ids.shape[0], dtype=np.int64
                )
                if not np.array_equal(record.ids, expected):
                    raise ReproError(
                        f"WAL insert at LSN {lsn} carries ids "
                        f"[{record.ids[0]}..] but the coordinator would "
                        f"assign [{start}..]: log and service state diverge"
                    )
                _ids, plan = self.index._apply_insert(record.points)
                owners = self._assign_owners(record.ids.shape[0])
                self._extra_owner = np.concatenate(
                    [self._extra_owner, owners]
                )
                delta = {
                    "op": "insert",
                    "lsn": lsn,
                    "epoch": self.epoch + 1,
                    "rel": plan.rel_positions,
                    "values": plan.values,
                    "ids": plan.ids,
                    "dest": plan.dest_positions,
                    "points": np.ascontiguousarray(
                        record.points, dtype=np.float64
                    ),
                    "batch_start": start,
                    "owners": owners,
                }
            elif record.op == "remove":
                self.index.remove(record.ids)
                removed_owner = self._owner_of(record.ids)
                np.subtract.at(self._shard_points, removed_owner, 1)
                delta = {
                    "op": "remove",
                    "lsn": lsn,
                    "epoch": self.epoch + 1,
                    "gids": np.ascontiguousarray(record.ids, dtype=np.int64),
                }
            else:
                raise ReproError(f"unknown WAL op {record.op!r} at LSN {lsn}")
            self._update_log.append(delta)
            self.epoch += 1
            self.acked_lsn = lsn
            self.updates_applied += 1
            ictx = (
                self.telemetry.maybe_sample_context()
                if self.telemetry is not None
                else None
            )
            if ictx is not None:
                # WAL catch-up gets its own head-sampled trace, so live
                # ingest is inspectable under /trace without leaking
                # legacy spans on the unsampled fast path.
                with self.telemetry.tracer.span(
                    "serve.ingest", context=ictx, lsn=lsn, op=record.op
                ):
                    self._ship(delta)
                self.telemetry.finish_trace(ictx)
            else:
                self._ship(delta)
            applied += 1
        return applied

    def _ship(self, delta: dict) -> None:
        """Broadcast one update delta, repairing on a worker death.

        The delta is already in the update log, so the repair's catch-up
        replays it to respawned workers; survivors that applied it before
        the death skip the retry by LSN.
        """
        for attempt in range(2):
            try:
                self._broadcast("update", delta)
                return
            except _WorkerDied as died:
                if attempt:
                    raise ReproError(
                        "sharded service: worker died again while shipping "
                        "an update; giving up"
                    ) from None
                self._repair(known_dead=died.shard_id)

    # ------------------------------------------------------------------
    # Search API
    # ------------------------------------------------------------------

    def search(
        self,
        query,
        k: int | None = None,
        *,
        p: float = 1.0,
        cap: float | None = None,
        radius: float | None = None,
        telemetry=None,
        request_id: str | None = None,
        trace_context=None,
        deadline_ms: float | None = None,
        explain: bool = False,
    ) -> SearchResult:
        """Answer one ``Np(q, k, c)`` query across all shards.

        Accepts either an explicit ``(query, k, p=...)`` or a
        :class:`~repro.api.SearchRequest` as the sole argument — the
        same overload as :meth:`LazyLSH.knn`.  The request's ``engine``
        field is ignored (the service always runs its distributed flat
        plan); ``metrics`` lists are rejected, as on ``LazyLSH.knn``.
        ``request_id``/``trace_context``/``deadline_ms`` (or the same
        fields of the SearchRequest) opt the query into distributed
        tracing and the advisory deadline — see :meth:`search_batch`.
        ``explain=True`` attaches a structured EXPLAIN record (DESIGN
        §15) to ``result.explain``; answers stay bit-identical.
        """
        if isinstance(query, SearchRequest):
            if k is not None:
                raise InvalidParameterError(
                    "pass either a SearchRequest or explicit query/k "
                    "arguments, not both"
                )
            request = query
            if request.metrics is not None:
                raise InvalidParameterError(
                    "ShardedSearchService.search answers a single metric; "
                    "use MultiQueryEngine.knn or knn_batch(metrics=...) for "
                    "a metrics list"
                )
            query = request.query
            k = request.k
            p = request.p
            cap = request.cap
            radius = request.radius
            request_id = request.request_id
            trace_context = request.trace_context
            deadline_ms = request.deadline_ms
            explain = request.explain
        elif k is None:
            raise InvalidParameterError(
                "k is required when not passing a SearchRequest"
            )
        query = self.index._check_query(query)
        return self.search_batch(
            query[None, :], k, p=p, cap=cap, radius=radius,
            telemetry=telemetry, request_id=request_id,
            trace_context=trace_context, deadline_ms=deadline_ms,
            explain=explain,
        )[0]

    def search_batch(
        self,
        queries,
        k: int | None = None,
        *,
        p: float = 1.0,
        cap: float | None = None,
        radius: float | None = None,
        telemetry=None,
        request_id: str | None = None,
        trace_context=None,
        deadline_ms: float | None = None,
        explain: bool = False,
    ) -> list[SearchResult]:
        """Answer a ``(m, d)`` matrix of queries as one synchronised wave.

        All queries of the wave share ``k``/``p``/``cap``/``radius``;
        per-query radii and termination stay independent (a finished
        query simply drops out of later rounds).  Also accepts a
        :class:`~repro.api.SearchRequest` whose ``query`` is a matrix.
        Returns one :class:`~repro.api.SearchResult` per row, each with
        the per-shard random-I/O breakdown in ``shard_io``.

        Tracing (DESIGN §13): a sampled ``trace_context`` — supplied by
        the caller or minted by the telemetry's head sampler — makes the
        wave a distributed trace: the coordinator's root span id rides
        the round payloads, workers open ``worker.round`` child spans
        under it, and the finished tree lands in the telemetry's trace
        store under one trace id.  ``deadline_ms`` is advisory: results
        stay bit-identical, overruns are flagged/counted.  ``explain``
        attaches one EXPLAIN record per result (DESIGN §15), built from
        the same round records the trace plane emits.

        Thread-safe: the wave holds ``self.lock`` (re-entrant), so
        concurrent callers and ``ingest`` are serialised.
        """
        with self.lock:
            return self._search_batch_locked(
                queries, k, p=p, cap=cap, radius=radius, telemetry=telemetry,
                request_id=request_id, trace_context=trace_context,
                deadline_ms=deadline_ms, explain=explain,
            )

    def _search_batch_locked(
        self,
        queries,
        k: int | None = None,
        *,
        p: float = 1.0,
        cap: float | None = None,
        radius: float | None = None,
        telemetry=None,
        request_id: str | None = None,
        trace_context=None,
        deadline_ms: float | None = None,
        explain: bool = False,
    ) -> list[SearchResult]:
        if self._closed:
            raise ReproError("service is closed")
        if isinstance(queries, SearchRequest):
            if k is not None:
                raise InvalidParameterError(
                    "pass either a SearchRequest or explicit queries/k "
                    "arguments, not both"
                )
            request = queries
            if request.metrics is not None:
                raise InvalidParameterError(
                    "ShardedSearchService answers a single metric per wave; "
                    "use MultiQueryEngine.knn or knn_batch(metrics=...) for "
                    "a metrics list"
                )
            queries = request.query
            k = request.k
            p = request.p
            cap = request.cap
            radius = request.radius
            request_id = request.request_id
            trace_context = request.trace_context
            deadline_ms = request.deadline_ms
            explain = request.explain
        elif k is None:
            raise InvalidParameterError(
                "k is required when not passing a SearchRequest"
            )
        index = self.index
        queries = np.ascontiguousarray(np.atleast_2d(
            np.asarray(queries, dtype=np.float64)
        ))
        if queries.ndim != 2 or queries.shape[1] != index.dimensionality:
            raise InvalidParameterError(
                f"queries must be a (m, {index.dimensionality}) matrix, got "
                f"shape {queries.shape}"
            )
        if queries.shape[0] == 0:
            return []
        if not np.all(np.isfinite(queries)):
            raise InvalidParameterError("queries contain non-finite values")
        p = validate_p(p)
        n = index.num_points
        if not 1 <= k <= n:
            raise InvalidParameterError(
                f"k must lie in [1, {n}] for a dataset of {n} live points, "
                f"got {k}"
            )
        if cap is not None and cap < k:
            raise InvalidParameterError(
                f"candidate cap must be >= k={k}, got {cap}"
            )
        if radius is not None and not radius > 0:
            raise InvalidParameterError(
                f"radius override must be > 0, got {radius}"
            )
        params = index.metric_params(p)
        cap_value = k + index.beta * n if cap is None else float(cap)
        delta0 = 1.0 / float(params.r_hat) if radius is None else float(radius)
        hashes = index._bank.hash_points(queries)  # one matmul for the wave
        if telemetry is None:
            telemetry = self.telemetry  # service-level fallback
        start = time.monotonic() if deadline_ms is not None else 0.0
        if telemetry is None:
            ctx = (
                trace_context
                if trace_context is not None and trace_context.sampled
                else None
            )
            results = self._execute(
                queries, k, p, params, cap_value, delta0, hashes, None,
                explain=explain, request_id=request_id,
                trace_id=ctx.trace_id if ctx is not None else None,
            )
        else:
            ctx = telemetry.maybe_sample_context(trace_context)
            if ctx is None:
                # Untraced request: no spans are opened anywhere on the
                # wave path (tracing-off overhead must stay ~zero and
                # legacy spans must not pile up in a long-lived service).
                results = self._execute(
                    queries, k, p, params, cap_value, delta0, hashes,
                    telemetry, explain=explain, request_id=request_id,
                )
            else:
                if request_id is None:
                    request_id = new_request_id()
                with telemetry.tracer.span(
                    "serve.search_batch",
                    context=ctx,
                    shards=self.n_shards,
                    queries=int(queries.shape[0]),
                    k=k,
                ) as span:
                    span.set(request_id=request_id)
                    results = self._execute(
                        queries, k, p, params, cap_value, delta0, hashes,
                        telemetry, explain=explain, request_id=request_id,
                        trace_id=ctx.trace_id,
                    )
                telemetry.finish_trace(ctx)
        if request_id is not None or ctx is not None:
            for result in results:
                result.request_id = request_id
                if ctx is not None:
                    result.trace_id = ctx.trace_id
        if deadline_ms is not None:
            elapsed = time.monotonic() - start
            if elapsed * 1000.0 > deadline_ms:
                for result in results:
                    result.deadline_exceeded = True
                if telemetry is not None:
                    telemetry.note_deadline_overrun(
                        deadline_ms=deadline_ms,
                        elapsed_seconds=elapsed,
                        where="serve.search_batch",
                        request_id=request_id,
                    )
        return results

    # ------------------------------------------------------------------
    # Wave execution
    # ------------------------------------------------------------------

    def _execute(
        self, queries, k, p, params, cap_value, delta0, hashes, telemetry,
        *, explain=False, request_id=None, trace_id=None,
    ) -> list[SearchResult]:
        runs = None
        for attempt in range(2):
            runs = [
                _QueryRun(
                    self._qid_seq + j,
                    queries[j],
                    k,
                    p,
                    params,
                    cap_value,
                    delta0,
                    np.ascontiguousarray(hashes[:, j]),
                    self.n_shards,
                )
                for j in range(queries.shape[0])
            ]
            if telemetry is not None:
                for run in runs:
                    run.trace = telemetry.query_trace_builder(
                        p=p, k=k, engine="sharded",
                        rehashing=self.index.rehashing,
                    )
            elif explain:
                # EXPLAIN without telemetry: build the round records
                # through the same hooks, just without recording them.
                for run in runs:
                    run.trace = QueryTraceBuilder(
                        p=p, k=k, engine="sharded",
                        rehashing=self.index.rehashing,
                    )
            self._wave_obs = (
                _WaveObs(self.n_shards) if telemetry is not None else None
            )
            if self._wave_obs is not None:
                # Root span of the wave (opened by search_batch); workers
                # parent their round spans under it.
                self._wave_obs.trace = telemetry.tracer.current_context()
            try:
                self._run_wave(runs)
                break
            except _WorkerDied as died:
                self._wave_obs = None  # aborted attempt leaves no residue
                if attempt:
                    raise ReproError(
                        "sharded service: worker died again after repair; "
                        "giving up on this wave"
                    ) from None
                logger.warning(
                    "worker for shard %d died mid-wave; repairing and "
                    "replaying the wave",
                    died.shard_id,
                )
                respawned = self._repair(known_dead=died.shard_id)
                self.replays += 1
                if telemetry is not None:
                    # Repair events are facts about the service, not
                    # residue of the aborted attempt — record them now.
                    self._record_repair(telemetry, respawned)
        wave_obs, self._wave_obs = self._wave_obs, None
        self._qid_seq += len(runs)
        # Success: only now fold the wave into the index-level counters
        # and telemetry (an aborted attempt leaves no residue).
        if telemetry is not None and wave_obs is not None:
            self._merge_wave_obs(telemetry, wave_obs)
        merge_cm = (
            telemetry.tracer.span("serve.merge", queries=len(runs))
            if telemetry is not None
            and wave_obs is not None
            and wave_obs.trace is not None
            else nullcontext()
        )
        workload = (
            telemetry.workload
            if telemetry is not None and telemetry.workload is not None
            else None
        )
        results = []
        with merge_cm:
            for j, run in enumerate(runs):
                result = self._finish_run(run)
                self.index.io_stats.merge(run.io)
                if run.trace is not None:
                    result.trace = run.trace.finish(
                        termination=run.reason,
                        io=run.io,
                        candidates=run.n_cand,
                    )
                    if explain:
                        result.explain = build_explain(
                            result.trace,
                            shard_io=result.shard_io,
                            cap=int(run.cap),
                            request_id=request_id,
                            trace_id=trace_id,
                        )
                if telemetry is not None:
                    query_digest = bucket = None
                    if workload is not None:
                        # The canonical workload keys: the exact query
                        # bytes and the full round-0 base bucket as raw
                        # int64 bytes (the same identity the frontend's
                        # cache uses; bytes keep this one memcpy).
                        query_digest = hashlib.sha1(
                            run.query.tobytes()
                        ).hexdigest()
                        bucket = hashes[:, j].tobytes()
                    telemetry.record(
                        result.trace,
                        shard_io=result.shard_io,
                        request_id=request_id,
                        trace_id=trace_id,
                        query_digest=query_digest,
                        bucket=bucket,
                    )
                if self.auditor is not None:
                    self.auditor.observe(
                        run.query,
                        k=run.k,
                        p=run.p,
                        ids=result.ids,
                        distances=result.distances,
                    )
                results.append(result)
        self.queries_served += len(runs)
        return results

    # -- telemetry merge ------------------------------------------------

    def _record_repair(self, telemetry, respawned: list[int]) -> None:
        """Publish a repair event under per-shard labels."""
        reg = telemetry.registry
        respawns = reg.counter(
            "lazylsh_shard_respawns_total",
            "Shard workers respawned after a mid-wave death",
        )
        for sid in range(self.n_shards):
            # inc(0) materialises every shard's series so dashboards see
            # an explicit zero for the survivors.
            respawns.inc(
                1.0 if sid in respawned else 0.0, shard=str(sid)
            )
        reg.counter(
            "lazylsh_wave_replays_total",
            "Query waves replayed after a worker-death repair",
        ).inc()
        recorder = getattr(telemetry, "flight_recorder", None)
        if recorder is not None:
            recorder.trigger(
                "worker_respawn",
                shards=list(respawned),
                restarts=self.restarts,
                replays=self.replays,
            )

    def _merge_wave_obs(self, telemetry, wave_obs: _WaveObs) -> None:
        """Fold one successful wave's per-shard buffer into telemetry.

        Counter series are labelled ``shard="<id>"`` and every shard's
        series is materialised each wave (zero increments included), so
        a 4-shard fleet always exposes 4 labelled children.  Worker-side
        spans are rehydrated into the parent tracer tagged with their
        origin shard (span ids are scoped to the worker's own tracer —
        the ``shard`` attribute disambiguates).
        """
        reg = telemetry.registry
        rows = reg.counter(
            "lazylsh_shard_rows_scanned_total",
            "Inverted-list entries scanned, by shard",
        )
        crossings = reg.counter(
            "lazylsh_shard_crossings_total",
            "Collision-threshold crossings found, by shard",
        )
        busy = reg.counter(
            "lazylsh_shard_busy_seconds_total",
            "Worker wall-clock busy seconds, by shard",
        )
        ops = reg.counter(
            "lazylsh_shard_ops_total",
            "Pipe ops answered, by shard",
        )
        roundtrip = reg.histogram(
            "lazylsh_shard_roundtrip_seconds",
            "Pipe round-trip time (op send to reply receipt), by shard",
            buckets=_ROUNDTRIP_BUCKETS,
        )
        for sid in range(self.n_shards):
            label = str(sid)
            rows.inc(wave_obs.rows[sid], shard=label)
            crossings.inc(wave_obs.crossings[sid], shard=label)
            busy.inc(wave_obs.busy[sid], shard=label)
            ops.inc(wave_obs.ops[sid], shard=label)
            for dt in wave_obs.roundtrips[sid]:
                roundtrip.observe(dt, shard=label)
            for record in wave_obs.spans[sid]:
                span = Span.from_dict(record)
                span.attributes.setdefault("shard", sid)
                span.attributes["origin"] = "worker"
                telemetry.tracer.spans.append(span)

    def _run_wave(self, runs: list) -> None:
        c = float(self.index.config.c)
        rehashing = self.index.rehashing
        self._broadcast(
            "begin",
            [(r.qid, r.query, r.p, r.theta, r.eta) for r in runs],
        )
        while True:
            active = [r for r in runs if not r.done]
            if not active:
                break
            for r in active:
                r.rounds += 1
                if r.rounds > _MAX_ROUNDS:
                    raise ReproError(_KNN_ABORT)
                r.level = r.r_hat * r.delta
                r.c_delta = c * r.delta
                # Refresh the within-radius counter for the larger radius
                # (the engine's Lane.begin_round_radius).
                if r.outside.size:
                    newly = r.outside < r.c_delta
                    hits = int(np.count_nonzero(newly))
                    if hits:
                        r.n_within += hits
                        r.outside = r.outside[~newly]
                if r.trace is not None:
                    r.trace.begin_round(
                        level=r.level, radius=r.c_delta, io=r.io
                    )
                hq = r.query_hashes
                if rehashing == "query_centric":
                    half = int(np.floor(r.level / 2.0))
                    r.cur_los = hq - half
                    r.cur_his = hq + half
                else:
                    width = max(1, int(np.floor(r.level)))
                    base = np.floor_divide(hq, width)
                    r.cur_los = base * width
                    r.cur_his = r.cur_los + width - 1
            requests = [(r.qid, r.cur_los, r.cur_his) for r in active]
            if self._wave_obs is None:
                payload = requests
            else:
                payload = {"requests": requests, "obs": True}
                if self._wave_obs.trace is not None:
                    # W3C-style propagation over the pipe: workers open
                    # child spans under the wave's root span.
                    payload["trace"] = self._wave_obs.trace.to_dict()
            replies = self._broadcast("round", payload)
            for r in active:
                self._merge_round(r, [reply[r.qid] for reply in replies])
            for r in active:
                r.delta *= c
        self._broadcast("end", [r.qid for r in runs])

    def _merge_round(self, r: _QueryRun, parts: list) -> None:
        """Fold one round's per-shard replies into the query's state.

        Recovers the engine's stop function by replaying its promotion
        order, then charges exactly the I/O the single-process engine
        would have charged for functions up to (and including) the stop.
        """
        eta = r.eta
        gids = np.concatenate([part["gids"] for part in parts])
        funcs = np.concatenate([part["funcs"] for part in parts])
        pos = np.concatenate([part["pos"] for part in parts])
        dists = np.concatenate([part["dists"] for part in parts])
        # Engine promotion order: function-major, then full-run position
        # (left ring run positions precede right ring run positions).
        order = np.lexsort((pos, funcs))
        funcs_s = funcs[order]
        # Per-function promotion / within-radius counts -> the first
        # function where the engine's termination condition holds.
        promo = np.bincount(funcs_s, minlength=eta)
        within = np.bincount(funcs[dists < r.c_delta], minlength=eta)
        cum_cand = r.n_cand + np.cumsum(promo)
        cum_within = r.n_within + np.cumsum(within)
        stop_mask = (cum_within >= r.k) | (cum_cand > r.cap)
        if stop_mask.any():
            i_stop = int(np.argmax(stop_mask))
            reason = (
                TERMINATION_K_WITHIN
                if cum_within[i_stop] >= r.k
                else TERMINATION_CAP
            )
            kept = int(np.searchsorted(funcs_s, i_stop, side="right"))
            consumed = np.arange(eta) <= i_stop
        else:
            i_stop = None
            reason = ""
            kept = int(gids.size)
            consumed = np.ones(eta, dtype=bool)
        # Full-run scan intervals per function: positions are dense and
        # the shards partition each run, so min/max over the shards'
        # extents reconstruct the engine's intervals exactly.
        l_lo_m = np.stack([part["l_lo"] for part in parts])
        l_hi_m = np.stack([part["l_hi"] for part in parts])
        r_lo_m = np.stack([part["r_lo"] for part in parts])
        r_hi_m = np.stack([part["r_hi"] for part in parts])
        has_l = (l_lo_m >= 0).any(axis=0)
        has_r = (r_lo_m >= 0).any(axis=0)
        l_lo = np.where(l_lo_m >= 0, l_lo_m, _HULL_EMPTY_FIRST).min(axis=0)
        l_hi = l_hi_m.max(axis=0)
        r_lo = np.where(r_lo_m >= 0, r_lo_m, _HULL_EMPTY_FIRST).min(axis=0)
        r_hi = r_hi_m.max(axis=0)
        if r.trace is not None:
            len_l = np.where(has_l & consumed, l_hi - l_lo + 1, 0)
            len_r = np.where(has_r & consumed, r_hi - r_lo + 1, 0)
            r.trace.add_collisions(int((len_l + len_r).sum()))
        # Sequential I/O: the engine's per-function page-hull charge over
        # the consumed functions' left/right page runs.
        epp = self._epp
        mask_l = has_l & consumed
        mask_r = has_r & consumed
        first_l = np.where(mask_l, l_lo // epp, 0)
        stop_l = np.where(mask_l, l_hi // epp + 1, first_l)
        first_r = np.where(mask_r, r_lo // epp, 0)
        stop_r = np.where(mask_r, r_hi // epp + 1, first_r)
        new = charge_ring_hulls(
            first_l, stop_l, mask_l, first_r, stop_r, mask_r,
            r.seen_first, r.seen_stop,
        )
        seq = int(new.sum())
        if seq:
            r.io.add_sequential(seq)
        # Random I/O + promotion of the kept crossings.
        if kept:
            kept_ids = gids[order[:kept]]
            kept_dists = dists[order[:kept]]
            r.io.add_random(kept)
            owner = self._owner_of(kept_ids)
            r.shard_random += np.bincount(owner, minlength=self.n_shards)
            if r.trace is not None:
                r.trace.add_crossings(kept)
            r.id_chunks.append(kept_ids)
            r.dist_chunks.append(kept_dists)
            r.n_cand += kept
            inside = kept_dists < r.c_delta
            r.n_within += int(np.count_nonzero(inside))
            if not inside.all():
                r.outside = np.concatenate([r.outside, kept_dists[~inside]])
        if r.trace is not None:
            r.trace.end_round(
                io=r.io, candidates=r.n_cand, within=r.n_within
            )
        if i_stop is not None:
            r.done = True
            r.reason = reason

    def _finish_run(self, r: _QueryRun) -> SearchResult:
        if r.id_chunks:
            cand_ids = np.concatenate(r.id_chunks)
            cand_dists = np.concatenate(r.dist_chunks)
        else:  # pragma: no cover - cap 0-candidate degenerate case
            cand_ids = np.empty(0, dtype=np.int64)
            cand_dists = np.empty(0, dtype=np.float64)
        order = np.argsort(cand_dists)[: r.k]
        return SearchResult(
            ids=cand_ids[order].astype(np.int64),
            distances=cand_dists[order],
            p=r.p,
            k=r.k,
            io=r.io,
            candidates=int(cand_ids.size),
            rounds=r.rounds,
            termination=r.reason,
            shard_io=[
                IOStats(random=int(x)) for x in r.shard_random
            ],
        )


def default_shards() -> int:
    """A sensible shard count for this host: its CPU count, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def timed(fn, *args, **kwargs):
    """Run ``fn`` and return ``(result, wall_seconds)`` (bench helper)."""
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0
