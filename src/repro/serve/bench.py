"""Benchmark harness for the sharded query service (honest numbers).

Measures, for a sweep of shard counts, the wall-clock batch latency of
:class:`~repro.serve.ShardedSearchService` against the single-process
flat engine, verifies bit-identity of the merged results, and reports a
*load-balance model* of the attainable parallel speedup:

* ``busy_seconds`` — each worker's cumulative in-op wall time;
* ``critical_path_seconds`` — the slowest worker (a perfectly parallel
  run cannot finish faster than this);
* ``modeled_speedup`` — total shard work divided by the critical path,
  i.e. the speedup an adequately provisioned host (>= one core per
  worker) would see from sharding the scan, ignoring coordinator
  overhead;
* ``parallel_efficiency`` — ``modeled_speedup / n_shards`` (1.0 means
  perfectly balanced shards).

Wall-clock speedup additionally requires real cores: on a host with
``cpu_count < n_shards`` the workers time-slice one CPU and wall time
cannot improve, which is why the report always records ``cpu_count``
and keeps the measured and modeled numbers separate — measured wall
time is never extrapolated.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.batch import knn_batch
from repro.core.config import LazyLSHConfig
from repro.core.lazylsh import LazyLSH
from repro.serve.service import ShardedSearchService


def _results_match(single, sharded) -> dict:
    """Field-by-field bit-identity comparison of two result lists."""
    checks = {
        "ids": True,
        "distances": True,
        "io_sequential": True,
        "io_random": True,
        "termination": True,
        "rounds": True,
        "candidates": True,
        "shard_io_sums": True,
    }
    for a, b in zip(single, sharded):
        checks["ids"] &= bool(np.array_equal(a.ids, b.ids))
        checks["distances"] &= bool(np.array_equal(a.distances, b.distances))
        checks["io_sequential"] &= a.io.sequential == b.io.sequential
        checks["io_random"] &= a.io.random == b.io.random
        checks["termination"] &= a.termination == b.termination
        checks["rounds"] &= a.rounds == b.rounds
        checks["candidates"] &= a.candidates == b.candidates
        checks["shard_io_sums"] &= (
            sum(s.random for s in b.shard_io) == b.io.random
        )
    checks["all"] = all(checks.values())
    return checks


def _measure_telemetry_overhead(
    index,
    queries: np.ndarray,
    k: int,
    p: float,
    *,
    n_shards: int,
    start_method: str | None,
    repeats: int = 5,
    intelligence: bool = False,
) -> dict:
    """Exporter-off vs exporter-on cost over the same worker fleet.

    One service answers the same wave with the ops plane off and with
    it on (telemetry + slow-query log + a live scraped exporter),
    *interleaved* off/on so host drift hits both sides equally, and
    using one fleet for both sides removes worker start-up variance
    from the comparison.  The headline ``overhead_fraction`` compares
    *CPU seconds* per wave — the coordinator's ``process_time`` delta
    (which includes exporter and profiler threads) plus every worker's
    in-op ``process_time`` delta — summed over all repeats.  CPU time
    counts the work the ops plane actually adds while staying immune
    to scheduler preemption, which on a busy single-core host perturbs
    wall-clock waves by tens of percent and would drown a ~1%
    marginal.  CPU seconds still drift with effective CPU speed
    (frequency scaling, cache pollution from a noisy neighbour), so
    each repeat also runs a bare *placebo* wave: ``placebo_fraction``
    is the off-vs-off "overhead" the estimator reports for two
    identical workloads, i.e. the host's current noise floor.  Gates
    should treat an overhead reading as unresolvable when the placebo
    exceeds their threshold — on a quiet host the placebo sits near
    zero and the gate keeps its teeth.  The fastest off/on wall-clock
    waves are still reported alongside for context.

    ``intelligence=True`` additionally arms the workload-intelligence
    plane on the "on" side: workload sketches fed per query, EXPLAIN
    built for every result, and the continuous sampling profiler
    running throughout each timed "on" wave (started/stopped outside
    the timed window so thread spawn transients don't pollute the
    steady-state number).
    """
    import urllib.request

    from repro.obs import ObsExporter, SlowQueryLog, Telemetry

    slowlog = SlowQueryLog(capacity=32)
    telemetry = Telemetry(capture_traces=False, slowlog=slowlog)
    profiler = None
    if intelligence:
        from repro.obs import ContinuousProfiler, WorkloadAnalytics

        telemetry.workload = WorkloadAnalytics(registry=telemetry.registry)
        profiler = ContinuousProfiler(registry=telemetry.registry)
    with ShardedSearchService(
        index, n_shards=n_shards, start_method=start_method
    ) as service:
        exporter = ObsExporter(
            telemetry.registry,
            health=service.health,
            slowlog=slowlog,
            profiler=profiler,
        ).start()
        try:
            service.search_batch(queries, k, p=p)  # warm (full wave)

            def wave_cpu(run) -> float:
                """CPU seconds for one wave: coordinator + all workers."""
                workers0 = sum(service.cpu_seconds)
                parent0 = time.process_time()
                run()
                parent = time.process_time() - parent0
                return parent + sum(service.cpu_seconds) - workers0

            off_times = []
            on_times = []
            off_cpu = on_cpu = placebo_cpu = 0.0
            for _ in range(repeats):
                t0 = time.perf_counter()
                off_cpu += wave_cpu(
                    lambda: service.search_batch(queries, k, p=p)
                )
                off_times.append(time.perf_counter() - t0)
                # Placebo wave: a second bare wave right after the
                # baseline one.  Its CPU should match the baseline's,
                # so the off->placebo "overhead" measures how much this
                # estimator is perturbed by the host right now.
                placebo_cpu += wave_cpu(
                    lambda: service.search_batch(queries, k, p=p)
                )
                if profiler is not None:
                    profiler.start()
                t0 = time.perf_counter()
                on_cpu += wave_cpu(
                    lambda: service.search_batch(
                        queries, k, p=p, telemetry=telemetry,
                        explain=intelligence,
                    )
                )
                on_times.append(time.perf_counter() - t0)
                if profiler is not None:
                    profiler.stop()
            with urllib.request.urlopen(
                exporter.url + "/metrics", timeout=5
            ) as fh:
                scrape_ok = fh.status == 200 and b"lazylsh" in fh.read()
        finally:
            if profiler is not None:
                profiler.stop()
            exporter.stop()
    return {
        "n_shards": n_shards,
        "repeats": repeats,
        "intelligence": bool(intelligence),
        "exporter_off_seconds": min(off_times),
        "exporter_on_seconds": min(on_times),
        "off_cpu_seconds": off_cpu,
        "on_cpu_seconds": on_cpu,
        "placebo_cpu_seconds": placebo_cpu,
        "overhead_fraction": (on_cpu - off_cpu) / off_cpu if off_cpu else None,
        "placebo_fraction": (
            (placebo_cpu - off_cpu) / off_cpu if off_cpu else None
        ),
        "scrape_ok": bool(scrape_ok),
        "note": (
            "CPU seconds (coordinator process time + worker in-op "
            "process time) summed over interleaved identical waves, "
            "off vs on, over one worker fleet, with a bare placebo "
            "wave per repeat calibrating the host's noise floor; 'on' "
            "runs full per-shard telemetry, slow-query capture and a "
            "live /metrics exporter"
            + (
                ", plus workload sketches, per-result EXPLAIN and the "
                "continuous sampling profiler"
                if intelligence
                else ""
            )
        ),
    }


def run_serve_benchmark(
    *,
    n: int = 4000,
    d: int = 16,
    n_queries: int = 24,
    k: int = 10,
    p: float = 0.75,
    shard_counts: tuple = (1, 2, 4),
    seed: int = 7,
    start_method: str | None = None,
) -> dict:
    """Run the serve benchmark; returns a JSON-serialisable report."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, d))
    queries = rng.normal(size=(n_queries, d))
    cfg = LazyLSHConfig(
        c=3.0, p_min=0.5, seed=seed, mc_samples=50_000, mc_buckets=150
    )
    index = LazyLSH(cfg).build(data)

    t0 = time.perf_counter()
    baseline = knn_batch(index, queries, k, p=p)
    single_seconds = time.perf_counter() - t0
    single = baseline.results

    configs = []
    for n_shards in shard_counts:
        with ShardedSearchService(
            index, n_shards=n_shards, start_method=start_method
        ) as service:
            # Warm wave: absorbs worker start-up/page-in effects so the
            # measured wave reflects steady-state serving.
            service.search_batch(queries[:1], k, p=p)
            busy_before = list(service.busy_seconds)
            t0 = time.perf_counter()
            results = service.search_batch(queries, k, p=p)
            wall = time.perf_counter() - t0
            busy = [
                after - before
                for after, before in zip(service.busy_seconds, busy_before)
            ]
            stats = service.stats()
        total_work = float(sum(busy))
        critical_path = float(max(busy)) if busy else 0.0
        configs.append(
            {
                "n_shards": int(stats["n_shards"]),
                "wall_seconds": wall,
                "queries_per_second": n_queries / wall if wall else None,
                "wall_speedup_vs_single": single_seconds / wall
                if wall
                else None,
                "busy_seconds_per_shard": busy,
                "total_work_seconds": total_work,
                "critical_path_seconds": critical_path,
                "modeled_speedup": total_work / critical_path
                if critical_path
                else None,
                "parallel_efficiency": (
                    total_work / critical_path / stats["n_shards"]
                    if critical_path
                    else None
                ),
                "shard_points": stats["shard_points"],
                "restarts": stats["restarts"],
                "identity": _results_match(single, results),
            }
        )

    overhead = _measure_telemetry_overhead(
        index,
        queries,
        k,
        p,
        n_shards=max(shard_counts),
        start_method=start_method,
    )

    return {
        "bench": "serve",
        "workload": {
            "n": n,
            "d": d,
            "n_queries": n_queries,
            "k": k,
            "p": p,
            "seed": seed,
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "start_method": start_method or "default",
        },
        "single_process": {
            "wall_seconds": single_seconds,
            "queries_per_second": n_queries / single_seconds
            if single_seconds
            else None,
            "io_total": baseline.io.to_dict(),
        },
        "sharded": configs,
        "telemetry_overhead": overhead,
        "note": (
            "Results and simulated I/O are verified bit-identical to the "
            "single-process flat engine. modeled_speedup is the "
            "load-balance bound total_work / critical_path over per-shard "
            "busy time; realising it as wall-clock speedup requires at "
            "least n_shards physical cores (see host.cpu_count). Measured "
            "wall times are reported as-is and never extrapolated."
        ),
    }
