"""Exact kNN ground truth under arbitrary ``lp`` metrics.

Used by the overall-ratio metric (Sec. 5.2) and by every benchmark that
reports accuracy.  Distances are computed in query chunks so large
datasets never materialise an ``(n, nq, d)`` tensor.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.metrics.lp import lp_distance, validate_p


def exact_knn(
    data: np.ndarray, queries: np.ndarray, k: int, p: float
) -> tuple[np.ndarray, np.ndarray]:
    """Exact ``k`` nearest neighbours of each query row under ``lp``.

    Returns ``(ids, dists)`` of shape ``(nq, k)`` each, sorted by
    ascending distance per query.
    """
    data = np.asarray(data, dtype=np.float64)
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    p = validate_p(p)
    if data.ndim != 2:
        raise DatasetError(f"data must be 2-D, got shape {data.shape}")
    n = data.shape[0]
    if not 1 <= k <= n:
        raise DatasetError(
            f"k must lie in [1, {n}] for a dataset of {n} points, got {k}"
        )
    nq = queries.shape[0]
    ids = np.empty((nq, k), dtype=np.int64)
    dists = np.empty((nq, k), dtype=np.float64)
    for qi in range(nq):
        all_dists = lp_distance(data, queries[qi], p)
        if k < n:
            part = np.argpartition(all_dists, k - 1)[:k]
        else:
            part = np.arange(n)
        order = part[np.argsort(all_dists[part], kind="stable")]
        ids[qi] = order
        dists[qi] = all_dists[order]
    return ids, dists


def exact_knn_multi(
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    p_values: list[float] | tuple[float, ...],
) -> dict[float, tuple[np.ndarray, np.ndarray]]:
    """Ground truth for several metrics at once; keyed by ``p``."""
    if not p_values:
        raise DatasetError("p_values must be non-empty")
    return {
        float(p): exact_knn(data, queries, k, float(p)) for p in p_values
    }
