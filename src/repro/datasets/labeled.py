"""Labelled stand-ins for the nine Table-1 classification datasets.

Table 1 runs a 1NN classifier under different ``lp`` metrics on Mnist, Sun
and seven UCI datasets.  Its two findings are (a) the approximate 1NN of
LazyLSH classifies about as well as the exact 1NN, and (b) *which* ``p``
classifies best varies by dataset.  To reproduce those findings offline,
each stand-in is a seeded mixture of per-class anisotropic Gaussian
clusters whose geometry (dimensionality, class count, cluster separation
and per-dataset covariance quirks) mirrors the original:

* every class gets 1-3 sub-clusters (real classes are multi-modal),
* per-dimension scales differ per dataset (drawn from the dataset's own
  seed), which is what makes different ``lp`` metrics win on different
  datasets,
* class separations are tuned so that the harder originals (SVS at ~68%,
  Sun at ~10%) stay hard and the easy ones (Gisette, Mnist at ~96%) stay
  easy.

Gisette's 5000 dimensions and the full Mnist/Sun cardinalities are scaled
down (recorded in ``paper_shape``); Table 1's qualitative claims survive
because they are comparisons *within* a dataset, not across scales.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import SeedLike, as_rng
from repro.errors import DatasetError


@dataclass(frozen=True)
class _LabeledSpec:
    name: str
    d: int
    n: int
    n_classes: int
    separation: float
    paper_shape: tuple[int, int]
    value_range: tuple[int, int] = (0, 1000)
    subclusters: int = 2


_SPECS: dict[str, _LabeledSpec] = {
    # name: d, scaled n, classes, separation (bigger = easier), paper (n, d).
    # Separations were calibrated so the exact-l1-1NN accuracy lands near
    # the "Real 1NN" column of Table 1 (see EXPERIMENTS.md).
    "ionosphere": _LabeledSpec("ionosphere", 34, 351, 2, 1.08, (351, 34)),
    "musk": _LabeledSpec("musk", 166, 476, 2, 1.17, (476, 166)),
    "bcw": _LabeledSpec("bcw", 30, 569, 2, 1.54, (569, 30)),
    "svs": _LabeledSpec("svs", 18, 846, 4, 1.22, (846, 18)),
    "segmentation": _LabeledSpec("segmentation", 19, 1200, 7, 2.66, (2310, 19)),
    "gisette": _LabeledSpec("gisette", 400, 1400, 2, 1.17, (7000, 5000)),
    "sls": _LabeledSpec("sls", 36, 1500, 6, 1.12, (6435, 36)),
    "sun": _LabeledSpec("sun", 256, 1500, 100, 0.80, (108_703, 512)),
    "mnist": _LabeledSpec("mnist", 196, 1500, 10, 1.73, (60_000, 784), subclusters=3),
}

#: Names accepted by :func:`make_labeled_dataset` (Table 1 row order).
LABELED_DATASET_NAMES = (
    "ionosphere",
    "musk",
    "bcw",
    "svs",
    "segmentation",
    "gisette",
    "sls",
    "sun",
    "mnist",
)


@dataclass
class LabeledDataset:
    """A labelled dataset plus its provenance metadata."""

    name: str
    points: np.ndarray
    labels: np.ndarray
    paper_shape: tuple[int, int]

    @property
    def n(self) -> int:
        """Number of points."""
        return self.points.shape[0]

    @property
    def d(self) -> int:
        """Dimensionality."""
        return self.points.shape[1]

    @property
    def n_classes(self) -> int:
        """Number of distinct class labels."""
        return int(np.unique(self.labels).size)

    def split(
        self, n_test: int, seed: SeedLike = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Random train/test split; returns ``(X_tr, y_tr, X_te, y_te)``."""
        if not 1 <= n_test < self.n:
            raise DatasetError(
                f"n_test must lie in [1, {self.n - 1}], got {n_test}"
            )
        rng = as_rng(seed)
        order = rng.permutation(self.n)
        test = order[:n_test]
        train = order[n_test:]
        return (
            self.points[train],
            self.labels[train],
            self.points[test],
            self.labels[test],
        )


def make_labeled_dataset(name: str, seed: SeedLike = 7) -> LabeledDataset:
    """Generate the labelled stand-in for Table-1 dataset ``name``."""
    spec = _SPECS.get(name.lower())
    if spec is None:
        raise DatasetError(
            f"unknown labeled dataset {name!r}; choose from "
            f"{LABELED_DATASET_NAMES}"
        )
    rng = as_rng(seed)
    lo, hi = spec.value_range
    span = float(hi - lo)
    d = spec.d
    # Per-dataset anisotropy: some dimensions are near-noise, some are
    # highly discriminative.  This is the knob that makes the optimal lp
    # metric dataset-dependent.
    dim_scales = rng.lognormal(mean=0.0, sigma=0.8, size=d)
    dim_scales /= dim_scales.mean()
    # All classes live on ONE shared low-dimensional manifold (a common
    # random basis), with class sub-cluster centres placed inside it —
    # like image classes sharing the natural-image manifold.  Class
    # difficulty is controlled by the latent-space separation, while the
    # low intrinsic dimensionality keeps neighbourhoods coherent beyond
    # the first nearest neighbour, so a c-approximate 1NN usually lands
    # in the right class — the margin structure Table 1's approximate
    # classifiers rely on.
    latent_dim = max(3, min(10, d // 4))
    basis = rng.standard_normal((latent_dim, d)) / np.sqrt(latent_dim)
    points_list: list[np.ndarray] = []
    labels_list: list[np.ndarray] = []
    per_class = spec.n // spec.n_classes
    remainder = spec.n - per_class * spec.n_classes
    for cls in range(spec.n_classes):
        n_cls = per_class + (1 if cls < remainder else 0)
        n_sub = int(rng.integers(1, spec.subclusters + 1))
        sub_sizes = np.full(n_sub, n_cls // n_sub)
        sub_sizes[: n_cls - sub_sizes.sum()] += 1
        for size in sub_sizes:
            if size == 0:
                continue
            latent_centre = rng.standard_normal(latent_dim) * spec.separation
            latent = latent_centre + rng.standard_normal((size, latent_dim))
            ambient = rng.standard_normal((size, d)) * 0.05
            cluster = (latent @ basis + ambient) * dim_scales
            points_list.append(cluster)
            labels_list.append(np.full(size, cls, dtype=np.int64))
    points = np.vstack(points_list)
    labels = np.concatenate(labels_list)
    # Shuffle so class blocks are interleaved.
    order = rng.permutation(points.shape[0])
    points = points[order]
    labels = labels[order]
    # Normalise into the integer value range the hash banks expect.
    points -= points.min()
    peak = points.max()
    if peak > 0:
        points = points / peak
    points = np.round(lo + points * span).astype(np.float64)
    return LabeledDataset(
        name=spec.name,
        points=points,
        labels=labels,
        paper_shape=spec.paper_shape,
    )
