"""Simulated stand-ins for the paper's four real feature datasets.

The paper evaluates on SIFT features (Inria holidays), GIST features (SUN,
LabelMe) and raw pixels (Mnist).  Those corpora are multi-gigabyte
downloads unavailable offline, so each generator below produces a seeded
dataset with the *same dimensionality and value range* (Table 4) and a
clustered, anisotropic structure qualitatively similar to image features:

* points are drawn from a mixture of clusters whose centres are themselves
  correlated (a low-rank linear map of latent factors), giving the
  manifold-like correlation structure real descriptors have;
* Mnist-like data additionally zeroes most coordinates (handwritten-digit
  images are ~80% background).

Cardinalities default to laptop-scale values; every benchmark records the
scale it ran at.  All relative comparisons in the paper's experiments
(LazyLSH vs C2LSH vs SRS, trends across ``p``, ``k``, ``c``) are between
methods reading the *same* data, so the stand-ins preserve the shapes of
the reported results (DESIGN.md, section 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import SeedLike, as_rng
from repro.errors import DatasetError


@dataclass(frozen=True)
class DatasetSpec:
    """Shape metadata of one simulated real dataset (cf. Table 4)."""

    name: str
    d: int
    value_range: tuple[int, int]
    default_n: int
    n_clusters: int
    cluster_std_frac: float
    sparsity: float = 0.0
    paper_n: int = 0


_SPECS: dict[str, DatasetSpec] = {
    "inria": DatasetSpec(
        name="inria",
        d=128,
        value_range=(0, 255),
        default_n=20_000,
        n_clusters=60,
        cluster_std_frac=0.08,
        paper_n=4_455_041,
    ),
    "sun": DatasetSpec(
        name="sun",
        d=512,
        value_range=(0, 10_000),
        default_n=8_000,
        n_clusters=40,
        cluster_std_frac=0.06,
        paper_n=108_703,
    ),
    "labelme": DatasetSpec(
        name="labelme",
        d=512,
        value_range=(0, 10_000),
        default_n=10_000,
        n_clusters=50,
        cluster_std_frac=0.07,
        paper_n=207_859,
    ),
    "mnist": DatasetSpec(
        name="mnist",
        d=784,
        value_range=(0, 255),
        default_n=6_000,
        n_clusters=10,
        cluster_std_frac=0.12,
        sparsity=0.75,
        paper_n=60_000,
    ),
}

#: Names accepted by :func:`load_simulated`.
SIMULATED_DATASET_NAMES = tuple(sorted(_SPECS))


def _clustered_points(
    spec: DatasetSpec, n: int, rng: np.random.Generator
) -> np.ndarray:
    lo, hi = spec.value_range
    span = float(hi - lo)
    # Correlated cluster centres: a low-rank map of latent factors keeps
    # the centres on a manifold rather than uniformly filling the cube.
    latent_dim = max(4, spec.d // 16)
    factors = rng.standard_normal((spec.n_clusters, latent_dim))
    mixing = rng.standard_normal((latent_dim, spec.d))
    centres = factors @ mixing
    centres -= centres.min()
    peak = centres.max()
    if peak > 0:
        centres = centres / peak
    centres = lo + centres * span
    # Anisotropic within-cluster noise: per-dimension std varies.
    base_std = spec.cluster_std_frac * span
    dim_scales = rng.uniform(0.3, 1.7, spec.d)
    assignments = rng.integers(0, spec.n_clusters, n)
    noise = rng.standard_normal((n, spec.d)) * (base_std * dim_scales)
    points = centres[assignments] + noise
    if spec.sparsity > 0.0:
        # Per-cluster support mask: the same coordinates are background for
        # all points of a cluster, like digit images of one class.
        support = rng.uniform(size=(spec.n_clusters, spec.d)) >= spec.sparsity
        points = points * support[assignments]
    points = np.clip(points, lo, hi)
    return np.round(points).astype(np.float64)


def load_simulated(name: str, n: int | None = None, seed: SeedLike = 7) -> np.ndarray:
    """Generate the simulated stand-in for dataset ``name``.

    Parameters
    ----------
    name:
        One of :data:`SIMULATED_DATASET_NAMES`.
    n:
        Cardinality override (defaults to the spec's laptop-scale size).
    seed:
        Seed for reproducibility; the same ``(name, n, seed)`` always
        yields the same dataset.
    """
    spec = _SPECS.get(name.lower())
    if spec is None:
        raise DatasetError(
            f"unknown simulated dataset {name!r}; choose from "
            f"{SIMULATED_DATASET_NAMES}"
        )
    n = spec.default_n if n is None else int(n)
    if n < 1:
        raise DatasetError(f"cardinality must be >= 1, got {n}")
    rng = as_rng(seed)
    return _clustered_points(spec, n, rng)


def dataset_spec(name: str) -> DatasetSpec:
    """Spec (dimensionality, value range, paper cardinality) of ``name``."""
    spec = _SPECS.get(name.lower())
    if spec is None:
        raise DatasetError(
            f"unknown simulated dataset {name!r}; choose from "
            f"{SIMULATED_DATASET_NAMES}"
        )
    return spec


def inria_like(n: int | None = None, seed: SeedLike = 7) -> np.ndarray:
    """Inria-holidays-like SIFT features: d=128, values in [0, 255]."""
    return load_simulated("inria", n, seed)


def sun_like(n: int | None = None, seed: SeedLike = 7) -> np.ndarray:
    """SUN-like GIST features: d=512, values in [0, 10000]."""
    return load_simulated("sun", n, seed)


def labelme_like(n: int | None = None, seed: SeedLike = 7) -> np.ndarray:
    """LabelMe-like GIST features: d=512, values in [0, 10000]."""
    return load_simulated("labelme", n, seed)


def mnist_like(n: int | None = None, seed: SeedLike = 7) -> np.ndarray:
    """Mnist-like digit images: d=784, values in [0, 255], mostly zeros."""
    return load_simulated("mnist", n, seed)
