"""Dataset substrate: synthetic workloads (Table 3), simulated stand-ins
for the paper's four real feature datasets (Table 4), labelled stand-ins
for the nine Table-1 classification datasets, query sampling and exact
ground truth.

See DESIGN.md section 3 for the substitution rationale: the original
datasets (SIFT/GIST features, UCI tables) are not shipped here, so seeded
generators with matching dimensionality, value ranges and clustered
structure exercise the same code paths at a laptop-friendly scale.
"""

from repro.datasets.ground_truth import exact_knn, exact_knn_multi
from repro.datasets.labeled import (
    LABELED_DATASET_NAMES,
    LabeledDataset,
    make_labeled_dataset,
)
from repro.datasets.queries import QuerySplit, sample_queries
from repro.datasets.simulated import (
    SIMULATED_DATASET_NAMES,
    DatasetSpec,
    inria_like,
    labelme_like,
    load_simulated,
    mnist_like,
    sun_like,
)
from repro.datasets.synthetic import make_synthetic

__all__ = [
    "DatasetSpec",
    "LABELED_DATASET_NAMES",
    "LabeledDataset",
    "QuerySplit",
    "SIMULATED_DATASET_NAMES",
    "exact_knn",
    "exact_knn_multi",
    "inria_like",
    "labelme_like",
    "load_simulated",
    "make_labeled_dataset",
    "make_synthetic",
    "mnist_like",
    "sample_queries",
    "sun_like",
]
