"""Synthetic uniform-integer datasets (the paper's Table 3 workload).

"The value of each dimension is an integer randomly chosen from
[0, 10000]." — Appendix B.1.  The paper sweeps cardinality
{100k, ..., 1.6m} and dimensionality {100, ..., 1600}; the benchmarks here
use the same sweep shapes at reduced cardinality (documented per bench).
"""

from __future__ import annotations

import numpy as np

from repro._typing import SeedLike, as_rng
from repro.errors import DatasetError


def make_synthetic(
    n: int,
    d: int,
    *,
    value_range: tuple[int, int] = (0, 10000),
    seed: SeedLike = None,
) -> np.ndarray:
    """Generate ``n`` points of ``d`` uniform integer coordinates.

    Returned as float64 (the library's working dtype) with exactly integer
    values inside ``value_range`` (inclusive bounds).
    """
    if n < 1:
        raise DatasetError(f"cardinality must be >= 1, got {n}")
    if d < 1:
        raise DatasetError(f"dimensionality must be >= 1, got {d}")
    lo, hi = value_range
    if hi < lo:
        raise DatasetError(f"invalid value range [{lo}, {hi}]")
    rng = as_rng(seed)
    return rng.integers(lo, hi + 1, size=(n, d)).astype(np.float64)
