"""Query-set sampling, following Appendix B.1.

The paper "randomly select[s] 50 feature points as our query set and
remove[s] those features from the dataset during the query processing to
avoid returning the same feature."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import SeedLike, as_rng
from repro.errors import DatasetError


@dataclass
class QuerySplit:
    """A dataset split into indexable points and held-out queries."""

    data: np.ndarray
    queries: np.ndarray
    query_indices: np.ndarray

    @property
    def num_queries(self) -> int:
        """How many query points were held out."""
        return self.queries.shape[0]


def sample_queries(
    points: np.ndarray,
    n_queries: int = 50,
    *,
    remove: bool = True,
    seed: SeedLike = None,
) -> QuerySplit:
    """Randomly hold out ``n_queries`` points as the query set.

    Parameters
    ----------
    points:
        The full ``(n, d)`` dataset.
    n_queries:
        How many queries to sample (the paper uses 50).
    remove:
        Whether to drop the queries from the returned data (the paper
        does, so a query never returns itself).
    seed:
        Seed for reproducibility.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise DatasetError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= n_queries < n:
        raise DatasetError(
            f"n_queries must lie in [1, {n - 1}] for {n} points, got {n_queries}"
        )
    rng = as_rng(seed)
    indices = rng.choice(n, size=n_queries, replace=False)
    queries = points[indices]
    if remove:
        mask = np.ones(n, dtype=bool)
        mask[indices] = False
        data = points[mask]
    else:
        data = points
    return QuerySplit(data=data, queries=queries, query_indices=indices)
