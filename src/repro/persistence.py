"""Saving and loading built LazyLSH indexes.

An index is fully determined by its configuration, the indexed data and
the materialised hash bank (projection vectors + offsets).  ``save_index``
stores exactly those in one compressed ``.npz``; ``load_index`` restores
the bank verbatim (no re-drawing — the stored random projections are the
index) and rebuilds the inverted lists deterministically by re-hashing
the data, which is cheaper to store than the sorted runs themselves.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import LazyLSHConfig
from repro.core.hashing import StableHashBank
from repro.core.lazylsh import LazyLSH
from repro.core.params import ParameterEngine
from repro.errors import IndexNotBuiltError, InvalidParameterError, ReproError
from repro.storage.inverted_index import InvertedListStore
from repro.storage.pages import PageLayout

#: Bumped when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


class IndexFormatError(ReproError):
    """The file is not a LazyLSH index or uses an incompatible format."""


def save_index(index: LazyLSH, path: str | Path) -> Path:
    """Serialise a built index to ``path`` (``.npz`` appended if absent).

    Returns the path actually written.
    """
    if not index.is_built:
        raise IndexNotBuiltError("cannot save an index that was never built")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    bank = index._bank
    assert bank is not None
    header = {
        "format_version": FORMAT_VERSION,
        "library": "repro-lazylsh",
        "config": asdict(index.config),
        "rehashing": index.rehashing,
        "eta": index.eta,
        "beta": index.beta,
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        data=index.data,
        alive=index._alive,
        projections=bank._projections,
        offsets=bank._offsets,
    )
    return path


def load_index(path: str | Path) -> LazyLSH:
    """Restore an index saved by :func:`save_index`.

    The restored index answers queries identically to the original: the
    hash bank's random projections are loaded, not re-drawn.
    """
    path = Path(path)
    if not path.exists():
        raise InvalidParameterError(f"no such index file: {path}")
    with np.load(path, allow_pickle=False) as archive:
        try:
            header_bytes = archive["header"].tobytes()
            data = archive["data"]
            alive = archive["alive"]
            projections = archive["projections"]
            offsets = archive["offsets"]
        except KeyError as exc:
            raise IndexFormatError(
                f"{path} is missing field {exc}; not a LazyLSH index file"
            ) from exc
        header = json.loads(header_bytes.decode("utf-8"))
    if header.get("library") != "repro-lazylsh":
        raise IndexFormatError(f"{path} was not written by save_index")
    if header.get("format_version") != FORMAT_VERSION:
        raise IndexFormatError(
            f"{path} uses format version {header.get('format_version')}; "
            f"this library reads version {FORMAT_VERSION}"
        )
    config = LazyLSHConfig(**header["config"])
    index = LazyLSH(config, rehashing=header["rehashing"])
    n, d = data.shape
    eta = int(header["eta"])
    if projections.shape != (d, eta) or offsets.shape != (eta,):
        raise IndexFormatError(
            f"{path} has inconsistent bank shapes "
            f"{projections.shape}/{offsets.shape} for d={d}, eta={eta}"
        )
    # Reconstruct the internals without re-drawing randomness.
    index._beta = float(header["beta"])
    index._engine = ParameterEngine(
        d,
        c=config.c,
        epsilon=config.epsilon,
        beta=index._beta,
        r0=config.r0,
        base_p=config.base_p,
        mc_samples=config.mc_samples,
        mc_buckets=config.mc_buckets,
        seed=config.seed,
    )
    index._eta = eta
    bank = StableHashBank.__new__(StableHashBank)
    bank.d = d
    bank.eta = eta
    bank.r0 = config.r0
    bank.c = config.c
    bank.base_p = config.base_p
    bank._projections = projections
    bank._offsets = offsets
    bank.offset_upper = float(offsets.max()) if eta else 0.0
    index._bank = bank
    layout = PageLayout(page_size=config.page_size, entry_size=config.entry_size)
    index._store = InvertedListStore(bank.hash_points(data), layout)
    index._data = np.ascontiguousarray(data)
    index._alive = alive.astype(bool)
    return index
