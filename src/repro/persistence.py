"""Saving and loading built LazyLSH indexes.

An index is fully determined by its configuration, the indexed data and
the materialised hash bank (projection vectors + offsets).  Two on-disk
representations exist:

* the ``.npz`` formats (v1/v2) store exactly those inputs and rebuild the
  inverted lists deterministically by re-hashing the data on load — small
  files, linear-time open;
* the binary v3 format additionally materialises the *sorted runs and
  search keys* into page-aligned sections behind a fixed superblock, so
  :func:`load_index` can memory-map the file and answer queries without
  re-hashing — O(1) open, and the OS page cache becomes the buffer pool.

Format history
--------------

* **version 1** — header (config, rehashing, eta, beta) + ``data``,
  ``alive``, ``projections``, ``offsets``.
* **version 2** — adds durability metadata to the header: ``wal_lsn``
  (the write-ahead-log sequence number the snapshot covers), ``wal_epoch``
  (the serving fleet's update-epoch counter at checkpoint time) and
  ``live_count`` (non-tombstoned rows, cross-checked against ``alive``
  on load).  The array payload is unchanged, so version-1 files still
  load — their WAL fields default to zero.
* **version 3** — raw binary layout (no zip container): a 48-byte
  superblock (magic ``LZLSHIX3``, version, section count, wal_lsn/epoch,
  JSON header locator), a section table, the JSON header, then the
  arrays as 4096-byte-aligned sections — ``data``, ``alive``,
  ``projections``, ``offsets`` plus the store's sorted runs (``values``,
  ``ids``) and search-acceleration shadows (``ids32``, ``rel32``,
  ``row_top``).  Migration: ``save_index(load_index(old), new,
  format_version=3)`` upgrades any v1/v2 file; v3 files load through
  either the eager or the mmap backend, v1/v2 only eagerly.

Writers are atomic (tmp file + ``os.replace``), so a reader never
observes a partially written index.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core.config import LazyLSHConfig
from repro.core.hashing import StableHashBank
from repro.core.lazylsh import LazyLSH
from repro.core.params import ParameterEngine
from repro.errors import IndexNotBuiltError, InvalidParameterError, ReproError
from repro.storage.backend import EagerBackend, MmapBackend, SearchState
from repro.storage.inverted_index import _TOP_STRIDE, InvertedListStore
from repro.storage.pages import PageLayout

#: Bumped when the *default* on-disk layout changes incompatibly.
FORMAT_VERSION = 2

#: The mmap-able binary layout (opt-in via ``format_version=3``).
MMAP_FORMAT_VERSION = 3

#: Versions :func:`load_index` knows how to read.
SUPPORTED_FORMAT_VERSIONS = frozenset({1, 2, 3})

#: v3 superblock: magic, version, section count, wal_lsn, wal_epoch,
#: JSON header offset, JSON header length.
_V3_MAGIC = b"LZLSHIX3"
_V3_SUPERBLOCK = struct.Struct("<8sIIQQQQ")

#: v3 section-table entry: name (NUL-padded), numpy dtype string, ndim,
#: padding, shape[0], shape[1], byte offset, byte length.
_V3_SECTION = struct.Struct("<16s8sIIQQQQ")

#: Section payloads start on 4096-byte boundaries so ``np.memmap`` views
#: are page-aligned and a run's simulated pages line up with real pages.
_V3_ALIGN = 4096


class IndexFormatError(ReproError):
    """The file is not a LazyLSH index or uses an incompatible format."""


@dataclass(frozen=True)
class _Section:
    """One parsed v3 section-table entry."""

    name: str
    dtype: np.dtype
    shape: tuple[int, ...]
    offset: int
    nbytes: int


def _check_wal_stamp(wal_lsn: int, wal_epoch: int) -> None:
    if wal_lsn < 0 or wal_epoch < 0:
        raise InvalidParameterError(
            f"wal_lsn/wal_epoch must be >= 0, got {wal_lsn}/{wal_epoch}"
        )


def _index_header(
    index: LazyLSH, *, format_version: int, wal_lsn: int, wal_epoch: int
) -> dict:
    return {
        "format_version": int(format_version),
        "library": "repro-lazylsh",
        "config": asdict(index.config),
        "rehashing": index.rehashing,
        "eta": index.eta,
        "beta": index.beta,
        "wal_lsn": int(wal_lsn),
        "wal_epoch": int(wal_epoch),
        "live_count": int(index._alive.sum()),
    }


def save_index(
    index: LazyLSH,
    path: str | Path,
    *,
    wal_lsn: int = 0,
    wal_epoch: int = 0,
    format_version: int | None = None,
    compress: bool = True,
) -> Path:
    """Serialise a built index to ``path`` (``.npz`` appended if absent).

    ``wal_lsn``/``wal_epoch`` stamp the snapshot with the write-ahead-log
    position it covers (zero for a plain manual save); recovery replays
    only records newer than ``wal_lsn``.

    ``format_version`` selects the layout: ``2`` (default) writes the
    compact ``.npz`` snapshot, ``3`` the mmap-able binary layout with the
    sorted runs materialised.  ``compress=False`` switches the v2 writer
    from ``np.savez_compressed`` to plain ``np.savez`` — WAL checkpoints
    on the hot path use it to skip zlib; v3 is never compressed (its
    sections must stay byte-addressable).  Returns the path written.
    """
    if not index.is_built:
        raise IndexNotBuiltError("cannot save an index that was never built")
    _check_wal_stamp(wal_lsn, wal_epoch)
    version = FORMAT_VERSION if format_version is None else int(format_version)
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    if version == MMAP_FORMAT_VERSION:
        return _save_v3(index, path, wal_lsn=wal_lsn, wal_epoch=wal_epoch)
    if version != FORMAT_VERSION:
        raise InvalidParameterError(
            f"save_index writes format versions {FORMAT_VERSION} and "
            f"{MMAP_FORMAT_VERSION}, got {version}"
        )
    bank = index._bank
    assert bank is not None
    header = _index_header(
        index, format_version=version, wal_lsn=wal_lsn, wal_epoch=wal_epoch
    )
    saver = np.savez_compressed if compress else np.savez
    saver(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        data=index.data,
        alive=index._alive,
        projections=bank._projections,
        offsets=bank._offsets,
    )
    return path


def _v3_sections(index: LazyLSH) -> list[tuple[str, np.ndarray]]:
    """The arrays a v3 file materialises, in on-disk order."""
    store = index._store
    bank = index._bank
    assert store is not None and bank is not None
    sections = [
        ("data", np.ascontiguousarray(index.data)),
        ("alive", np.ascontiguousarray(index._alive.astype(bool))),
        ("projections", np.ascontiguousarray(bank._projections)),
        ("offsets", np.ascontiguousarray(bank._offsets)),
        ("values", np.ascontiguousarray(store._values)),
        ("ids", np.ascontiguousarray(store._ids)),
    ]
    if store._rel32 is not None:
        ids32 = store._ids32_flat
        if ids32 is None:
            ids32 = store._ids.ravel().astype(np.int32)
        sections.extend(
            [
                ("ids32", np.ascontiguousarray(ids32)),
                ("rel32", np.ascontiguousarray(store._rel32)),
                ("row_top", np.ascontiguousarray(store._row_top)),
            ]
        )
    return sections


def _save_v3(
    index: LazyLSH, path: Path, *, wal_lsn: int, wal_epoch: int
) -> Path:
    """Write the page-aligned binary layout atomically (tmp + rename)."""
    store = index._store
    assert store is not None
    header = _index_header(
        index,
        format_version=MMAP_FORMAT_VERSION,
        wal_lsn=wal_lsn,
        wal_epoch=wal_epoch,
    )
    header["v3"] = {
        "vmin": int(store._vmin),
        "stride": int(store._stride),
        "top_per_row": int(store._top_per_row),
        "top_stride": int(_TOP_STRIDE),
    }
    header_bytes = json.dumps(header).encode("utf-8")
    sections = _v3_sections(index)
    table_size = len(sections) * _V3_SECTION.size
    json_offset = _V3_SUPERBLOCK.size + table_size
    cursor = json_offset + len(header_bytes)
    placed: list[tuple[str, np.ndarray, int]] = []
    for name, arr in sections:
        offset = -(-cursor // _V3_ALIGN) * _V3_ALIGN
        placed.append((name, arr, offset))
        cursor = offset + arr.nbytes
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    with open(tmp, "wb") as fh:
        fh.write(
            _V3_SUPERBLOCK.pack(
                _V3_MAGIC,
                MMAP_FORMAT_VERSION,
                len(sections),
                int(wal_lsn),
                int(wal_epoch),
                json_offset,
                len(header_bytes),
            )
        )
        for name, arr, offset in placed:
            shape = arr.shape if arr.ndim == 2 else (arr.shape[0], 0)
            fh.write(
                _V3_SECTION.pack(
                    name.encode("ascii"),
                    arr.dtype.str.encode("ascii"),
                    arr.ndim,
                    0,
                    shape[0],
                    shape[1],
                    offset,
                    arr.nbytes,
                )
            )
        fh.write(header_bytes)
        for _name, arr, offset in placed:
            fh.write(b"\0" * (offset - fh.tell()))
            arr.tofile(fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def _is_v3(path: Path) -> bool:
    """Sniff the v3 magic — format detection never trusts the suffix."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(_V3_MAGIC)) == _V3_MAGIC
    except OSError:  # pragma: no cover - racing deletion
        return False


def mmap_capable(path: str | Path) -> bool:
    """True when ``path`` is a format-v3 file that ``backend="mmap"`` can open.

    v1/v2 archives always return False — callers that accept either
    format (e.g. checkpoint recovery) use this to fall back to an eager
    load instead of erroring on older snapshots.
    """
    path = Path(path)
    return path.is_file() and _is_v3(path)


def _read_v3_layout(path: Path) -> tuple[dict, dict[str, _Section]]:
    """Parse a v3 file's superblock, section table and JSON header."""
    file_size = path.stat().st_size
    with open(path, "rb") as fh:
        raw = fh.read(_V3_SUPERBLOCK.size)
        if len(raw) < _V3_SUPERBLOCK.size:
            raise IndexFormatError(f"{path} is truncated: superblock missing")
        (
            magic,
            _version,
            n_sections,
            _wal_lsn,
            _wal_epoch,
            json_offset,
            json_len,
        ) = _V3_SUPERBLOCK.unpack(raw)
        if magic != _V3_MAGIC:  # pragma: no cover - callers sniff first
            raise IndexFormatError(f"{path} is not a v3 LazyLSH index")
        table = fh.read(n_sections * _V3_SECTION.size)
        if len(table) < n_sections * _V3_SECTION.size:
            raise IndexFormatError(f"{path} is truncated: section table missing")
        fh.seek(json_offset)
        header_bytes = fh.read(json_len)
        if len(header_bytes) < json_len:
            raise IndexFormatError(f"{path} is truncated: header missing")
    sections: dict[str, _Section] = {}
    for i in range(n_sections):
        name_raw, dtype_raw, ndim, _pad, shape0, shape1, offset, nbytes = (
            _V3_SECTION.unpack_from(table, i * _V3_SECTION.size)
        )
        name = name_raw.rstrip(b"\0").decode("ascii")
        try:
            dtype = np.dtype(dtype_raw.rstrip(b"\0").decode("ascii"))
        except TypeError as exc:
            raise IndexFormatError(
                f"{path} section {name!r} has a corrupt dtype: {exc}"
            ) from exc
        shape = (shape0,) if ndim == 1 else (shape0, shape1)
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if expected != nbytes or offset + nbytes > file_size:
            raise IndexFormatError(
                f"{path} is truncated or corrupt: section {name!r} claims "
                f"[{offset}, {offset + nbytes}) of a {file_size}-byte file"
            )
        sections[name] = _Section(name, dtype, shape, offset, nbytes)
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IndexFormatError(f"{path} has a corrupt header: {exc}") from exc
    return header, sections


def _validate_header(path: Path, header: dict) -> None:
    if header.get("library") != "repro-lazylsh":
        raise IndexFormatError(f"{path} was not written by save_index")
    version = header.get("format_version")
    if version not in SUPPORTED_FORMAT_VERSIONS:
        supported = sorted(SUPPORTED_FORMAT_VERSIONS)
        raise IndexFormatError(
            f"{path} uses format version {version}; this library reads "
            f"versions {supported}"
        )


def read_header(path: str | Path) -> dict:
    """Parse and validate the JSON header of a saved index.

    Cheap relative to a full :func:`load_index` (the arrays are not
    decompressed or mapped beyond the header); used by checkpoint recovery
    to rank candidate snapshots by their ``wal_lsn`` before loading one.
    Works on every supported format — v3 files are sniffed by magic.
    """
    path = Path(path)
    if not path.exists():
        raise InvalidParameterError(f"no such index file: {path}")
    if _is_v3(path):
        header, _sections = _read_v3_layout(path)
        _validate_header(path, header)
        header.setdefault("wal_lsn", 0)
        header.setdefault("wal_epoch", 0)
        return header
    try:
        with np.load(path, allow_pickle=False) as archive:
            try:
                header_bytes = archive["header"].tobytes()
            except KeyError as exc:
                raise IndexFormatError(
                    f"{path} is missing field {exc}; not a LazyLSH index file"
                ) from exc
    except (OSError, ValueError) as exc:
        raise IndexFormatError(f"{path} is not a readable .npz file: {exc}") from exc
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IndexFormatError(f"{path} has a corrupt header: {exc}") from exc
    _validate_header(path, header)
    # Version-1 files predate the durability metadata.
    header.setdefault("wal_lsn", 0)
    header.setdefault("wal_epoch", 0)
    return header


def _assemble_index(
    path: Path,
    header: dict,
    data: np.ndarray,
    alive: np.ndarray,
    projections: np.ndarray,
    offsets: np.ndarray,
) -> tuple[LazyLSH, PageLayout]:
    """Rebuild everything but the store from validated header + arrays."""
    config = LazyLSHConfig(**header["config"])
    index = LazyLSH(config, rehashing=header["rehashing"])
    n, d = data.shape
    eta = int(header["eta"])
    if projections.shape != (d, eta) or offsets.shape != (eta,):
        raise IndexFormatError(
            f"{path} has inconsistent bank shapes "
            f"{projections.shape}/{offsets.shape} for d={d}, eta={eta}"
        )
    if alive.shape != (n,):
        raise IndexFormatError(
            f"{path} has an alive mask of shape {alive.shape} for n={n} rows"
        )
    stored_live = header.get("live_count")
    if stored_live is not None and int(stored_live) != int(alive.sum()):
        raise IndexFormatError(
            f"{path} header claims {stored_live} live rows but the alive "
            f"mask holds {int(alive.sum())}; the file is corrupt"
        )
    # Reconstruct the internals without re-drawing randomness.
    index._beta = float(header["beta"])
    index._engine = ParameterEngine(
        d,
        c=config.c,
        epsilon=config.epsilon,
        beta=index._beta,
        r0=config.r0,
        base_p=config.base_p,
        mc_samples=config.mc_samples,
        mc_buckets=config.mc_buckets,
        seed=config.seed,
    )
    index._eta = eta
    bank = StableHashBank.__new__(StableHashBank)
    bank.d = d
    bank.eta = eta
    bank.r0 = config.r0
    bank.c = config.c
    bank.base_p = config.base_p
    bank._projections = projections
    bank._offsets = offsets
    bank.offset_upper = float(offsets.max()) if eta else 0.0
    index._bank = bank
    layout = PageLayout(page_size=config.page_size, entry_size=config.entry_size)
    return index, layout


def _mmap_section(path: Path, section: _Section) -> np.ndarray:
    return np.memmap(
        path,
        dtype=section.dtype,
        mode="r",
        offset=section.offset,
        shape=section.shape,
    )


def _load_section(fh, section: _Section) -> np.ndarray:
    fh.seek(section.offset)
    count = int(np.prod(section.shape, dtype=np.int64))
    arr = np.fromfile(fh, dtype=section.dtype, count=count)
    if arr.size != count:  # pragma: no cover - caught by layout validation
        raise IndexFormatError(
            f"{getattr(fh, 'name', '<index file>')} section "
            f"{section.name!r} truncated"
        )
    return arr.reshape(section.shape)


def open_v3_arrays(
    path: str | Path, names: tuple[str, ...] | None = None
) -> tuple[dict, dict[str, np.ndarray]]:
    """Memory-map sections of a v3 file without restoring a :class:`LazyLSH`.

    Shard workers use this for O(1) attach: no ``ParameterEngine``, no
    hash bank — just the header and read-only ``np.memmap`` views of the
    requested sections (all of them when ``names`` is ``None``).
    """
    path = Path(path)
    if not path.exists():
        raise InvalidParameterError(f"no such index file: {path}")
    if not _is_v3(path):
        raise IndexFormatError(
            f"{path} is not a format-version-3 index; only v3 files can be "
            "memory-mapped"
        )
    header, sections = _read_v3_layout(path)
    _validate_header(path, header)
    if names is not None:
        missing = [n for n in names if n not in sections]
        if missing:
            raise IndexFormatError(
                f"{path} is missing field {missing[0]!r}; not a LazyLSH "
                "index file"
            )
        sections = {n: sections[n] for n in names}
    return header, {n: _mmap_section(path, s) for n, s in sections.items()}


def _load_v3(path: Path, backend: str) -> LazyLSH:
    header, sections = _read_v3_layout(path)
    _validate_header(path, header)
    for name in ("data", "alive", "projections", "offsets", "values", "ids"):
        if name not in sections:
            raise IndexFormatError(
                f"{path} is missing field {name!r}; not a LazyLSH index file"
            )
    if backend == "mmap":
        arrays = {n: _mmap_section(path, s) for n, s in sections.items()}
    else:
        with open(path, "rb") as fh:
            arrays = {n: _load_section(fh, s) for n, s in sections.items()}
    data = arrays["data"]
    # The tombstone mask is mutated in place by ``remove``; always own a
    # writable RAM copy even when everything else stays mapped.
    alive = np.array(arrays["alive"], dtype=bool)
    index, layout = _assemble_index(
        path, header, data, alive, arrays["projections"], arrays["offsets"]
    )
    rel32 = arrays.get("rel32")
    state = header.get("v3")
    search = None
    if rel32 is not None and state is not None:
        search = SearchState(
            vmin=int(state["vmin"]),
            stride=int(state["stride"]),
            top_per_row=int(state["top_per_row"]),
        )
    backend_cls = MmapBackend if backend == "mmap" else EagerBackend
    store_backend = backend_cls(
        values=arrays["values"],
        ids=arrays["ids"],
        ids32=arrays.get("ids32"),
        rel32=rel32,
        row_top=arrays.get("row_top"),
        search_state=search,
        source_path=path,
    )
    index._store = InvertedListStore.from_backend(store_backend, layout)
    index._data = data if backend == "mmap" else np.ascontiguousarray(data)
    index._alive = alive
    return index


def load_index(path: str | Path, *, backend: str = "eager") -> LazyLSH:
    """Restore an index saved by :func:`save_index`.

    The restored index answers queries identically to the original: the
    hash bank's random projections are loaded, not re-drawn, and the
    tombstone (``alive``) mask is restored bit for bit.

    ``backend`` selects how a format-v3 file's arrays are held:
    ``"eager"`` reads them into RAM, ``"mmap"`` maps them read-only so
    open cost and resident memory are O(1) in index size.  v1/v2 files
    only support the eager path (they must re-hash on load).
    """
    if backend not in ("eager", "mmap"):
        raise InvalidParameterError(
            f"backend must be 'eager' or 'mmap', got {backend!r}"
        )
    path = Path(path)
    header = read_header(path)
    if _is_v3(path):
        return _load_v3(path, backend)
    if backend == "mmap":
        raise IndexFormatError(
            f"{path} uses format version {header['format_version']}, which "
            "cannot be memory-mapped; re-save it with "
            "save_index(..., format_version=3)"
        )
    with np.load(path, allow_pickle=False) as archive:
        try:
            data = archive["data"]
            alive = archive["alive"]
            projections = archive["projections"]
            offsets = archive["offsets"]
        except KeyError as exc:
            raise IndexFormatError(
                f"{path} is missing field {exc}; not a LazyLSH index file"
            ) from exc
    alive = alive.astype(bool)
    index, layout = _assemble_index(
        path, header, data, alive, projections, offsets
    )
    bank = index._bank
    assert bank is not None
    index._store = InvertedListStore(bank.hash_points(data), layout)
    index._data = np.ascontiguousarray(data)
    index._alive = alive
    return index
