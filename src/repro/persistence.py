"""Saving and loading built LazyLSH indexes.

An index is fully determined by its configuration, the indexed data and
the materialised hash bank (projection vectors + offsets).  ``save_index``
stores exactly those in one compressed ``.npz``; ``load_index`` restores
the bank verbatim (no re-drawing — the stored random projections are the
index) and rebuilds the inverted lists deterministically by re-hashing
the data, which is cheaper to store than the sorted runs themselves.

Format history
--------------

* **version 1** — header (config, rehashing, eta, beta) + ``data``,
  ``alive``, ``projections``, ``offsets``.
* **version 2** — adds durability metadata to the header: ``wal_lsn``
  (the write-ahead-log sequence number the snapshot covers), ``wal_epoch``
  (the serving fleet's update-epoch counter at checkpoint time) and
  ``live_count`` (non-tombstoned rows, cross-checked against ``alive``
  on load).  The array payload is unchanged, so version-1 files still
  load — their WAL fields default to zero.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import LazyLSHConfig
from repro.core.hashing import StableHashBank
from repro.core.lazylsh import LazyLSH
from repro.core.params import ParameterEngine
from repro.errors import IndexNotBuiltError, InvalidParameterError, ReproError
from repro.storage.inverted_index import InvertedListStore
from repro.storage.pages import PageLayout

#: Bumped when the on-disk layout changes incompatibly.
FORMAT_VERSION = 2

#: Versions :func:`load_index` knows how to read.
SUPPORTED_FORMAT_VERSIONS = frozenset({1, 2})


class IndexFormatError(ReproError):
    """The file is not a LazyLSH index or uses an incompatible format."""


def save_index(
    index: LazyLSH,
    path: str | Path,
    *,
    wal_lsn: int = 0,
    wal_epoch: int = 0,
) -> Path:
    """Serialise a built index to ``path`` (``.npz`` appended if absent).

    ``wal_lsn``/``wal_epoch`` stamp the snapshot with the write-ahead-log
    position it covers (zero for a plain manual save); recovery replays
    only records newer than ``wal_lsn``.  Returns the path written.
    """
    if not index.is_built:
        raise IndexNotBuiltError("cannot save an index that was never built")
    if wal_lsn < 0 or wal_epoch < 0:
        raise InvalidParameterError(
            f"wal_lsn/wal_epoch must be >= 0, got {wal_lsn}/{wal_epoch}"
        )
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    bank = index._bank
    assert bank is not None
    header = {
        "format_version": FORMAT_VERSION,
        "library": "repro-lazylsh",
        "config": asdict(index.config),
        "rehashing": index.rehashing,
        "eta": index.eta,
        "beta": index.beta,
        "wal_lsn": int(wal_lsn),
        "wal_epoch": int(wal_epoch),
        "live_count": int(index._alive.sum()),
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        data=index.data,
        alive=index._alive,
        projections=bank._projections,
        offsets=bank._offsets,
    )
    return path


def read_header(path: str | Path) -> dict:
    """Parse and validate the JSON header of a saved index.

    Cheap relative to a full :func:`load_index` (the arrays are not
    decompressed beyond the header member); used by checkpoint recovery
    to rank candidate snapshots by their ``wal_lsn`` before loading one.
    """
    path = Path(path)
    if not path.exists():
        raise InvalidParameterError(f"no such index file: {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            try:
                header_bytes = archive["header"].tobytes()
            except KeyError as exc:
                raise IndexFormatError(
                    f"{path} is missing field {exc}; not a LazyLSH index file"
                ) from exc
    except (OSError, ValueError) as exc:
        raise IndexFormatError(f"{path} is not a readable .npz file: {exc}") from exc
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IndexFormatError(f"{path} has a corrupt header: {exc}") from exc
    if header.get("library") != "repro-lazylsh":
        raise IndexFormatError(f"{path} was not written by save_index")
    version = header.get("format_version")
    if version not in SUPPORTED_FORMAT_VERSIONS:
        supported = sorted(SUPPORTED_FORMAT_VERSIONS)
        raise IndexFormatError(
            f"{path} uses format version {version}; this library reads "
            f"versions {supported}"
        )
    # Version-1 files predate the durability metadata.
    header.setdefault("wal_lsn", 0)
    header.setdefault("wal_epoch", 0)
    return header


def load_index(path: str | Path) -> LazyLSH:
    """Restore an index saved by :func:`save_index`.

    The restored index answers queries identically to the original: the
    hash bank's random projections are loaded, not re-drawn, and the
    tombstone (``alive``) mask is restored bit for bit.
    """
    path = Path(path)
    header = read_header(path)
    with np.load(path, allow_pickle=False) as archive:
        try:
            data = archive["data"]
            alive = archive["alive"]
            projections = archive["projections"]
            offsets = archive["offsets"]
        except KeyError as exc:
            raise IndexFormatError(
                f"{path} is missing field {exc}; not a LazyLSH index file"
            ) from exc
    config = LazyLSHConfig(**header["config"])
    index = LazyLSH(config, rehashing=header["rehashing"])
    n, d = data.shape
    eta = int(header["eta"])
    if projections.shape != (d, eta) or offsets.shape != (eta,):
        raise IndexFormatError(
            f"{path} has inconsistent bank shapes "
            f"{projections.shape}/{offsets.shape} for d={d}, eta={eta}"
        )
    if alive.shape != (n,):
        raise IndexFormatError(
            f"{path} has an alive mask of shape {alive.shape} for n={n} rows"
        )
    alive = alive.astype(bool)
    stored_live = header.get("live_count")
    if stored_live is not None and int(stored_live) != int(alive.sum()):
        raise IndexFormatError(
            f"{path} header claims {stored_live} live rows but the alive "
            f"mask holds {int(alive.sum())}; the file is corrupt"
        )
    # Reconstruct the internals without re-drawing randomness.
    index._beta = float(header["beta"])
    index._engine = ParameterEngine(
        d,
        c=config.c,
        epsilon=config.epsilon,
        beta=index._beta,
        r0=config.r0,
        base_p=config.base_p,
        mc_samples=config.mc_samples,
        mc_buckets=config.mc_buckets,
        seed=config.seed,
    )
    index._eta = eta
    bank = StableHashBank.__new__(StableHashBank)
    bank.d = d
    bank.eta = eta
    bank.r0 = config.r0
    bank.c = config.c
    bank.base_p = config.base_p
    bank._projections = projections
    bank._offsets = offsets
    bank.offset_upper = float(offsets.max()) if eta else 0.0
    index._bank = bank
    layout = PageLayout(page_size=config.page_size, entry_size=config.entry_size)
    index._store = InvertedListStore(bank.hash_points(data), layout)
    index._data = np.ascontiguousarray(data)
    index._alive = alive
    return index
