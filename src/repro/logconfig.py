"""Structured logging for the ``repro.*`` namespace.

Every serving-plane module logs through the stdlib :mod:`logging`
machinery under the ``repro.`` namespace (``repro.serve.service``,
``repro.serve.frontend``, ``repro.durability.wal``, ...).  Nothing in
the library configures handlers — importing :mod:`repro` must never
hijack an application's logging setup — so by default those records go
to the stdlib's last-resort handler (WARNING and above on stderr).

Entry points that *own* the process (``repro serve``) call
:func:`configure_logging` to attach a single stderr handler with either
a human-readable line format or a JSON-per-line format suitable for log
shippers.  The function is idempotent: re-configuring replaces the
handler it previously installed rather than stacking duplicates.
"""

from __future__ import annotations

import json
import logging
import sys
import time

__all__ = ["JsonFormatter", "configure_logging"]

#: Logger that roots the repro namespace; handlers attach here so that
#: third-party libraries keep their own configuration.
ROOT_LOGGER_NAME = "repro"

#: Marker attribute so configure_logging can find (and replace) the
#: handler it installed on a previous call.
_HANDLER_MARK = "_repro_logconfig_handler"

_TEXT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


class _StderrHandler(logging.StreamHandler):
    """A stream handler that resolves ``sys.stderr`` at emit time.

    Binding the stream once at configuration time breaks when the
    process later swaps stderr — daemonisation, ``redirect_stderr``,
    test harnesses that capture and close per-test streams — leaving
    the handler writing to (or crashing on) a dead file object.
    """

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):  # type: ignore[override]
        return sys.stderr


class JsonFormatter(logging.Formatter):
    """Format records as one JSON object per line.

    The envelope keeps the same fields the text format shows — ``ts``
    (ISO-8601, UTC), ``level``, ``logger``, ``msg`` — plus exception
    text under ``exc`` when present.  Values are rendered with
    ``default=str`` so a stray non-serialisable argument degrades to
    its ``repr`` instead of crashing the logging call.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            )
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def configure_logging(
    level: str | int = "info", *, json_format: bool = False
) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` logger namespace.

    ``level`` accepts either a logging constant or a (case-insensitive)
    name such as ``"debug"``/``"warning"``.  ``json_format`` switches
    the handler to :class:`JsonFormatter`.  Returns the configured
    ``repro`` root logger.  Raises :class:`ValueError` for an unknown
    level name.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level: {level!r}")
        level = resolved

    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(level)
    # Records stop here; the application's root logger keeps whatever
    # configuration it already had.
    root.propagate = False

    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            root.removeHandler(handler)
            handler.close()

    handler = _StderrHandler()
    handler.setFormatter(
        JsonFormatter() if json_format else logging.Formatter(_TEXT_FORMAT)
    )
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    return root
