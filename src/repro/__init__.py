"""LazyLSH: approximate nearest neighbor search for multiple ``lp``
distance functions with a single index.

A from-scratch reproduction of Zheng, Guo, Tung & Wu, SIGMOD 2016.

Quickstart
----------

.. code-block:: python

    import numpy as np
    from repro import LazyLSH, LazyLSHConfig

    data = np.random.default_rng(0).uniform(0, 100, (2000, 32))
    index = LazyLSH(LazyLSHConfig(c=3.0, p_min=0.5, seed=0)).build(data)

    query = data[0]
    result = index.knn(query, k=10, p=0.7)   # approximate 10-NN in l0.7
    print(result.ids, result.distances)
    print(result.io)                          # simulated sequential/random I/O
"""

from repro.api import SearchRequest, SearchResult, aggregate_io
from repro.cluster import FollowerNode, Router, WalShipper
from repro.core.batch import BatchKnnResult, knn_batch
from repro.durability import DurableIndex, WalFeed, WriteAheadLog
from repro.core.config import LazyLSHConfig
from repro.core.lazylsh import KnnResult, LazyLSH, RangeResult
from repro.core.multiquery import MultiQueryEngine, MultiQueryResult
from repro.core.params import MetricParams, ParameterEngine
from repro.errors import (
    DatasetError,
    DimensionalityMismatchError,
    IndexNotBuiltError,
    InvalidParameterError,
    OverloadedError,
    ReproError,
    ServiceUnhealthyError,
    StaleReadError,
    UnavailableError,
    UnsupportedMetricError,
    WalGapError,
    WireFormatError,
)
from repro.metrics.lp import lp_distance, lp_distance_matrix, lp_norm
from repro.obs import (
    GuaranteeAuditor,
    MetricsRegistry,
    ObsExporter,
    QueryTrace,
    SlowQueryLog,
    SpanTracer,
    Telemetry,
)
from repro.serve import Frontend, ShardedSearchService
from repro.storage.io_stats import IOStats

__version__ = "1.0.0"

__all__ = [
    "BatchKnnResult",
    "DatasetError",
    "DimensionalityMismatchError",
    "DurableIndex",
    "FollowerNode",
    "Frontend",
    "GuaranteeAuditor",
    "IOStats",
    "IndexNotBuiltError",
    "InvalidParameterError",
    "KnnResult",
    "LazyLSH",
    "LazyLSHConfig",
    "MetricParams",
    "MetricsRegistry",
    "MultiQueryEngine",
    "MultiQueryResult",
    "ObsExporter",
    "OverloadedError",
    "ParameterEngine",
    "QueryTrace",
    "RangeResult",
    "ReproError",
    "Router",
    "SearchRequest",
    "SearchResult",
    "ServiceUnhealthyError",
    "ShardedSearchService",
    "SlowQueryLog",
    "SpanTracer",
    "StaleReadError",
    "Telemetry",
    "UnavailableError",
    "UnsupportedMetricError",
    "WalFeed",
    "WalGapError",
    "WalShipper",
    "WireFormatError",
    "WriteAheadLog",
    "aggregate_io",
    "knn_batch",
    "lp_distance",
    "lp_distance_matrix",
    "lp_norm",
]
