"""Near-duplicate detection: MinHash pre-filter + ``lp`` verification.

Near-duplicate detection (Bilenko & Mooney, SIGKDD 2003 — cited in
Section 6.1) over dense vectors: candidate pairs are generated cheaply
from MinHash signatures of each vector's top-coordinate set (banding, the
classic LSH-for-Jaccard trick), then verified with the true ``lp``
distance so the output has no false positives.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro._typing import PointMatrix
from repro.errors import InvalidParameterError
from repro.metrics.families import MinHash
from repro.metrics.lp import lp_distance


def _top_coordinate_set(vector: np.ndarray, size: int) -> set[int]:
    """The ids of a vector's ``size`` largest-magnitude coordinates."""
    order = np.argsort(np.abs(vector), kind="stable")[::-1][:size]
    return {int(i) for i in order}


def find_near_duplicates(
    points: PointMatrix,
    *,
    threshold: float,
    p: float = 1.0,
    num_hashes: int = 64,
    bands: int = 16,
    sketch_size: int | None = None,
    seed: int | None = 7,
) -> list[tuple[int, int, float]]:
    """Find all pairs within ``lp`` distance ``threshold``.

    Parameters
    ----------
    points:
        The ``(n, d)`` dataset.
    threshold:
        Maximum ``lp`` distance for a pair to count as a near-duplicate.
    p:
        The verification metric.
    num_hashes / bands:
        MinHash signature length and LSH banding; ``bands`` must divide
        ``num_hashes``.  More bands = higher candidate recall, more
        verification work.
    sketch_size:
        How many top coordinates form each vector's set sketch; defaults
        to ``min(16, d)``.
    seed:
        Seed for the MinHash family.

    Returns
    -------
    list of ``(i, j, distance)`` with ``i < j``, sorted by distance.
    Verified exactly — no false positives; recall depends on the sketch
    (near-duplicates share top coordinates, so it is high for genuinely
    close pairs).
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n, d = points.shape
    if n < 2:
        raise InvalidParameterError("need at least two points")
    if threshold <= 0:
        raise InvalidParameterError(f"threshold must be > 0, got {threshold}")
    if num_hashes < 1 or bands < 1 or num_hashes % bands != 0:
        raise InvalidParameterError(
            f"bands ({bands}) must divide num_hashes ({num_hashes})"
        )
    if sketch_size is None:
        sketch_size = min(16, d)
    if not 1 <= sketch_size <= d:
        raise InvalidParameterError(
            f"sketch_size must lie in [1, {d}], got {sketch_size}"
        )
    rows_per_band = num_hashes // bands
    minhash = MinHash(num_hashes, seed=seed)
    signatures = np.vstack(
        [minhash.hash_set(_top_coordinate_set(points[i], sketch_size)) for i in range(n)]
    )
    candidates: set[tuple[int, int]] = set()
    for band in range(bands):
        buckets: dict[tuple, list[int]] = defaultdict(list)
        band_sig = signatures[:, band * rows_per_band : (band + 1) * rows_per_band]
        for i in range(n):
            buckets[tuple(band_sig[i])].append(i)
        for members in buckets.values():
            if len(members) < 2:
                continue
            for a_idx, i in enumerate(members):
                for j in members[a_idx + 1 :]:
                    candidates.add((i, j))
    verified = []
    for i, j in candidates:
        dist = float(lp_distance(points[i], points[j], p))
        if dist <= threshold:
            verified.append((i, j, dist))
    verified.sort(key=lambda pair: pair[2])
    return verified
