"""Approximate kNN-graph construction over a LazyLSH index.

A kNN graph — every point connected to its (approximate) ``k`` nearest
neighbours — is the workhorse substrate of the applications Section 6.1
cites: clustering, semi-supervised label propagation and semi-lazy
learning.  Building it exactly is ``O(n^2 d)``; with a single LazyLSH
index it is ``n`` approximate queries, and the same index serves graphs
under *different* ``lp`` metrics for metric-sensitivity studies.

The graph is returned as a :mod:`networkx` directed graph (edge ``u -> v``
when ``v`` is among ``u``'s kNN) with ``weight`` = the ``lp`` distance.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.lazylsh import LazyLSH
from repro.errors import IndexNotBuiltError, InvalidParameterError


def build_knn_graph(
    index: LazyLSH,
    k: int,
    p: float = 1.0,
    *,
    include_self: bool = False,
    mutual_only: bool = False,
) -> nx.DiGraph:
    """Build the approximate kNN graph of the indexed points.

    Parameters
    ----------
    index:
        A built :class:`~repro.core.LazyLSH` index.
    k:
        Neighbours per point.
    p:
        The ``lp`` metric defining the graph.
    include_self:
        Whether a point may list itself among its neighbours (it is its
        own 0-distance nearest neighbour); default drops self-loops and
        retrieves ``k + 1`` internally to compensate.
    mutual_only:
        Keep only mutual edges (``u -> v`` and ``v -> u``), a common
        denoising step for clustering.

    Returns
    -------
    networkx.DiGraph
        Nodes ``0..n-1``; edge attribute ``weight`` holds the distance.
    """
    if not index.is_built:
        raise IndexNotBuiltError("build the index before constructing a graph")
    n = index.num_points
    if not 1 <= k < n:
        raise InvalidParameterError(
            f"k must lie in [1, {n - 1}] for a graph over {n} points, got {k}"
        )
    fetch = k if include_self else min(k + 1, n)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(index.num_rows))
    alive_ids = np.flatnonzero(index._alive)
    for u in alive_ids:
        result = index.knn(index.data[u], fetch, p=p)
        added = 0
        for v, dist in zip(result.ids, result.distances):
            if not include_self and int(v) == int(u):
                continue
            if added == k:
                break
            graph.add_edge(int(u), int(v), weight=float(dist))
            added += 1
    if mutual_only:
        drop = [
            (u, v) for u, v in graph.edges if not graph.has_edge(v, u)
        ]
        graph.remove_edges_from(drop)
    return graph


def graph_quality(
    graph: nx.DiGraph, exact_ids: np.ndarray, *, k: int
) -> float:
    """Average per-node recall of the graph's edges vs exact kNN ids.

    ``exact_ids`` has shape ``(n, k)`` (self excluded), as produced by
    :func:`repro.datasets.exact_knn` with the query removed.
    """
    exact_ids = np.asarray(exact_ids)
    if exact_ids.ndim != 2 or exact_ids.shape[1] < k:
        raise InvalidParameterError(
            f"exact_ids must be (n, >=k), got {exact_ids.shape}"
        )
    recalls = []
    for u in range(exact_ids.shape[0]):
        neighbours = set(graph.successors(u))
        if not neighbours:
            continue
        truth = set(int(x) for x in exact_ids[u, :k])
        recalls.append(len(neighbours & truth) / float(k))
    if not recalls:
        raise InvalidParameterError("graph has no edges to score")
    return float(np.mean(recalls))
