"""Application layer: the similarity-search workloads Section 6.1 lists
as LazyLSH's motivation, built on the public index API.

* :mod:`repro.apps.knn_graph` — approximate kNN-graph construction (the
  substrate of clustering and semi-supervised learning),
* :mod:`repro.apps.dedup` — near-duplicate detection via MinHash
  pre-filtering plus ``lp`` verification,
* :mod:`repro.apps.metric_advisor` — the Table-1 workflow packaged as an
  API: pick the best ``lp`` metric for a labelled dataset with one index.
"""

from repro.apps.dedup import find_near_duplicates
from repro.apps.knn_graph import build_knn_graph
from repro.apps.metric_advisor import MetricRecommendation, recommend_metric

__all__ = [
    "MetricRecommendation",
    "build_knn_graph",
    "find_near_duplicates",
    "recommend_metric",
]
