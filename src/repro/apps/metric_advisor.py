"""The Table-1 workflow as an API: recommend the best ``lp`` metric.

"Before implementing a system, we need an approach that can explore the
data using different distance metrics, such that we can select a proper
one to achieve the best mining results" (Section 1).  This module does
exactly that: one LazyLSH index, approximate 1NN classification accuracy
per candidate metric on a validation split, and the winner returned with
the full accuracy profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import SeedLike, as_rng
from repro.core.config import LazyLSHConfig
from repro.core.lazylsh import LazyLSH
from repro.errors import InvalidParameterError
from repro.eval.knn_classifier import classification_accuracy


@dataclass(frozen=True)
class MetricRecommendation:
    """Outcome of :func:`recommend_metric`."""

    best_p: float
    accuracies: dict[float, float]
    exact_l1_accuracy: float
    n_validation: int

    def summary(self) -> str:
        """One-line human-readable verdict."""
        profile = ", ".join(
            f"l{p:g}={100 * acc:.1f}%" for p, acc in sorted(self.accuracies.items())
        )
        return (
            f"best metric: l{self.best_p:g} "
            f"(exact l1 = {100 * self.exact_l1_accuracy:.1f}%; {profile})"
        )


def recommend_metric(
    points: np.ndarray,
    labels: np.ndarray,
    *,
    p_values: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    validation_fraction: float = 0.2,
    k: int = 1,
    config: LazyLSHConfig | None = None,
    seed: SeedLike = 7,
) -> MetricRecommendation:
    """Pick the ``lp`` metric with the best kNN classification accuracy.

    Splits off a validation set, builds ONE LazyLSH index over the
    training remainder, and scores the approximate-kNN classifier under
    every candidate metric.  Ties break toward the larger ``p`` (cheaper
    to query, Figure 9).
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    labels = np.asarray(labels)
    n = points.shape[0]
    if labels.shape != (n,):
        raise InvalidParameterError(
            f"labels must have shape ({n},), got {labels.shape}"
        )
    if not p_values:
        raise InvalidParameterError("p_values must be non-empty")
    if not 0.0 < validation_fraction < 1.0:
        raise InvalidParameterError(
            f"validation_fraction must lie in (0, 1), got {validation_fraction}"
        )
    n_val = max(1, int(round(validation_fraction * n)))
    if n - n_val < max(k, 2):
        raise InvalidParameterError(
            f"not enough points ({n}) for a {validation_fraction:.0%} validation split"
        )
    rng = as_rng(seed)
    order = rng.permutation(n)
    val_idx, train_idx = order[:n_val], order[n_val:]
    x_train, y_train = points[train_idx], labels[train_idx]
    x_val, y_val = points[val_idx], labels[val_idx]
    cfg = config or LazyLSHConfig(
        c=3.0, p_min=min(p_values), mc_samples=30_000, mc_buckets=100, seed=7
    )
    if cfg.p_min > min(p_values):
        raise InvalidParameterError(
            f"config.p_min={cfg.p_min} cannot serve the requested "
            f"p_values down to {min(p_values)}"
        )
    index = LazyLSH(cfg).build(x_train)
    exact = classification_accuracy(x_train, y_train, x_val, y_val, k=k, p=1.0)
    accuracies: dict[float, float] = {}
    for p in p_values:
        accuracies[float(p)] = classification_accuracy(
            x_train, y_train, x_val, y_val, k=k, p=float(p), retriever=index
        )
    best_p = max(sorted(accuracies), key=lambda p: (accuracies[p], p))
    return MetricRecommendation(
        best_p=best_p,
        accuracies=accuracies,
        exact_l1_accuracy=exact,
        n_validation=n_val,
    )
