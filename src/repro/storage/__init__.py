"""Simulated disk substrate with the paper's I/O accounting (Sec. 5.2).

The original LazyLSH evaluation measures cost as simulated I/Os against
4 KB pages: loading one block of an inverted list counts as one
*sequential* I/O, and visiting one data object to compute its true distance
counts as one *random* I/O.  This package reproduces exactly that model:

* :mod:`repro.storage.io_stats` — counters shared by index and baselines,
* :mod:`repro.storage.pages` — block-layout arithmetic for fixed-size
  records on 4 KB pages,
* :mod:`repro.storage.inverted_index` — the per-hash-function sorted
  ``(hash value, id)`` runs that back virtual/query-centric rehashing,
* :mod:`repro.storage.backend` — the eager (in-RAM) and mmap
  (page-cache-backed) array sources the store can run over.
"""

from repro.storage.backend import (
    EagerBackend,
    MmapBackend,
    SearchState,
    StorageBackend,
)
from repro.storage.inverted_index import InvertedListStore
from repro.storage.io_stats import IOStats
from repro.storage.pages import PageLayout, DEFAULT_PAGE_SIZE, DEFAULT_ENTRY_SIZE

__all__ = [
    "DEFAULT_ENTRY_SIZE",
    "DEFAULT_PAGE_SIZE",
    "EagerBackend",
    "IOStats",
    "InvertedListStore",
    "MmapBackend",
    "PageLayout",
    "SearchState",
    "StorageBackend",
]
