"""Storage backends for :class:`~repro.storage.inverted_index.InvertedListStore`.

The store's execution engine only ever *reads* its arrays (sorted runs,
int32 shadows, coarse search keys); mutation allocates fresh arrays.  That
makes the array source pluggable: an :class:`EagerBackend` owns plain
in-RAM ``ndarray`` objects (the classic path), while an
:class:`MmapBackend` holds read-only ``np.memmap`` views into the
page-aligned sections of a format-v3 index file
(:mod:`repro.persistence`).  Opening an mmap-backed store is O(1) in index
size — the kernel maps the file and faults pages in on first touch, so the
OS page cache plays the role of the buffer pool that
:class:`~repro.storage.pages.PageTracker` merely simulates.

Both backends can carry the precomputed two-level search state
(:class:`SearchState`) written by the v3 saver, so a store restored
through :meth:`InvertedListStore.from_backend` never scans the runs at
open time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["SearchState", "StorageBackend", "EagerBackend", "MmapBackend"]


@dataclass(frozen=True)
class SearchState:
    """Precomputed two-level window-search state of a sorted store.

    Mirrors what ``InvertedListStore._rebuild_search_keys`` derives from
    the runs (``vmin``, ``stride``, coarse rows per run) so a reader can
    restore the search index without touching the value arrays.
    """

    vmin: int
    stride: int
    top_per_row: int


@dataclass
class StorageBackend:
    """Array source for an :class:`InvertedListStore`.

    ``values``/``ids`` are the mandatory ``(num_functions, num_points)``
    sorted runs.  ``ids32``/``rel32``/``row_top`` are the optional
    flat search-acceleration arrays (present whenever the hash-value
    stride fits int32); when given alongside ``search_state`` the store
    skips ``_rebuild_search_keys`` entirely.
    """

    kind = "eager"

    values: np.ndarray
    ids: np.ndarray
    ids32: np.ndarray | None = None
    rel32: np.ndarray | None = None
    row_top: np.ndarray | None = None
    search_state: SearchState | None = None
    source_path: Path | None = field(default=None)

    def __post_init__(self) -> None:
        if self.values.ndim != 2 or self.values.shape != self.ids.shape:
            raise InvalidParameterError(
                "backend values/ids must be matching 2-D run matrices, got "
                f"{self.values.shape} / {self.ids.shape}"
            )

    def arrays(self) -> tuple[np.ndarray, ...]:
        """Every array the backend holds (present ones only)."""
        out: list[np.ndarray] = [self.values, self.ids]
        for arr in (self.ids32, self.rel32, self.row_top):
            if arr is not None:
                out.append(arr)
        return tuple(out)

    def resident_bytes(self) -> int:
        """Bytes held in ordinary RAM arrays."""
        return sum(
            a.nbytes for a in self.arrays() if not isinstance(a, np.memmap)
        )

    def mapped_bytes(self) -> int:
        """Bytes backed by file mappings (paged in lazily by the OS)."""
        return sum(a.nbytes for a in self.arrays() if isinstance(a, np.memmap))


class EagerBackend(StorageBackend):
    """Plain in-RAM arrays — the classic store representation."""

    kind = "eager"


class MmapBackend(StorageBackend):
    """Read-only ``np.memmap`` views into a v3 index file.

    The arrays stay valid as long as the mappings are alive; the file on
    disk must not be rewritten in place (the v3 writer's tmp+rename
    protocol guarantees readers never observe a partial file).
    """

    kind = "mmap"
