"""I/O accounting matching the paper's evaluation metrics (Section 5.2).

The paper: "If a block of an inverted list (4KB per block) is loaded into
memory, the number of simulated I/Os (sequential) is increased by 1.  If an
object is visited to compute its distance to the query, the number of
simulated I/Os (random) is increased by 1."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidParameterError


@dataclass
class IOStats:
    """Mutable counters of simulated sequential and random I/Os."""

    sequential: int = 0
    random: int = 0

    def add_sequential(self, count: int = 1) -> None:
        """Record ``count`` sequential block reads."""
        if count < 0:
            raise InvalidParameterError(f"I/O count must be >= 0, got {count}")
        self.sequential += count

    def add_random(self, count: int = 1) -> None:
        """Record ``count`` random object reads."""
        if count < 0:
            raise InvalidParameterError(f"I/O count must be >= 0, got {count}")
        self.random += count

    @property
    def total(self) -> int:
        """Total simulated I/Os (sequential + random)."""
        return self.sequential + self.random

    def reset(self) -> None:
        """Zero both counters."""
        self.sequential = 0
        self.random = 0

    def snapshot(self) -> "IOStats":
        """Return an immutable-by-convention copy of the current counters."""
        return IOStats(sequential=self.sequential, random=self.random)

    def merge(self, other: "IOStats") -> "IOStats":
        """Fold ``other``'s counters into this one, in place.

        The streaming aggregation primitive shared by ``knn_batch`` and
        the sharded service's result merger: one running total, updated
        as parts arrive, instead of re-summing a list per call.  Returns
        ``self`` so folds chain.
        """
        self.add_sequential(other.sequential)
        self.add_random(other.random)
        return self

    def to_dict(self) -> dict:
        """JSON-serialisable form (``total`` included for readability)."""
        return {
            "sequential": self.sequential,
            "random": self.random,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "IOStats":
        """Rebuild from :meth:`to_dict` output (``total`` is derived)."""
        stats = cls(
            sequential=int(record["sequential"]), random=int(record["random"])
        )
        if stats.sequential < 0 or stats.random < 0:
            raise InvalidParameterError(f"I/O counts must be >= 0, got {record}")
        return stats

    def __sub__(self, other: "IOStats") -> "IOStats":
        """Difference of two snapshots (``later - earlier``)."""
        return IOStats(
            sequential=self.sequential - other.sequential,
            random=self.random - other.random,
        )

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            sequential=self.sequential + other.sequential,
            random=self.random + other.random,
        )

    def __str__(self) -> str:
        return (
            f"IOStats(sequential={self.sequential}, random={self.random}, "
            f"total={self.total})"
        )


@dataclass
class IOMeter:
    """Helper that measures the I/O delta of a block of work.

    Re-enterable: each ``__enter__`` takes a fresh ``_start`` snapshot,
    so one meter can measure successive ``with`` blocks independently
    (``delta`` is the most recent block's delta, ``cumulative`` the sum
    over all finished blocks).

    Example
    -------
    >>> stats = IOStats()
    >>> with IOMeter(stats) as meter:
    ...     stats.add_sequential(3)
    >>> meter.delta.sequential
    3
    """

    stats: IOStats
    _start: IOStats = field(init=False, repr=False, default_factory=IOStats)
    delta: IOStats = field(init=False, default_factory=IOStats)
    cumulative: IOStats = field(init=False, default_factory=IOStats)

    def __enter__(self) -> "IOMeter":
        self._start = self.stats.snapshot()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.delta = self.stats.snapshot() - self._start
        self.cumulative = self.cumulative + self.delta

    def to_dict(self) -> dict:
        """The last block's delta as a JSON-serialisable dict."""
        return self.delta.to_dict()
