"""Per-hash-function inverted lists backing virtual rehashing.

The materialised base index of LazyLSH/C2LSH stores, for every base hash
function ``h*_i``, the list of ``(hash value, point id)`` pairs sorted by
hash value.  Retrieving every point whose base bucket lies inside a hash
window ``[lo, hi]`` is then one contiguous scan of the sorted run — exactly
what virtual rehashing (C2LSH) and query-centric rehashing (LazyLSH)
exploit.  Sequential I/O is charged per overlapped 4 KB page of the run.

Storage layout (flat-array execution engine)
--------------------------------------------

All runs have the same length (every point is hashed by every function),
so the store keeps two contiguous ``(num_functions, num_points)`` int64
matrices — ``values`` and ``ids`` — whose rows are the sorted runs.  The
row-major flat view of ``values`` is globally sorted under the composite
key ``func * stride + (value - vmin)``, which lets a *batched* window
query — all ``eta`` windows of one rehashing round, or all windows of a
whole query batch — be answered with two vectorised ``np.searchsorted``
calls over one flat key array (:meth:`batch_entry_positions`,
:meth:`read_windows`).  Sequential I/O for a batch is charged by interval
arithmetic (:class:`~repro.storage.pages.PageTracker`) rather than a
per-page Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import IdArray
from repro.errors import InvalidParameterError
from repro.storage.backend import StorageBackend
from repro.storage.io_stats import IOStats
from repro.storage.pages import PageLayout, PageTracker


@dataclass(frozen=True)
class InsertPlan:
    """Where an :meth:`InvertedListStore.insert` batch landed, per run.

    All matrices have shape ``(num_functions, m)``; row ``f`` is sorted
    by hash value (ties in original batch order, matching the store's
    stable per-function batch sort).

    ``rel_positions[f, r]`` is the ``side="right"`` insertion position of
    entry ``r`` in function ``f``'s *old* run — every old entry at
    position ``p`` therefore shifts right by the count of plan entries
    with ``rel_positions <= p`` (strictly ``< p`` never occurs at equal
    positions because new entries land after equal-valued old ones).
    ``dest_positions[f, r] = rel_positions[f, r] + r`` is the entry's
    final position in the new, ``old_rows + m``-long run.  A replica that
    holds only a sub-run of each list (a shard worker) can replay this
    plan and end up bit-identical to a fresh rebuild — the contract the
    sharded service's live update path relies on (DESIGN §11).
    """

    values: np.ndarray
    ids: np.ndarray
    rel_positions: np.ndarray
    dest_positions: np.ndarray
    old_rows: int

#: Composite window-search keys must stay well inside int64; wider value
#: ranges fall back to a per-function ``searchsorted`` loop.
_MAX_COMPOSITE_KEY = 2**62

#: Coarse sampling stride of the two-level window search: every
#: ``_TOP_STRIDE``-th composite key forms a cache-resident top index, so a
#: batched lookup is one ``searchsorted`` over the small top array plus a
#: vectorised binary-search refinement inside one ``_TOP_STRIDE``-entry
#: window.  Turning each needle's ~``log2(F * n)`` dependent, scattered
#: probes into a few *independent* bulk gathers is what makes the batched
#: search memory-parallel.
_TOP_STRIDE = 256


class InvertedListStore:
    """Sorted ``(hash value, id)`` runs, one per base hash function.

    Parameters
    ----------
    hash_values:
        Integer matrix of shape ``(num_functions, num_points)`` where entry
        ``[i, j]`` is ``h*_i`` applied to point ``j``.
    layout:
        Page layout used for sequential-I/O accounting; defaults to 4 KB
        pages with 8-byte entries.
    """

    def __init__(
        self, hash_values: np.ndarray, layout: PageLayout | None = None
    ) -> None:
        hash_values = np.asarray(hash_values)
        if hash_values.ndim != 2:
            raise InvalidParameterError(
                f"hash_values must be 2-D (functions x points), got shape "
                f"{hash_values.shape}"
            )
        if not np.issubdtype(hash_values.dtype, np.integer):
            raise InvalidParameterError(
                f"hash values must be integers, got dtype {hash_values.dtype}"
            )
        # Optional telemetry hook (see repro.obs.StoreObserver); must be
        # bound before any method that reads it runs.  ``None`` keeps the
        # hot paths on a single ``is None`` check.
        self.observer = None
        self._layout = layout or PageLayout()
        num_functions, num_points = hash_values.shape
        self._num_functions = int(num_functions)
        self._num_points = int(num_points)
        order = np.argsort(hash_values, axis=1, kind="stable")
        self._ids = np.ascontiguousarray(order.astype(np.int64))
        self._values = np.ascontiguousarray(
            np.take_along_axis(hash_values.astype(np.int64), order, axis=1)
        )
        self._rebuild_search_keys()
        self._backend: StorageBackend | None = None
        self._iota_cache: np.ndarray | None = None
        # Lazy inverse permutation for bucket_of (diagnostics only).
        self._id_order: np.ndarray | None = None
        self._ids_by_id: np.ndarray | None = None

    @classmethod
    def from_backend(
        cls, backend: StorageBackend, layout: PageLayout | None = None
    ) -> "InvertedListStore":
        """Adopt pre-sorted runs (and search state) from a storage backend.

        Unlike ``__init__``, which sorts the raw hash values and rebuilds
        the two-level search index, this constructor trusts the backend's
        arrays verbatim — the v3 saver materialised them from an already
        consistent store, so opening is O(1) array bookkeeping.  Missing
        acceleration arrays (old files, wide hash domains) fall back to
        :meth:`_rebuild_search_keys`.
        """
        store = cls.__new__(cls)
        store.observer = None
        store._layout = layout or PageLayout()
        num_functions, num_points = backend.values.shape
        store._num_functions = int(num_functions)
        store._num_points = int(num_points)
        store._values = backend.values
        store._ids = backend.ids
        state = backend.search_state
        if state is None or backend.rel32 is None:  # pragma: no cover
            store._rebuild_search_keys()
        else:
            store._keys = None
            store._vmin = int(state.vmin)
            store._stride = int(state.stride)
            store._top_per_row = int(state.top_per_row)
            store._rel32 = backend.rel32
            store._row_top = backend.row_top
            store._ids32_flat = backend.ids32
        store._backend = backend
        store._iota_cache = None
        store._id_order = None
        store._ids_by_id = None
        return store

    @property
    def backend_kind(self) -> str:
        """``"eager"`` or ``"mmap"`` — how the run arrays are held."""
        return "eager" if self._backend is None else self._backend.kind

    def storage_info(self) -> dict:
        """Open-mode and memory accounting for health/metrics surfaces."""
        arrays: list[np.ndarray] = [self._values, self._ids]
        for arr in (self._ids32_flat, self._rel32, self._row_top, self._keys):
            if arr is not None:
                arrays.append(arr)
        resident = sum(
            a.nbytes for a in arrays if not isinstance(a, np.memmap)
        )
        mapped = sum(a.nbytes for a in arrays if isinstance(a, np.memmap))
        source = None if self._backend is None else self._backend.source_path
        return {
            "backend": self.backend_kind,
            "source_path": None if source is None else str(source),
            "resident_bytes": int(resident),
            "mapped_bytes": int(mapped),
        }

    def mapped_arrays(self) -> dict[str, np.ndarray]:
        """File-backed run arrays by name (empty for the eager backend).

        The ops plane probes these regions with ``mincore(2)`` to
        publish page-cache residency gauges.
        """
        named = {
            "values": self._values,
            "ids": self._ids,
            "ids32": self._ids32_flat,
            "rel32": self._rel32,
            "row_top": self._row_top,
            "keys": self._keys,
        }
        return {
            name: arr
            for name, arr in named.items()
            if isinstance(arr, np.memmap)
        }

    # ------------------------------------------------------------------
    # Flat-layout internals
    # ------------------------------------------------------------------

    def _rebuild_search_keys(self) -> None:
        """(Re)build the composite flat search keys after any mutation."""
        self._ids32_flat: np.ndarray | None = None
        self._rel32: np.ndarray | None = None
        self._row_top: np.ndarray | None = None
        self._top_per_row = 0
        if self._values.size == 0:
            self._vmin = 0
            self._stride = 2
            self._keys: np.ndarray | None = self._values.ravel()
            return
        vmin = int(self._values.min())
        vmax = int(self._values.max())
        stride = vmax - vmin + 2
        self._vmin = vmin
        self._stride = stride
        if stride <= 2**31 - 2:
            # Two-level search state: int32 value-relative runs plus a
            # row-aligned coarse sample (every _TOP_STRIDE-th entry of
            # each run, as int64 composite keys so one searchsorted
            # covers all functions).  Row alignment keeps every
            # refinement window inside a single run, where int32
            # comparisons are order-faithful.
            self._keys = None
            self._rel32 = (self._values - vmin).astype(np.int32).ravel()
            self._top_per_row = -(-self._num_points // _TOP_STRIDE)
            funcs = np.arange(self._num_functions, dtype=np.int64)[:, None]
            self._row_top = (
                (self._values[:, ::_TOP_STRIDE] - vmin) + funcs * stride
            ).ravel()
        elif self._num_functions * stride < _MAX_COMPOSITE_KEY:
            # pragma: no cover - hash domains wider than int32
            funcs = np.arange(self._num_functions, dtype=np.int64)[:, None]
            self._keys = ((self._values - vmin) + funcs * stride).ravel()
        else:  # pragma: no cover - astronomically wide hash domains
            self._keys = None

    @property
    def num_functions(self) -> int:
        """Number of base hash functions materialised."""
        return self._num_functions

    @property
    def num_points(self) -> int:
        """Number of indexed points."""
        return self._num_points

    @property
    def layout(self) -> PageLayout:
        """Page layout used for I/O accounting."""
        return self._layout

    def size_bytes(self) -> int:
        """Total simulated on-disk size of all inverted lists."""
        return self._num_functions * self._layout.size_bytes(self._num_points)

    def size_mb(self) -> float:
        """Simulated index size in mebibytes."""
        return self.size_bytes() / (1024.0 * 1024.0)

    def _entry_range(self, func: int, lo: int, hi: int) -> tuple[int, int]:
        """Half-open entry range of hash values inside ``[lo, hi]``."""
        values = self._values[func]
        start = int(np.searchsorted(values, lo, side="left"))
        stop = int(np.searchsorted(values, hi, side="right"))
        return start, stop

    def _check_func(self, func: int) -> None:
        if not 0 <= func < self._num_functions:
            raise InvalidParameterError(
                f"hash function index {func} out of range "
                f"[0, {self._num_functions})"
            )

    # ------------------------------------------------------------------
    # Batched window search (the flat engine's storage primitive)
    # ------------------------------------------------------------------

    def batch_entry_positions(
        self, funcs: np.ndarray, bounds: np.ndarray, side: str
    ) -> np.ndarray:
        """Vectorised ``searchsorted`` into many runs at once.

        For every pair ``(funcs[j], bounds[j])`` returns the *absolute*
        flat position ``funcs[j] * num_points + searchsorted(run_values,
        bounds[j], side)`` — one ``np.searchsorted`` call over the
        composite key array answers all pairs.
        """
        funcs = np.asarray(funcs, dtype=np.int64)
        bounds = np.asarray(bounds, dtype=np.int64)
        if self.observer is not None:
            self.observer.on_search(int(funcs.shape[0]))
        if self._rel32 is not None:
            return self._two_level_search(funcs, bounds, side)
        if self._keys is not None:  # pragma: no cover - >int32 hash domains
            clipped = np.clip(
                bounds, self._vmin - 1, self._vmin + self._stride - 1
            )
            keys = (clipped - self._vmin) + funcs * self._stride
            return np.searchsorted(self._keys, keys, side=side)
        out = np.empty(funcs.shape[0], dtype=np.int64)  # pragma: no cover
        for j in range(funcs.shape[0]):  # pragma: no cover
            f = int(funcs[j])
            out[j] = f * self._num_points + np.searchsorted(
                self._values[f], bounds[j], side=side
            )
        return out  # pragma: no cover

    def _two_level_search(
        self, funcs: np.ndarray, bounds: np.ndarray, side: str
    ) -> np.ndarray:
        """Exact batched per-run ``searchsorted``.

        A direct composite-key ``np.searchsorted`` binary-searches each
        needle serially: ~``log2(F * n)`` *dependent* probes scattered
        over an array too large to cache, which is latency-bound.  Here a
        coarse ``searchsorted`` over the small row-aligned top index
        narrows every needle to one ``_TOP_STRIDE``-entry window of its
        own run, and a fixed number of vectorised refinement steps finish
        the search — each step is one *bulk* int32 gather whose cache
        misses overlap across all needles.
        """
        n = self._num_points
        rel = np.clip(bounds - self._vmin, -1, self._stride - 1)
        t = np.searchsorted(
            self._row_top, rel + funcs * self._stride, side=side
        )
        # ``t`` stays inside the needle's own function block (the +2
        # margin in ``stride`` separates neighbouring blocks strictly),
        # so the refinement window sits inside one run.
        j = t - funcs * self._top_per_row
        lo = np.maximum(j - 1, 0) * _TOP_STRIDE
        hi = np.minimum(j * _TOP_STRIDE, n)
        rel = rel.astype(np.int32)
        rel32 = self._rel32
        base = funcs * n
        # The window brackets the answer, so ceil(log2(_TOP_STRIDE)) + 1
        # halvings converge for every needle; once lo == hi == answer the
        # clamped probe keeps both updates no-ops (probe at ``answer``
        # compares above the needle, or ``answer == n`` and the probe at
        # ``n - 1`` sends ``lo`` back to ``n``), so no active mask is
        # needed.
        steps = int(_TOP_STRIDE - 1).bit_length() + 1
        for _ in range(steps):
            mid = np.minimum((lo + hi) >> 1, n - 1)
            probe = rel32[base + mid]
            if side == "left":
                go_right = probe < rel
            else:
                go_right = probe <= rel
            lo = np.where(go_right, mid + 1, lo)
            hi = np.where(go_right, hi, mid)
        return base + lo

    def gather_segments(self, starts: np.ndarray, lens: np.ndarray) -> IdArray:
        """Concatenated ids of entry segments ``[starts[j], starts[j] +
        lens[j])`` of the flat layout, in segment order."""
        idx = self._segment_indices(starts, lens)
        if idx is None:
            return np.empty(0, dtype=np.int64)
        if self.observer is not None:
            self.observer.on_gather(int(idx.size))
        return self._ids.ravel()[idx]

    def gather_segments32(self, starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
        """:meth:`gather_segments` from a compact int32 id shadow.

        The flat engine's block scans are bandwidth-bound streaming reads;
        halving the entry width halves the traffic.  Point ids index the
        data matrix, so they fit int32 for any store this engine can hold;
        the guard below keeps the invariant explicit rather than letting a
        hypothetical >2**31-point store silently truncate ids.
        """
        if self._num_points > 2**31 - 1:
            raise InvalidParameterError(
                f"int32 id shadow cannot represent {self._num_points} points;"
                " use gather_segments"
            )
        idx = self._segment_indices(starts, lens)
        if idx is None:
            return np.empty(0, dtype=np.int32)
        if self.observer is not None:
            self.observer.on_gather(int(idx.size))
        ids32 = self._ids32_flat
        if ids32 is None:
            ids32 = self._ids.ravel().astype(np.int32)
            self._ids32_flat = ids32
        return ids32[idx]

    def _segment_indices(self, starts: np.ndarray, lens: np.ndarray):
        total = int(lens.sum())
        if total == 0:
            return None
        offsets = np.empty(lens.shape[0], dtype=np.int64)
        offsets[0] = 0
        np.cumsum(lens[:-1], out=offsets[1:])
        idx = np.repeat(starts - offsets, lens)
        idx += self._iota(total)
        return idx

    def _iota(self, total: int) -> np.ndarray:
        """Read-only ``arange(total)`` view from a grow-only cache."""
        cache = self._iota_cache
        if cache is None or cache.shape[0] < total:
            cache = np.arange(max(total, 4096), dtype=np.int64)
            cache.setflags(write=False)
            self._iota_cache = cache
        return cache[:total]

    def _charge_segments(
        self,
        funcs: np.ndarray,
        starts: np.ndarray,
        stops: np.ndarray,
        stats: IOStats | None,
        pages: PageTracker | None,
    ) -> None:
        """Charge sequential I/O for flat entry segments (one per func).

        ``starts``/``stops`` are absolute flat positions; empty segments
        cost nothing.  With a :class:`PageTracker` the charge is
        deduplicated against previously read pages by interval arithmetic.
        """
        if stats is None and pages is None:
            return
        rel_starts = starts - funcs * self._num_points
        rel_stops = stops - funcs * self._num_points
        epp = self._layout.entries_per_page
        nonempty = rel_stops > rel_starts
        first = rel_starts // epp
        last_stop = np.where(nonempty, (rel_stops - 1) // epp + 1, first)
        if pages is None:
            total = int(np.sum(last_stop - first))
            if stats is not None:
                stats.add_sequential(total)
            return
        new = 0
        for j in np.flatnonzero(nonempty):
            new += pages.charge(int(funcs[j]), int(first[j]), int(last_stop[j]))
        if stats is not None:
            stats.add_sequential(new)

    def read_windows(
        self,
        funcs: np.ndarray,
        los: np.ndarray,
        his: np.ndarray,
        stats: IOStats | None = None,
        pages: PageTracker | None = None,
    ) -> tuple[IdArray, np.ndarray]:
        """Batched :meth:`read_window`: all windows in two ``searchsorted``.

        Returns ``(ids, bounds)`` where ``ids`` is the concatenation of
        every window's ids and ``bounds`` (length ``len(funcs) + 1``)
        delimits window ``j``'s segment as ``ids[bounds[j]:bounds[j+1]]``.
        Sequential I/O is charged per window exactly as the scalar method
        would, deduplicated against ``pages`` when given.
        """
        funcs = np.asarray(funcs, dtype=np.int64)
        los = np.asarray(los, dtype=np.int64)
        his = np.asarray(his, dtype=np.int64)
        if not (funcs.shape == los.shape == his.shape) or funcs.ndim != 1:
            raise InvalidParameterError(
                "funcs, los and his must be 1-D arrays of equal length"
            )
        if funcs.size and (funcs.min() < 0 or funcs.max() >= self._num_functions):
            raise InvalidParameterError(
                f"hash function indices must lie in [0, {self._num_functions})"
            )
        starts = self.batch_entry_positions(funcs, los, side="left")
        stops = np.maximum(
            starts, self.batch_entry_positions(funcs, his, side="right")
        )
        lens = stops - starts
        bounds = np.empty(funcs.shape[0] + 1, dtype=np.int64)
        bounds[0] = 0
        np.cumsum(lens, out=bounds[1:])
        ids = self.gather_segments(starts, lens)
        self._charge_segments(funcs, starts, stops, stats, pages)
        return ids, bounds

    def read_rings(
        self,
        funcs: np.ndarray,
        los: np.ndarray,
        his: np.ndarray,
        inner_los: np.ndarray,
        inner_his: np.ndarray,
        stats: IOStats | None = None,
        pages: PageTracker | None = None,
    ) -> tuple[IdArray, np.ndarray]:
        """Batched :meth:`read_ring` over many functions at once.

        Each ring is returned as its left side run followed by its right
        side run (matching the scalar method); ``bounds`` delimits the
        per-function segments of the concatenated ``ids``.
        """
        funcs = np.asarray(funcs, dtype=np.int64)
        los = np.asarray(los, dtype=np.int64)
        his = np.asarray(his, dtype=np.int64)
        inner_los = np.asarray(inner_los, dtype=np.int64)
        inner_his = np.asarray(inner_his, dtype=np.int64)
        degenerate = inner_los > inner_his
        bad = ~degenerate & ((los > inner_los) | (inner_his > his))
        if np.any(bad):
            j = int(np.flatnonzero(bad)[0])
            raise InvalidParameterError(
                f"inner window [{inner_los[j]}, {inner_his[j]}] must nest "
                f"inside [{los[j]}, {his[j]}]"
            )
        # Degenerate inner windows read the full [lo, hi] as their "left"
        # run and an empty right run.
        left_his = np.where(degenerate, his, inner_los - 1)
        right_los = np.where(degenerate, his + 1, inner_his + 1)
        seg_funcs = np.repeat(funcs, 2)
        seg_los = np.empty(2 * funcs.shape[0], dtype=np.int64)
        seg_his = np.empty_like(seg_los)
        seg_los[0::2] = los
        seg_his[0::2] = left_his
        seg_los[1::2] = right_los
        seg_his[1::2] = his
        ids, seg_bounds = self.read_windows(
            seg_funcs, seg_los, seg_his, stats, pages
        )
        return ids, seg_bounds[0::2]

    # ------------------------------------------------------------------
    # Scalar reads (legacy / baseline API)
    # ------------------------------------------------------------------

    def _charge_pages(
        self,
        func: int,
        start: int,
        stop: int,
        stats: IOStats | None,
        seen_pages: set[tuple[int, int]] | PageTracker | None,
    ) -> None:
        """Charge sequential I/O for entries ``[start, stop)`` of ``func``.

        When ``seen_pages`` is given (multi-query optimisation, Sec. 4.3),
        only pages not previously read in this batch are charged, and the
        tracker is updated in place.  A :class:`PageTracker` dedups by
        interval arithmetic; a plain ``set`` of ``(func, page)`` keys is
        still supported for backward compatibility.
        """
        if stats is None and seen_pages is None:
            return
        first, last_plus_one = self._layout.page_span(start, stop)
        if seen_pages is None:
            if stats is not None:
                stats.add_sequential(last_plus_one - first)
            return
        if isinstance(seen_pages, PageTracker):
            new_pages = seen_pages.charge(func, first, last_plus_one)
        else:
            new_pages = 0
            for page in range(first, last_plus_one):
                key = (func, page)
                if key not in seen_pages:
                    seen_pages.add(key)
                    new_pages += 1
        if stats is not None:
            stats.add_sequential(new_pages)

    def read_window(
        self,
        func: int,
        lo: int,
        hi: int,
        stats: IOStats | None = None,
        seen_pages: set[tuple[int, int]] | PageTracker | None = None,
    ) -> IdArray:
        """Ids of points whose base hash value lies in ``[lo, hi]``.

        Charges one sequential I/O per 4 KB page overlapped by the scanned
        entry range (deduplicated against ``seen_pages`` when provided).
        """
        self._check_func(func)
        if hi < lo:
            return np.empty(0, dtype=np.int64)
        start, stop = self._entry_range(func, lo, hi)
        if self.observer is not None:
            self.observer.on_window_read(int(stop - start))
        if stop > start:
            self._charge_pages(func, start, stop, stats, seen_pages)
        return self._ids[func, start:stop]

    def read_ring(
        self,
        func: int,
        lo: int,
        hi: int,
        inner_lo: int,
        inner_hi: int,
        stats: IOStats | None = None,
        seen_pages: set[tuple[int, int]] | PageTracker | None = None,
    ) -> IdArray:
        """Ids in ``[lo, hi]`` but outside the already-visited ``[inner_lo,
        inner_hi]`` window (Algorithm 4 line 10).

        Reads the two side runs ``[lo, inner_lo - 1]`` and
        ``[inner_hi + 1, hi]``, charging pages for each run separately (they
        are disjoint scans on disk).
        """
        self._check_func(func)
        if inner_lo > inner_hi:
            # Nothing was visited before; degenerate to a plain window read.
            return self.read_window(func, lo, hi, stats, seen_pages)
        if not (lo <= inner_lo and inner_hi <= hi):
            raise InvalidParameterError(
                f"inner window [{inner_lo}, {inner_hi}] must nest inside "
                f"[{lo}, {hi}]"
            )
        left = self.read_window(func, lo, inner_lo - 1, stats, seen_pages)
        right = self.read_window(func, inner_hi + 1, hi, stats, seen_pages)
        if left.size == 0:
            return right
        if right.size == 0:
            return left
        return np.concatenate([left, right])

    # ------------------------------------------------------------------
    # Sharding (repro.serve)
    # ------------------------------------------------------------------

    def shard_view(
        self, lo: int, hi: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Extract the contiguous id-range shard ``[lo, hi)`` of every run.

        Returns ``(values, ids, positions)``, each of shape
        ``(num_functions, hi - lo)``: for every hash function, the sorted
        sub-run of entries whose point id lies in ``[lo, hi)``, in
        original run order, plus each entry's position in the full run.
        Every run contains each point id exactly once, so the extraction
        is rectangular, and because the sub-runs preserve run order their
        window endpoints (``searchsorted`` on ``values``) restrict the
        full run's endpoints exactly — the property the sharded service's
        bit-identical I/O reconstruction relies on.

        The returned arrays are fresh copies, safe to export through
        shared memory while the store keeps serving queries.
        """
        if not 0 <= lo < hi <= self._num_points:
            raise InvalidParameterError(
                f"shard range [{lo}, {hi}) must satisfy 0 <= lo < hi <= "
                f"{self._num_points}"
            )
        mask = (self._ids >= lo) & (self._ids < hi)
        flat = np.flatnonzero(mask.ravel())
        m = hi - lo
        shape = (self._num_functions, m)
        positions = (flat % self._num_points).reshape(shape)
        values = self._values.ravel()[flat].reshape(shape)
        ids = self._ids.ravel()[flat].reshape(shape)
        return values, ids, positions

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, hash_values: np.ndarray, ids: np.ndarray) -> "InsertPlan":
        """Insert new points into every function's sorted run.

        One allocation pass: the destination slot of every old and new
        entry is computed up front (a batched ``searchsorted`` for the
        insertion positions plus a boolean scatter mask), then values and
        ids are placed into freshly allocated ``(functions, points + m)``
        matrices — instead of reallocating every run twice via per-function
        ``np.insert`` calls.

        Returns an :class:`InsertPlan` recording exactly where every new
        entry landed, so a replica holding a sub-run of each list (a shard
        worker) can apply the same placement without re-sorting.

        Parameters
        ----------
        hash_values:
            Integer matrix of shape ``(num_functions, m)``: the new
            points' base hash values.
        ids:
            Their ``m`` point ids (must not collide with existing ids;
            the store does not check — the index layer owns id assignment).
        """
        hash_values = np.asarray(hash_values)
        ids = np.asarray(ids, dtype=np.int64)
        if hash_values.ndim != 2 or hash_values.shape[0] != self._num_functions:
            raise InvalidParameterError(
                f"hash_values must have shape ({self._num_functions}, m), "
                f"got {hash_values.shape}"
            )
        if ids.shape != (hash_values.shape[1],):
            raise InvalidParameterError(
                f"ids must have shape ({hash_values.shape[1]},), got {ids.shape}"
            )
        if not np.issubdtype(hash_values.dtype, np.integer):
            raise InvalidParameterError(
                f"hash values must be integers, got dtype {hash_values.dtype}"
            )
        if ids.size == 0:
            empty = np.empty((self._num_functions, 0), dtype=np.int64)
            return InsertPlan(
                values=empty, ids=empty, rel_positions=empty,
                dest_positions=empty, old_rows=self._num_points,
            )
        num_funcs = self._num_functions
        n = self._num_points
        m = int(ids.size)
        values = hash_values.astype(np.int64)
        # Values sharing an insertion position keep their given order, so
        # sort each function's batch first to preserve the run's sortedness.
        batch_order = np.argsort(values, axis=1, kind="stable")
        values = np.take_along_axis(values, batch_order, axis=1)
        batch_ids = ids[batch_order]
        funcs_rep = np.repeat(np.arange(num_funcs, dtype=np.int64), m)
        positions = self.batch_entry_positions(
            funcs_rep, values.ravel(), side="right"
        )
        rel_positions = (positions - funcs_rep * n).reshape(num_funcs, m)
        new_n = n + m
        # Destination of new entry r of function f: its insertion position
        # shifted by the r new entries placed before it and the function's
        # new row offset.
        dest = (
            np.arange(num_funcs, dtype=np.int64)[:, None] * new_n
            + rel_positions
            + np.arange(m, dtype=np.int64)[None, :]
        ).ravel()
        taken = np.zeros(num_funcs * new_n, dtype=bool)
        taken[dest] = True
        new_values = np.empty(num_funcs * new_n, dtype=np.int64)
        new_ids = np.empty(num_funcs * new_n, dtype=np.int64)
        new_values[dest] = values.ravel()
        new_ids[dest] = batch_ids.ravel()
        new_values[~taken] = self._values.ravel()
        new_ids[~taken] = self._ids.ravel()
        self._values = new_values.reshape(num_funcs, new_n)
        self._ids = new_ids.reshape(num_funcs, new_n)
        self._num_points = new_n
        self._rebuild_search_keys()
        # The fresh runs live in RAM regardless of how the old ones were
        # held: a previously mmap-backed store materialises on mutation.
        self._backend = None
        self._id_order = None
        self._ids_by_id = None
        return InsertPlan(
            values=values,
            ids=batch_ids,
            rel_positions=rel_positions,
            dest_positions=rel_positions + np.arange(m, dtype=np.int64)[None, :],
            old_rows=n,
        )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def window_page_cost(self, func: int, lo: int, hi: int) -> int:
        """Pages a :meth:`read_window` call would charge, without reading."""
        self._check_func(func)
        if hi < lo:
            return 0
        start, stop = self._entry_range(func, lo, hi)
        return self._layout.pages_for_range(start, stop)

    def bucket_of(self, func: int, point_id: int) -> int:
        """Base hash value of ``point_id`` under function ``func``.

        Intended for tests and diagnostics (the forward map is normally the
        hash bank's job, not the store's).  The id -> run-position map is a
        lazily built inverse permutation, so lookups are O(log n) instead
        of an O(n) scan.
        """
        self._check_func(func)
        if self._id_order is None or self._ids_by_id is None:
            self._id_order = np.argsort(self._ids, axis=1, kind="stable")
            self._ids_by_id = np.take_along_axis(self._ids, self._id_order, axis=1)
        row = self._ids_by_id[func]
        pos = int(np.searchsorted(row, point_id))
        if pos >= row.shape[0] or int(row[pos]) != int(point_id):
            raise InvalidParameterError(
                f"point id {point_id} is not stored in the inverted lists"
            )
        return int(self._values[func, self._id_order[func, pos]])
