"""Per-hash-function inverted lists backing virtual rehashing.

The materialised base index of LazyLSH/C2LSH stores, for every base hash
function ``h*_i``, the list of ``(hash value, point id)`` pairs sorted by
hash value.  Retrieving every point whose base bucket lies inside a hash
window ``[lo, hi]`` is then one contiguous scan of the sorted run — exactly
what virtual rehashing (C2LSH) and query-centric rehashing (LazyLSH)
exploit.  Sequential I/O is charged per overlapped 4 KB page of the run.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IdArray
from repro.errors import InvalidParameterError
from repro.storage.io_stats import IOStats
from repro.storage.pages import PageLayout


class InvertedListStore:
    """Sorted ``(hash value, id)`` runs, one per base hash function.

    Parameters
    ----------
    hash_values:
        Integer matrix of shape ``(num_functions, num_points)`` where entry
        ``[i, j]`` is ``h*_i`` applied to point ``j``.
    layout:
        Page layout used for sequential-I/O accounting; defaults to 4 KB
        pages with 8-byte entries.
    """

    def __init__(
        self, hash_values: np.ndarray, layout: PageLayout | None = None
    ) -> None:
        hash_values = np.asarray(hash_values)
        if hash_values.ndim != 2:
            raise InvalidParameterError(
                f"hash_values must be 2-D (functions x points), got shape "
                f"{hash_values.shape}"
            )
        if not np.issubdtype(hash_values.dtype, np.integer):
            raise InvalidParameterError(
                f"hash values must be integers, got dtype {hash_values.dtype}"
            )
        self._layout = layout or PageLayout()
        num_functions, num_points = hash_values.shape
        self._num_functions = int(num_functions)
        self._num_points = int(num_points)
        order = np.argsort(hash_values, axis=1, kind="stable")
        sorted_ids = order.astype(np.int64)
        sorted_values = np.take_along_axis(hash_values.astype(np.int64), order, axis=1)
        # Per-function 1-D runs (a list, not a matrix, so that inserts can
        # grow individual runs without reallocating everything).
        self._sorted_ids = [sorted_ids[i] for i in range(self._num_functions)]
        self._sorted_values = [sorted_values[i] for i in range(self._num_functions)]

    @property
    def num_functions(self) -> int:
        """Number of base hash functions materialised."""
        return self._num_functions

    @property
    def num_points(self) -> int:
        """Number of indexed points."""
        return self._num_points

    @property
    def layout(self) -> PageLayout:
        """Page layout used for I/O accounting."""
        return self._layout

    def size_bytes(self) -> int:
        """Total simulated on-disk size of all inverted lists."""
        return self._num_functions * self._layout.size_bytes(self._num_points)

    def size_mb(self) -> float:
        """Simulated index size in mebibytes."""
        return self.size_bytes() / (1024.0 * 1024.0)

    def _entry_range(self, func: int, lo: int, hi: int) -> tuple[int, int]:
        """Half-open entry range of hash values inside ``[lo, hi]``."""
        values = self._sorted_values[func]
        start = int(np.searchsorted(values, lo, side="left"))
        stop = int(np.searchsorted(values, hi, side="right"))
        return start, stop

    def _check_func(self, func: int) -> None:
        if not 0 <= func < self._num_functions:
            raise InvalidParameterError(
                f"hash function index {func} out of range "
                f"[0, {self._num_functions})"
            )

    def _charge_pages(
        self,
        func: int,
        start: int,
        stop: int,
        stats: IOStats | None,
        seen_pages: set[tuple[int, int]] | None,
    ) -> None:
        """Charge sequential I/O for entries ``[start, stop)`` of ``func``.

        When ``seen_pages`` is given (multi-query optimisation, Sec. 4.3),
        only pages not previously read in this batch are charged, and the
        set is updated in place.
        """
        if stats is None and seen_pages is None:
            return
        first, last_plus_one = self._layout.page_span(start, stop)
        if seen_pages is None:
            if stats is not None:
                stats.add_sequential(last_plus_one - first)
            return
        new_pages = 0
        for page in range(first, last_plus_one):
            key = (func, page)
            if key not in seen_pages:
                seen_pages.add(key)
                new_pages += 1
        if stats is not None:
            stats.add_sequential(new_pages)

    def read_window(
        self,
        func: int,
        lo: int,
        hi: int,
        stats: IOStats | None = None,
        seen_pages: set[tuple[int, int]] | None = None,
    ) -> IdArray:
        """Ids of points whose base hash value lies in ``[lo, hi]``.

        Charges one sequential I/O per 4 KB page overlapped by the scanned
        entry range (deduplicated against ``seen_pages`` when provided).
        """
        self._check_func(func)
        if hi < lo:
            return np.empty(0, dtype=np.int64)
        start, stop = self._entry_range(func, lo, hi)
        if stop > start:
            self._charge_pages(func, start, stop, stats, seen_pages)
        return self._sorted_ids[func][start:stop]

    def read_ring(
        self,
        func: int,
        lo: int,
        hi: int,
        inner_lo: int,
        inner_hi: int,
        stats: IOStats | None = None,
        seen_pages: set[tuple[int, int]] | None = None,
    ) -> IdArray:
        """Ids in ``[lo, hi]`` but outside the already-visited ``[inner_lo,
        inner_hi]`` window (Algorithm 4 line 10).

        Reads the two side runs ``[lo, inner_lo - 1]`` and
        ``[inner_hi + 1, hi]``, charging pages for each run separately (they
        are disjoint scans on disk).
        """
        self._check_func(func)
        if inner_lo > inner_hi:
            # Nothing was visited before; degenerate to a plain window read.
            return self.read_window(func, lo, hi, stats, seen_pages)
        if not (lo <= inner_lo and inner_hi <= hi):
            raise InvalidParameterError(
                f"inner window [{inner_lo}, {inner_hi}] must nest inside "
                f"[{lo}, {hi}]"
            )
        left = self.read_window(func, lo, inner_lo - 1, stats, seen_pages)
        right = self.read_window(func, inner_hi + 1, hi, stats, seen_pages)
        if left.size == 0:
            return right
        if right.size == 0:
            return left
        return np.concatenate([left, right])

    def insert(self, hash_values: np.ndarray, ids: np.ndarray) -> None:
        """Insert new points into every function's sorted run.

        Parameters
        ----------
        hash_values:
            Integer matrix of shape ``(num_functions, m)``: the new
            points' base hash values.
        ids:
            Their ``m`` point ids (must not collide with existing ids;
            the store does not check — the index layer owns id assignment).
        """
        hash_values = np.asarray(hash_values)
        ids = np.asarray(ids, dtype=np.int64)
        if hash_values.ndim != 2 or hash_values.shape[0] != self._num_functions:
            raise InvalidParameterError(
                f"hash_values must have shape ({self._num_functions}, m), "
                f"got {hash_values.shape}"
            )
        if ids.shape != (hash_values.shape[1],):
            raise InvalidParameterError(
                f"ids must have shape ({hash_values.shape[1]},), got {ids.shape}"
            )
        if not np.issubdtype(hash_values.dtype, np.integer):
            raise InvalidParameterError(
                f"hash values must be integers, got dtype {hash_values.dtype}"
            )
        if ids.size == 0:
            return
        for func in range(self._num_functions):
            values = hash_values[func].astype(np.int64)
            # Values sharing an insertion position keep their given order
            # in numpy.insert, so sort the batch first to preserve the
            # run's sortedness.
            batch_order = np.argsort(values, kind="stable")
            values = values[batch_order]
            batch_ids = ids[batch_order]
            positions = np.searchsorted(
                self._sorted_values[func], values, side="right"
            )
            self._sorted_values[func] = np.insert(
                self._sorted_values[func], positions, values
            )
            self._sorted_ids[func] = np.insert(
                self._sorted_ids[func], positions, batch_ids
            )
        self._num_points += int(ids.size)

    def window_page_cost(self, func: int, lo: int, hi: int) -> int:
        """Pages a :meth:`read_window` call would charge, without reading."""
        self._check_func(func)
        if hi < lo:
            return 0
        start, stop = self._entry_range(func, lo, hi)
        return self._layout.pages_for_range(start, stop)

    def bucket_of(self, func: int, point_id: int) -> int:
        """Base hash value of ``point_id`` under function ``func``.

        Intended for tests and diagnostics (the forward map is normally the
        hash bank's job, not the store's).
        """
        self._check_func(func)
        pos = int(np.where(self._sorted_ids[func] == point_id)[0][0])
        return int(self._sorted_values[func][pos])
