"""Block-layout arithmetic for fixed-size records on simulated 4 KB pages.

The inverted lists of the base index are modelled as densely packed runs of
fixed-size entries (a 4-byte hash value plus a 4-byte point id, as in the
C2LSH/LazyLSH C++ implementations).  A :class:`PageLayout` translates entry
ranges into page ranges so that the store can charge the right number of
sequential I/Os for a window read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError

#: Page size used throughout the paper's evaluation.
DEFAULT_PAGE_SIZE = 4096

#: Bytes per inverted-list entry: 4-byte hash value + 4-byte point id.
DEFAULT_ENTRY_SIZE = 8


@dataclass(frozen=True)
class PageLayout:
    """Maps entry indices of a packed run onto fixed-size pages."""

    page_size: int = DEFAULT_PAGE_SIZE
    entry_size: int = DEFAULT_ENTRY_SIZE

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise InvalidParameterError(f"page_size must be > 0, got {self.page_size}")
        if self.entry_size <= 0:
            raise InvalidParameterError(
                f"entry_size must be > 0, got {self.entry_size}"
            )
        if self.entry_size > self.page_size:
            raise InvalidParameterError(
                "entry_size must not exceed page_size "
                f"({self.entry_size} > {self.page_size})"
            )

    @property
    def entries_per_page(self) -> int:
        """How many whole entries fit on one page (no entry spans pages)."""
        return self.page_size // self.entry_size

    def page_of_entry(self, entry_index: int) -> int:
        """Page number holding ``entry_index``."""
        if entry_index < 0:
            raise InvalidParameterError(f"entry index must be >= 0, got {entry_index}")
        return entry_index // self.entries_per_page

    def pages_for_range(self, start: int, stop: int) -> int:
        """Number of pages overlapped by entries ``[start, stop)``.

        An empty range costs zero pages.
        """
        if start < 0 or stop < start:
            raise InvalidParameterError(
                f"invalid entry range [{start}, {stop})"
            )
        if stop == start:
            return 0
        first = self.page_of_entry(start)
        last = self.page_of_entry(stop - 1)
        return last - first + 1

    def page_span(self, start: int, stop: int) -> tuple[int, int]:
        """Half-open page-number interval covering entries ``[start, stop)``.

        Returns ``(first_page, last_page + 1)``; empty range returns an
        empty interval anchored at the start page.
        """
        if stop == start:
            first = self.page_of_entry(max(start, 0)) if start >= 0 else 0
            return first, first
        first = self.page_of_entry(start)
        last = self.page_of_entry(stop - 1)
        return first, last + 1

    def pages_for_bytes(self, n_bytes: int) -> int:
        """Pages needed to hold ``n_bytes`` of packed data."""
        if n_bytes < 0:
            raise InvalidParameterError(f"byte count must be >= 0, got {n_bytes}")
        return -(-n_bytes // self.page_size)

    def size_bytes(self, n_entries: int) -> int:
        """Total on-disk bytes of a run with ``n_entries``, page-aligned."""
        return self.pages_for_bytes(n_entries * self.entry_size) * self.page_size


class PageTracker:
    """Per-query buffer pool tracked as disjoint page intervals.

    Replaces the page-``set`` bookkeeping of early versions: a query's
    window scans touch contiguous, mostly-nested page runs, so the pages
    already charged for one inverted list form one (rarely a few)
    intervals.  Charging a new scan is then interval arithmetic — O(number
    of intervals) instead of O(pages in the scan) — while producing
    exactly the same counts as the set-based dedup.
    """

    __slots__ = ("_intervals",)

    def __init__(self) -> None:
        self._intervals: dict[int, list[tuple[int, int]]] = {}

    def charge(self, func: int, first: int, stop: int) -> int:
        """Record pages ``[first, stop)`` of ``func`` as read.

        Returns how many of them were *new* (not previously charged).
        """
        if stop <= first:
            return 0
        runs = self._intervals.get(func)
        if runs is None:
            self._intervals[func] = [(first, stop)]
            return stop - first
        lo, hi = first, stop
        new = stop - first
        left = []
        right = []
        for a, b in runs:
            if b < lo:
                left.append((a, b))
            elif a > hi:
                right.append((a, b))
            else:
                new -= max(0, min(b, stop) - max(a, first))
                lo = min(lo, a)
                hi = max(hi, b)
        self._intervals[func] = left + [(lo, hi)] + right
        return new

    def pages(self, func: int | None = None) -> int:
        """Distinct pages charged so far (for ``func``, or in total)."""
        if func is not None:
            return sum(b - a for a, b in self._intervals.get(func, []))
        return sum(
            b - a for runs in self._intervals.values() for a, b in runs
        )

    def __contains__(self, key: tuple[int, int]) -> bool:
        func, page = key
        return any(a <= page < b for a, b in self._intervals.get(func, []))
