"""Unified search request/response surface shared by every query path.

Every way of asking this library for neighbours — ``LazyLSH.knn`` (one
query, one metric), ``MultiQueryEngine.knn`` (one query, many metrics),
``knn_batch`` (many queries) and the sharded
:class:`~repro.serve.ShardedSearchService` — speaks the same two types:

* :class:`SearchRequest` bundles the query vector with every tuning knob
  (``k``, metric ``p`` or a ``metrics`` list, optional ``cap``/``radius``
  overrides, the execution ``engine``), so a request built once can be
  handed to any path unchanged;
* :class:`SearchResult` is the common result core carrying ``ids``,
  ``distances``, the simulated :class:`~repro.storage.io_stats.IOStats`,
  the Algorithm-4 ``termination`` reason and an optional
  :class:`~repro.obs.QueryTrace`.  ``KnnResult`` is a thin subclass kept
  for backwards compatibility; ``MultiQueryResult`` and
  ``BatchKnnResult`` expose the same attribute protocol
  (:class:`SearchResultLike`) over their per-metric / per-query parts.

The module sits below ``repro.core`` so both the engines and the serving
layer can import it without cycles.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np

from repro._typing import IdArray
from repro.errors import InvalidParameterError, WireFormatError
from repro.storage.io_stats import IOStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.query_trace import QueryTrace

#: Version stamped on (and required in) every wire-encoded request and
#: response body.  Bump only with a new, co-served schema — the wire
#: contract outlives any one frontend.
WIRE_VERSION = 1

#: The complete key set of a v1 wire request.  ``from_dict`` rejects
#: anything else: strict schemas make client typos loud (a silently
#: ignored ``"K"`` would be a wrong answer, not an error).
_WIRE_REQUEST_KEYS = frozenset(
    (
        "v",
        "query",
        "k",
        "p",
        "metrics",
        "cap",
        "radius",
        "engine",
        "request_id",
        "trace_context",
        "deadline_ms",
        "explain",
        "max_lag_lsn",
    )
)

_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")


def _coerce_trace_context(value: Any) -> Any:
    """Accept a TraceContext, a ``traceparent`` string, or a dict.

    Imported lazily: ``repro.obs.trace_context`` depends only on
    ``repro.errors``, so this cannot cycle back into ``repro.api``.
    """
    from repro.obs.trace_context import TraceContext

    if isinstance(value, TraceContext):
        return value
    if isinstance(value, str):
        return TraceContext.from_traceparent(value)
    if isinstance(value, dict):
        return TraceContext.from_dict(value)
    raise InvalidParameterError(
        "trace_context must be a TraceContext, a traceparent string or a "
        f"dict, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class SearchRequest:
    """One search, fully specified: query point(s) plus tuning knobs.

    Attributes
    ----------
    query:
        The query vector — or a ``(m, d)`` matrix when handed to
        ``knn_batch``, which answers every row.
    k:
        Number of neighbours requested (``Np(q, k, c)``).
    p:
        The ``lp`` metric to search under (ignored when ``metrics`` is
        given).
    metrics:
        Optional tuple of metrics; the request is then answered under
        every listed ``p`` with one shared index scan (Section 4.3).
    cap:
        Optional candidate-budget override; the default is the paper's
        ``k + beta * n``.  Must be at least ``k``.
    radius:
        Optional starting search radius (``delta_0``) override; the
        default is ``1 / r_hat`` (one base bucket).  Single-metric only —
        the multi-metric shared scan relies on every metric's round-``j``
        radius being ``c**j / r_hat``.
    engine:
        Execution plan: ``"flat"`` (vectorised, default) or ``"scalar"``
        (reference loop).  The sharded service ignores this and always
        runs its own distributed flat plan.
    request_id:
        Optional caller-chosen id echoed back on the result, for log
        correlation.  Hex string; defaults to None (the serving layer
        mints one per sampled request).
    trace_context:
        Optional :class:`~repro.obs.TraceContext` (or its
        ``traceparent`` string / dict form) joining this request to a
        distributed trace.  When sampled, every query path opens its
        spans under this trace and the sharded service ships it to
        workers so shard scans appear as child spans (DESIGN §13).
    deadline_ms:
        Optional latency budget in milliseconds.  Advisory: the search
        always runs to completion (results stay bit-identical), but
        overruns are flagged on the result, counted in
        ``lazylsh_deadline_overruns_total`` and trip the flight
        recorder.
    explain:
        Request a structured EXPLAIN record (DESIGN §15) on
        ``SearchResult.explain``: per-round windows scanned, candidates
        promoted, termination-counter progress, I/O deltas and (for
        sharded runs) shard skew.  Answers stay bit-identical; only the
        report rides along.  Currently honoured by the sharded service
        and its HTTP front door.
    max_lag_lsn:
        Optional staleness bound for cluster reads (DESIGN §16): the
        request may be served by any replica whose acked LSN is within
        this many records of the cluster commit point (``0`` = only a
        fully caught-up node).  Enforced by the cluster router — a
        single node accepts and ignores it (a lone node is its own
        commit point).  Rejected with a typed ``stale_read`` error when
        no eligible node qualifies.
    """

    query: Any
    k: int
    p: float = 1.0
    metrics: tuple[float, ...] | None = None
    cap: float | None = None
    radius: float | None = None
    engine: str = "flat"
    request_id: str | None = None
    trace_context: Any = None
    deadline_ms: float | None = None
    explain: bool = False
    max_lag_lsn: int | None = None

    def __post_init__(self) -> None:
        if int(self.k) < 1:
            raise InvalidParameterError(f"k must be >= 1, got {self.k}")
        if self.metrics is not None:
            object.__setattr__(
                self, "metrics", tuple(float(p) for p in self.metrics)
            )
            if not self.metrics:
                raise InvalidParameterError("metrics must be non-empty")
        if self.cap is not None and self.cap < self.k:
            raise InvalidParameterError(
                f"candidate cap must be >= k={self.k}, got {self.cap}"
            )
        if self.radius is not None and not self.radius > 0:
            raise InvalidParameterError(
                f"radius override must be > 0, got {self.radius}"
            )
        if self.engine not in ("flat", "scalar"):
            raise InvalidParameterError(
                f"engine must be 'flat' or 'scalar', got {self.engine!r}"
            )
        if self.metrics is not None and self.radius is not None:
            raise InvalidParameterError(
                "radius override is only supported for single-metric searches"
            )
        try:
            query = np.asarray(self.query, dtype=np.float64)
        except (TypeError, ValueError):
            raise InvalidParameterError(
                "query must be a numeric vector or matrix"
            ) from None
        if query.ndim not in (1, 2) or query.size == 0:
            raise InvalidParameterError(
                f"query must be a non-empty vector or (m, d) matrix, got "
                f"shape {query.shape}"
            )
        if not np.all(np.isfinite(query)):
            raise InvalidParameterError("query contains non-finite values")
        object.__setattr__(self, "query", query)
        if self.request_id is not None:
            rid = str(self.request_id)
            if not rid or set(rid) - _HEX_DIGITS:
                raise InvalidParameterError(
                    f"request_id must be a non-empty hex string, got {rid!r}"
                )
        if self.trace_context is not None:
            object.__setattr__(
                self, "trace_context", _coerce_trace_context(self.trace_context)
            )
        if self.deadline_ms is not None and not float(self.deadline_ms) > 0:
            raise InvalidParameterError(
                f"deadline_ms must be > 0, got {self.deadline_ms}"
            )
        object.__setattr__(self, "explain", bool(self.explain))
        if self.max_lag_lsn is not None:
            try:
                bound = int(self.max_lag_lsn)
            except (TypeError, ValueError):
                raise InvalidParameterError(
                    f"max_lag_lsn must be an integer, got "
                    f"{self.max_lag_lsn!r}"
                ) from None
            if bound < 0:
                raise InvalidParameterError(
                    f"max_lag_lsn must be >= 0, got {bound}"
                )
            object.__setattr__(self, "max_lag_lsn", bound)

    # -- versioned wire codec (DESIGN §14) -----------------------------

    def to_dict(self) -> dict:
        """The v1 wire form (the HTTP request body, JSON-serialisable).

        Always carries ``"v"``, ``"query"``, ``"k"``, ``"engine"`` and
        either ``"metrics"`` or ``"p"`` (``p`` is ignored when a metrics
        list is present, so only one of the two is emitted); optional
        knobs appear only when set.  ``from_dict`` round-trips the
        output exactly.
        """
        record: dict[str, Any] = {
            "v": WIRE_VERSION,
            "query": np.asarray(self.query, dtype=np.float64).tolist(),
            "k": int(self.k),
            "engine": self.engine,
        }
        if self.metrics is not None:
            record["metrics"] = [float(p) for p in self.metrics]
        else:
            record["p"] = float(self.p)
        if self.cap is not None:
            record["cap"] = float(self.cap)
        if self.radius is not None:
            record["radius"] = float(self.radius)
        if self.request_id is not None:
            record["request_id"] = str(self.request_id)
        if self.trace_context is not None:
            record["trace_context"] = self.trace_context.to_traceparent()
        if self.deadline_ms is not None:
            record["deadline_ms"] = float(self.deadline_ms)
        if self.explain:
            record["explain"] = True
        if self.max_lag_lsn is not None:
            record["max_lag_lsn"] = int(self.max_lag_lsn)
        return record

    @classmethod
    def from_dict(cls, record: Any) -> "SearchRequest":
        """Decode one v1 wire request (strict).

        Raises :class:`~repro.errors.WireFormatError` on structural
        problems — a non-dict body, unknown keys, missing ``v``/
        ``query``/``k``, or an unsupported version — and lets the
        constructor's domain validation
        (:class:`~repro.errors.InvalidParameterError`) handle the rest.
        Unknown keys are rejected rather than ignored so schema typos
        fail loudly instead of silently changing the query.
        """
        if not isinstance(record, dict):
            raise WireFormatError(
                f"request body must be a JSON object, got "
                f"{type(record).__name__}"
            )
        unknown = set(record) - _WIRE_REQUEST_KEYS
        if unknown:
            raise WireFormatError(
                f"unknown request field(s): {sorted(unknown)}; "
                f"v{WIRE_VERSION} accepts {sorted(_WIRE_REQUEST_KEYS)}"
            )
        if "v" not in record:
            raise WireFormatError("request is missing the version field 'v'")
        if record["v"] != WIRE_VERSION:
            raise WireFormatError(
                f"unsupported wire version {record['v']!r}; this server "
                f"speaks v{WIRE_VERSION}"
            )
        missing = [key for key in ("query", "k") if key not in record]
        if missing:
            raise WireFormatError(
                f"request is missing required field(s): {missing}"
            )
        metrics = record.get("metrics")
        if metrics is not None:
            try:
                metrics = tuple(float(p) for p in metrics)
            except (TypeError, ValueError):
                raise WireFormatError(
                    f"metrics must be a list of numbers, got {metrics!r}"
                ) from None
        try:
            k = int(record["k"])
        except (TypeError, ValueError):
            raise WireFormatError(
                f"k must be an integer, got {record['k']!r}"
            ) from None
        return cls(
            query=record["query"],
            k=k,
            p=float(record.get("p", 1.0)),
            metrics=metrics,
            cap=record.get("cap"),
            radius=record.get("radius"),
            engine=record.get("engine", "flat"),
            request_id=record.get("request_id"),
            trace_context=record.get("trace_context"),
            deadline_ms=record.get("deadline_ms"),
            explain=bool(record.get("explain", False)),
            max_lag_lsn=record.get("max_lag_lsn"),
        )


@dataclass
class SearchResult:
    """Common result core of every query path.

    ``ids``/``distances`` are sorted by ascending ``lp`` distance;
    ``io`` is the query's simulated I/O, ``termination`` why Algorithm 4
    stopped (``"k_within_radius"`` or ``"candidate_cap"``).  ``trace``
    optionally carries the per-round :class:`~repro.obs.QueryTrace` when
    telemetry was enabled, and ``shard_io`` the per-shard I/O breakdown
    when the result came from the sharded service.  ``request_id`` and
    ``trace_id`` echo the request's correlation ids when it was traced
    (``/trace/<trace_id>`` then serves the full span tree);
    ``deadline_exceeded`` is True when the request carried a
    ``deadline_ms`` and the search overran it.  ``explain`` carries the
    structured EXPLAIN record (a plain dict conforming to
    :data:`~repro.obs.explain.EXPLAIN_SCHEMA`) when the request set
    ``explain=True``.
    """

    ids: IdArray
    distances: np.ndarray
    p: float
    k: int
    io: IOStats = field(default_factory=IOStats)
    candidates: int = 0
    rounds: int = 0
    termination: str = ""
    trace: "QueryTrace | None" = None
    shard_io: list[IOStats] | None = None
    request_id: str | None = None
    trace_id: str | None = None
    deadline_exceeded: bool = False
    explain: dict | None = None

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the CLI and the service)."""
        record = {
            "v": WIRE_VERSION,
            "ids": [int(i) for i in self.ids],
            "distances": [float(d) for d in self.distances],
            "p": self.p,
            "k": self.k,
            "io": self.io.to_dict(),
            "candidates": self.candidates,
            "rounds": self.rounds,
            "termination": self.termination,
        }
        if self.shard_io is not None:
            record["shard_io"] = [s.to_dict() for s in self.shard_io]
        if self.request_id is not None:
            record["request_id"] = self.request_id
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.deadline_exceeded:
            record["deadline_exceeded"] = True
        if self.explain is not None:
            record["explain"] = self.explain
        return record


@runtime_checkable
class SearchResultLike(Protocol):
    """Structural protocol every result type satisfies.

    ``KnnResult`` implements it directly (it *is* a
    :class:`SearchResult`); ``MultiQueryResult`` exposes per-metric
    dicts and ``BatchKnnResult`` per-query lists under the same names.
    """

    @property
    def ids(self) -> Any: ...

    @property
    def distances(self) -> Any: ...

    @property
    def io(self) -> IOStats: ...

    @property
    def termination(self) -> Any: ...

    def to_dict(self) -> dict: ...


def aggregate_io(parts) -> IOStats:
    """Streaming I/O aggregation shared by batch and shard mergers.

    ``parts`` yields objects with an ``io`` attribute *or* plain
    :class:`IOStats`; the result is their :meth:`IOStats.merge` fold.
    """
    total = IOStats()
    for part in parts:
        total.merge(part.io if hasattr(part, "io") else part)
    return total


def strict_api_enabled() -> bool:
    """True when ``REPRO_STRICT_API=1``: deprecations become errors.

    Checked at call time (not import time) so a test suite can flip the
    environment variable per test.  Any value other than the empty
    string or ``"0"`` enables strict mode.
    """
    return os.environ.get("REPRO_STRICT_API", "0") not in ("", "0")


def warn_deprecated(message: str, *, stacklevel: int = 3) -> None:
    """Emit a DeprecationWarning, or raise it under ``REPRO_STRICT_API=1``.

    The strict-mode error is :class:`~repro.errors.InvalidParameterError`
    so HTTP callers see a 400 (``invalid_parameter``), not a 500.
    """
    if strict_api_enabled():
        raise InvalidParameterError(
            f"{message} (rejected because REPRO_STRICT_API=1)"
        )
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel + 1)


def warn_positional(callable_name: str, replacement: str) -> None:
    """Flag legacy positional args: warn, or error under strict mode."""
    warn_deprecated(
        f"passing {replacement} to {callable_name} positionally is "
        f"deprecated; use the keyword form ({replacement}=...) or a "
        "SearchRequest",
        stacklevel=3,
    )
