"""Unified search request/response surface shared by every query path.

Every way of asking this library for neighbours — ``LazyLSH.knn`` (one
query, one metric), ``MultiQueryEngine.knn`` (one query, many metrics),
``knn_batch`` (many queries) and the sharded
:class:`~repro.serve.ShardedSearchService` — speaks the same two types:

* :class:`SearchRequest` bundles the query vector with every tuning knob
  (``k``, metric ``p`` or a ``metrics`` list, optional ``cap``/``radius``
  overrides, the execution ``engine``), so a request built once can be
  handed to any path unchanged;
* :class:`SearchResult` is the common result core carrying ``ids``,
  ``distances``, the simulated :class:`~repro.storage.io_stats.IOStats`,
  the Algorithm-4 ``termination`` reason and an optional
  :class:`~repro.obs.QueryTrace`.  ``KnnResult`` is a thin subclass kept
  for backwards compatibility; ``MultiQueryResult`` and
  ``BatchKnnResult`` expose the same attribute protocol
  (:class:`SearchResultLike`) over their per-metric / per-query parts.

The module sits below ``repro.core`` so both the engines and the serving
layer can import it without cycles.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np

from repro._typing import IdArray
from repro.errors import InvalidParameterError
from repro.storage.io_stats import IOStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.query_trace import QueryTrace


def _coerce_trace_context(value: Any) -> Any:
    """Accept a TraceContext, a ``traceparent`` string, or a dict.

    Imported lazily: ``repro.obs.trace_context`` depends only on
    ``repro.errors``, so this cannot cycle back into ``repro.api``.
    """
    from repro.obs.trace_context import TraceContext

    if isinstance(value, TraceContext):
        return value
    if isinstance(value, str):
        return TraceContext.from_traceparent(value)
    if isinstance(value, dict):
        return TraceContext.from_dict(value)
    raise InvalidParameterError(
        "trace_context must be a TraceContext, a traceparent string or a "
        f"dict, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class SearchRequest:
    """One search, fully specified: query point(s) plus tuning knobs.

    Attributes
    ----------
    query:
        The query vector — or a ``(m, d)`` matrix when handed to
        ``knn_batch``, which answers every row.
    k:
        Number of neighbours requested (``Np(q, k, c)``).
    p:
        The ``lp`` metric to search under (ignored when ``metrics`` is
        given).
    metrics:
        Optional tuple of metrics; the request is then answered under
        every listed ``p`` with one shared index scan (Section 4.3).
    cap:
        Optional candidate-budget override; the default is the paper's
        ``k + beta * n``.  Must be at least ``k``.
    radius:
        Optional starting search radius (``delta_0``) override; the
        default is ``1 / r_hat`` (one base bucket).  Single-metric only —
        the multi-metric shared scan relies on every metric's round-``j``
        radius being ``c**j / r_hat``.
    engine:
        Execution plan: ``"flat"`` (vectorised, default) or ``"scalar"``
        (reference loop).  The sharded service ignores this and always
        runs its own distributed flat plan.
    request_id:
        Optional caller-chosen id echoed back on the result, for log
        correlation.  Hex string; defaults to None (the serving layer
        mints one per sampled request).
    trace_context:
        Optional :class:`~repro.obs.TraceContext` (or its
        ``traceparent`` string / dict form) joining this request to a
        distributed trace.  When sampled, every query path opens its
        spans under this trace and the sharded service ships it to
        workers so shard scans appear as child spans (DESIGN §13).
    deadline_ms:
        Optional latency budget in milliseconds.  Advisory: the search
        always runs to completion (results stay bit-identical), but
        overruns are flagged on the result, counted in
        ``lazylsh_deadline_overruns_total`` and trip the flight
        recorder.
    """

    query: Any
    k: int
    p: float = 1.0
    metrics: tuple[float, ...] | None = None
    cap: float | None = None
    radius: float | None = None
    engine: str = "flat"
    request_id: str | None = None
    trace_context: Any = None
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if int(self.k) < 1:
            raise InvalidParameterError(f"k must be >= 1, got {self.k}")
        if self.metrics is not None:
            object.__setattr__(
                self, "metrics", tuple(float(p) for p in self.metrics)
            )
            if not self.metrics:
                raise InvalidParameterError("metrics must be non-empty")
        if self.cap is not None and self.cap < self.k:
            raise InvalidParameterError(
                f"candidate cap must be >= k={self.k}, got {self.cap}"
            )
        if self.radius is not None and not self.radius > 0:
            raise InvalidParameterError(
                f"radius override must be > 0, got {self.radius}"
            )
        if self.engine not in ("flat", "scalar"):
            raise InvalidParameterError(
                f"engine must be 'flat' or 'scalar', got {self.engine!r}"
            )
        if self.metrics is not None and self.radius is not None:
            raise InvalidParameterError(
                "radius override is only supported for single-metric searches"
            )
        if self.request_id is not None and not str(self.request_id).strip():
            raise InvalidParameterError("request_id must be non-empty")
        if self.trace_context is not None:
            object.__setattr__(
                self, "trace_context", _coerce_trace_context(self.trace_context)
            )
        if self.deadline_ms is not None and not float(self.deadline_ms) > 0:
            raise InvalidParameterError(
                f"deadline_ms must be > 0, got {self.deadline_ms}"
            )


@dataclass
class SearchResult:
    """Common result core of every query path.

    ``ids``/``distances`` are sorted by ascending ``lp`` distance;
    ``io`` is the query's simulated I/O, ``termination`` why Algorithm 4
    stopped (``"k_within_radius"`` or ``"candidate_cap"``).  ``trace``
    optionally carries the per-round :class:`~repro.obs.QueryTrace` when
    telemetry was enabled, and ``shard_io`` the per-shard I/O breakdown
    when the result came from the sharded service.  ``request_id`` and
    ``trace_id`` echo the request's correlation ids when it was traced
    (``/trace/<trace_id>`` then serves the full span tree);
    ``deadline_exceeded`` is True when the request carried a
    ``deadline_ms`` and the search overran it.
    """

    ids: IdArray
    distances: np.ndarray
    p: float
    k: int
    io: IOStats = field(default_factory=IOStats)
    candidates: int = 0
    rounds: int = 0
    termination: str = ""
    trace: "QueryTrace | None" = None
    shard_io: list[IOStats] | None = None
    request_id: str | None = None
    trace_id: str | None = None
    deadline_exceeded: bool = False

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the CLI and the service)."""
        record = {
            "ids": [int(i) for i in self.ids],
            "distances": [float(d) for d in self.distances],
            "p": self.p,
            "k": self.k,
            "io": self.io.to_dict(),
            "candidates": self.candidates,
            "rounds": self.rounds,
            "termination": self.termination,
        }
        if self.shard_io is not None:
            record["shard_io"] = [s.to_dict() for s in self.shard_io]
        if self.request_id is not None:
            record["request_id"] = self.request_id
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.deadline_exceeded:
            record["deadline_exceeded"] = True
        return record


@runtime_checkable
class SearchResultLike(Protocol):
    """Structural protocol every result type satisfies.

    ``KnnResult`` implements it directly (it *is* a
    :class:`SearchResult`); ``MultiQueryResult`` exposes per-metric
    dicts and ``BatchKnnResult`` per-query lists under the same names.
    """

    @property
    def ids(self) -> Any: ...

    @property
    def distances(self) -> Any: ...

    @property
    def io(self) -> IOStats: ...

    @property
    def termination(self) -> Any: ...

    def to_dict(self) -> dict: ...


def aggregate_io(parts) -> IOStats:
    """Streaming I/O aggregation shared by batch and shard mergers.

    ``parts`` yields objects with an ``io`` attribute *or* plain
    :class:`IOStats`; the result is their :meth:`IOStats.merge` fold.
    """
    total = IOStats()
    for part in parts:
        total.merge(part.io if hasattr(part, "io") else part)
    return total


def warn_positional(callable_name: str, replacement: str) -> None:
    """Emit the shared deprecation warning for legacy positional args."""
    warnings.warn(
        f"passing {replacement} to {callable_name} positionally is "
        f"deprecated; use the keyword form ({replacement}=...) or a "
        "SearchRequest",
        DeprecationWarning,
        stacklevel=3,
    )
