"""Exception hierarchy for the LazyLSH reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """A configuration or query parameter is outside its valid domain."""


class UnsupportedMetricError(ReproError, ValueError):
    """The requested ``lp`` metric cannot be served.

    Raised either because ``p`` is outside ``(0, 2]`` (no p-stable
    distribution exists), or because the materialised index was not built
    with enough hash functions (``eta_p``) to cover the requested metric
    (Section 3.3 of the paper), or because the locality-sensitive gap
    ``p1' - p2'`` is non-positive for the requested metric so no theoretical
    guarantee can be given (e.g. ``p < ~0.44`` for an l1 base index in
    R^128 with c = 2).
    """


class IndexNotBuiltError(ReproError, RuntimeError):
    """A query was issued against an index whose ``build`` was never run."""


class DimensionalityMismatchError(ReproError, ValueError):
    """A query vector's dimensionality differs from the indexed data's."""


class DatasetError(ReproError, ValueError):
    """A dataset generator was asked for an unknown dataset or bad shape."""
