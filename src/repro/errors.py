"""Exception hierarchy for the LazyLSH reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.

Error taxonomy
--------------

Every class carries a stable, machine-readable :attr:`ReproError.code`
(snake_case, never renamed once shipped).  The HTTP front door maps codes
to status codes (see ``repro.serve.frontend.HTTP_STATUS_BY_CODE``):
invalid-request codes become 400, :class:`OverloadedError` 429,
:class:`ServiceUnhealthyError` 503 and everything else 500.  Wire error
bodies are ``{"v": 1, "error": {"code": ..., "message": ...}}`` —
clients should dispatch on ``code``, never on the human-readable message.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library.

    :attr:`code` is the stable machine-readable identifier of the error
    class; subclasses override it once and never change it afterwards
    (it is part of the wire API).
    """

    code: str = "internal"


class InvalidParameterError(ReproError, ValueError):
    """A configuration or query parameter is outside its valid domain."""

    code = "invalid_parameter"


class WireFormatError(ReproError, ValueError):
    """A wire-encoded request/response body violates the versioned schema.

    Raised by the :meth:`repro.api.SearchRequest.from_dict` codec on
    unknown keys, missing required keys, or an unsupported ``"v"`` —
    deliberately distinct from :class:`InvalidParameterError` so clients
    can tell "your JSON is malformed" from "your parameters are out of
    domain".
    """

    code = "wire_format"


class UnsupportedMetricError(ReproError, ValueError):
    """The requested ``lp`` metric cannot be served.

    Raised either because ``p`` is outside ``(0, 2]`` (no p-stable
    distribution exists), or because the materialised index was not built
    with enough hash functions (``eta_p``) to cover the requested metric
    (Section 3.3 of the paper), or because the locality-sensitive gap
    ``p1' - p2'`` is non-positive for the requested metric so no theoretical
    guarantee can be given (e.g. ``p < ~0.44`` for an l1 base index in
    R^128 with c = 2).
    """

    code = "unsupported_metric"


class IndexNotBuiltError(ReproError, RuntimeError):
    """A query was issued against an index whose ``build`` was never run."""

    code = "index_not_built"


class DimensionalityMismatchError(ReproError, ValueError):
    """A query vector's dimensionality differs from the indexed data's."""

    code = "dimensionality_mismatch"


class DatasetError(ReproError, ValueError):
    """A dataset generator was asked for an unknown dataset or bad shape."""

    code = "dataset_error"


class OverloadedError(ReproError):
    """The serving front door's admission queue is full (HTTP 429).

    Backpressure, not failure: the request was rejected *before* any
    index work happened, so the client should retry after a backoff.
    """

    code = "overloaded"


class ServiceUnhealthyError(ReproError):
    """The shard fleet behind the front door is unhealthy (HTTP 503).

    Raised when :meth:`~repro.serve.ShardedSearchService.health` reports
    ``healthy: false`` (a dead worker, a closed service) — the request
    was not attempted.
    """

    code = "unhealthy"


class UnavailableError(ReproError):
    """No node can serve the request right now (HTTP 503).

    Raised by the front door while the backing service is mid-failover
    (unhealthy fleet, bounded wait expired) and by the cluster router
    when every candidate node is down or unreachable.  Transient: the
    client should retry after a backoff — by then the router has either
    failed over or the fleet has repaired itself.
    """

    code = "unavailable"


class StaleReadError(ReproError):
    """No replica satisfies the request's staleness bound (HTTP 503).

    Raised by the cluster router when a request carries ``max_lag_lsn``
    and every healthy node lags the cluster commit point by more than
    that bound.  Distinct from :class:`UnavailableError`: nodes *are*
    serving, just not fresh enough — retry, relax the bound, or wait
    for replication to catch up.
    """

    code = "stale_read"


class WalGapError(ReproError):
    """The update stream skipped ahead of the service's acked LSN.

    Raised by :meth:`~repro.serve.ShardedSearchService.ingest` when a
    record arrives whose LSN is not ``acked_lsn + 1``.  Carries both
    sides of the mismatch (:attr:`expected`, :attr:`received`) so a
    replication follower can surface the gap as a typed wire error and
    resume the stream from the right position instead of guessing from
    the message text.
    """

    code = "wal_gap"

    def __init__(self, expected: int, received: int) -> None:
        self.expected = int(expected)
        self.received = int(received)
        super().__init__(
            f"update gap: service expected LSN {self.expected} but "
            f"received {self.received}; replay the WAL from the acked LSN"
        )

    def __reduce__(self):
        # Exceptions pickle as ``cls(*args)``; args holds the rendered
        # message, so rebuild from the structured fields instead.
        return (WalGapError, (self.expected, self.received))
