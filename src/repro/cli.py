"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------

``params``
    Print the per-metric internal parameters (r_hat, p1', p2', eta_p,
    theta_p) the engine would use for a given geometry — the Section 3.3
    computation, no data needed.

``build``
    Build a LazyLSH index over a dataset (a ``.npy`` file or a named
    generated dataset) and save it with :mod:`repro.persistence`.

``query``
    Load a saved index and run kNN queries under one or more metrics.

``datasets``
    List the generated datasets available to ``build``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro import LazyLSH, LazyLSHConfig
from repro.core.params import ParameterEngine
from repro.datasets import (
    SIMULATED_DATASET_NAMES,
    load_simulated,
    make_synthetic,
)
from repro.errors import ReproError, UnsupportedMetricError
from repro.eval.harness import ResultTable
from repro.persistence import load_index, save_index


def _parse_p_list(text: str) -> list[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def cmd_params(args: argparse.Namespace) -> int:
    engine = ParameterEngine(
        args.d,
        c=args.c,
        epsilon=args.epsilon,
        beta=args.beta,
        mc_samples=args.mc_samples,
        seed=args.seed,
    )
    table = ResultTable(
        f"LazyLSH parameters (d={args.d}, c={args.c:g}, eps={args.epsilon}, "
        f"beta={args.beta})",
        ["p", "r_hat", "p1'", "p2'", "gap", "eta_p", "theta_p"],
    )
    for p in _parse_p_list(args.p):
        try:
            mp = engine.metric_params(p)
        except UnsupportedMetricError:
            table.add_row([p, "-", "-", "-", "-", "-", "not sensitive"])
            continue
        table.add_row(
            [
                p,
                round(mp.r_hat, 6),
                round(mp.p1_prime, 4),
                round(mp.p2_prime, 4),
                round(mp.gap, 4),
                mp.eta,
                round(mp.theta, 1),
            ]
        )
    print(table.render())
    return 0


def _load_dataset(spec: str, n: int | None, seed: int) -> np.ndarray:
    path = Path(spec)
    if path.suffix == ".npy" and path.exists():
        return np.load(path)
    if spec in SIMULATED_DATASET_NAMES:
        return load_simulated(spec, n=n, seed=seed)
    if spec.startswith("synthetic:"):
        # synthetic:<n>x<d>
        shape = spec.split(":", 1)[1]
        n_str, d_str = shape.split("x")
        return make_synthetic(int(n_str), int(d_str), seed=seed)
    raise ReproError(
        f"unknown dataset {spec!r}: expected a .npy path, one of "
        f"{SIMULATED_DATASET_NAMES}, or synthetic:<n>x<d>"
    )


def cmd_build(args: argparse.Namespace) -> int:
    data = _load_dataset(args.dataset, args.n, args.seed)
    config = LazyLSHConfig(
        c=args.c,
        p_min=args.p_min,
        seed=args.seed,
        mc_samples=args.mc_samples,
    )
    index = LazyLSH(config).build(data)
    path = save_index(index, args.output)
    print(
        f"built index over {index.num_points} x {index.dimensionality} points: "
        f"eta={index.eta}, {index.index_size_mb():.1f} MB (simulated), "
        f"saved to {path}"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    index = load_index(args.index)
    if args.query_file:
        queries = np.atleast_2d(np.load(args.query_file))
    else:
        queries = index.data[[args.row]]
    table = ResultTable(
        f"kNN results (k={args.k})",
        ["query", "p", "ids", "distances", "seq I/O", "rnd I/O"],
    )
    for qi, query in enumerate(queries):
        for p in _parse_p_list(args.p):
            result = index.knn(query, args.k, p)
            table.add_row(
                [
                    qi,
                    p,
                    " ".join(str(i) for i in result.ids[:8]),
                    " ".join(f"{d:.1f}" for d in result.distances[:8]),
                    result.io.sequential,
                    result.io.random,
                ]
            )
    print(table.render())
    return 0


def cmd_datasets(_args: argparse.Namespace) -> int:
    print("generated datasets usable with `build`:")
    for name in SIMULATED_DATASET_NAMES:
        print(f"  {name}")
    print("  synthetic:<n>x<d>   (uniform integers, Table 3 workload)")
    print("  <path>.npy          (your own float matrix)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="LazyLSH reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_params = sub.add_parser("params", help="show per-metric parameters")
    p_params.add_argument("--d", type=int, required=True, help="dimensionality")
    p_params.add_argument("--c", type=float, default=3.0, help="approximation ratio")
    p_params.add_argument("--epsilon", type=float, default=0.01)
    p_params.add_argument("--beta", type=float, default=1e-4)
    p_params.add_argument(
        "--p", default="0.5,0.6,0.7,0.8,0.9,1.0", help="comma-separated metrics"
    )
    p_params.add_argument("--mc-samples", type=int, default=50_000)
    p_params.add_argument("--seed", type=int, default=7)
    p_params.set_defaults(func=cmd_params)

    p_build = sub.add_parser("build", help="build and save an index")
    p_build.add_argument("dataset", help=".npy path, dataset name, or synthetic:<n>x<d>")
    p_build.add_argument("output", help="output index path (.npz)")
    p_build.add_argument("--n", type=int, default=None, help="cardinality override")
    p_build.add_argument("--c", type=float, default=3.0)
    p_build.add_argument("--p-min", type=float, default=0.5)
    p_build.add_argument("--mc-samples", type=int, default=50_000)
    p_build.add_argument("--seed", type=int, default=7)
    p_build.set_defaults(func=cmd_build)

    p_query = sub.add_parser("query", help="query a saved index")
    p_query.add_argument("index", help="index .npz path")
    p_query.add_argument("--k", type=int, default=10)
    p_query.add_argument("--p", default="0.5,1.0", help="comma-separated metrics")
    p_query.add_argument(
        "--row", type=int, default=0, help="use this indexed row as the query"
    )
    p_query.add_argument(
        "--query-file", default=None, help=".npy file of query vectors"
    )
    p_query.set_defaults(func=cmd_query)

    p_list = sub.add_parser("datasets", help="list generated datasets")
    p_list.set_defaults(func=cmd_datasets)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
