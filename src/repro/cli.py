"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------

``params``
    Print the per-metric internal parameters (r_hat, p1', p2', eta_p,
    theta_p) the engine would use for a given geometry — the Section 3.3
    computation, no data needed.

``build``
    Build a LazyLSH index over a dataset (a ``.npy`` file or a named
    generated dataset) and save it with :mod:`repro.persistence`.

``query``
    Load a saved index and run kNN queries under one or more metrics,
    reporting per-query simulated I/O and wall-clock time.

``trace``
    Run a query workload with telemetry enabled and write one
    structured :class:`~repro.obs.QueryTrace` per query as JSONL.

``stats``
    Run a query workload with telemetry enabled and print the metrics
    registry (Prometheus text format, or JSON with ``--format json``).
    With ``--shards N`` the workload runs through the sharded service
    and a per-shard random-I/O breakdown table is printed next to the
    totals.

``serve``
    Load (or build) an index, start the sharded multiprocess query
    service, answer a query workload through it and print the merged
    results plus per-shard service stats as JSON.  ``--metrics-port``
    additionally starts the ops exporter (``/metrics``, ``/healthz``,
    ``/slowlog``, ``/profile``) plus the workload-analytics sketches,
    ``--profile-hz`` the continuous sampling profiler, ``--audit-rate``
    the online guarantee auditor, and ``--http-port`` the async HTTP
    front door (``POST /v1/search`` with request coalescing and an
    epoch-invalidated result cache).  ``--log-level``/``--log-json``
    configure structured logging for the ``repro.*`` namespace.

``explain``
    Run one or more queries with ``explain=True`` through the sharded
    service (or a running front door via ``--url``) and render the
    per-round plan/cost report — windows scanned, candidates promoted,
    termination progress, per-shard skew.

``top``
    Live one-screen operations view: polls a running exporter's
    ``/metrics`` + ``/healthz`` (+ ``/slowlog``) and renders per-shard
    QPS, p50/p99 latency, I/O, audit recall, profiler phase mix,
    workload demand and recent slow queries with trace links.

``bench-serve``
    Run the sharded-service benchmark (wall-clock + load-balance model,
    bit-identity verification against the single-process engine) and
    print — or write — the JSON report.

``datasets``
    List the generated datasets available to ``build``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import LazyLSH, LazyLSHConfig
from repro.core.batch import knn_batch
from repro.core.params import ParameterEngine
from repro.datasets import (
    SIMULATED_DATASET_NAMES,
    load_simulated,
    make_synthetic,
)
from repro.errors import ReproError, UnsupportedMetricError
from repro.eval.harness import ResultTable, Timer
from repro.obs import Telemetry
from repro.persistence import load_index, mmap_capable, save_index


def _parse_p_list(text: str) -> list[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def cmd_params(args: argparse.Namespace) -> int:
    engine = ParameterEngine(
        args.d,
        c=args.c,
        epsilon=args.epsilon,
        beta=args.beta,
        mc_samples=args.mc_samples,
        seed=args.seed,
    )
    table = ResultTable(
        f"LazyLSH parameters (d={args.d}, c={args.c:g}, eps={args.epsilon}, "
        f"beta={args.beta})",
        ["p", "r_hat", "p1'", "p2'", "gap", "eta_p", "theta_p"],
    )
    for p in _parse_p_list(args.p):
        try:
            mp = engine.metric_params(p)
        except UnsupportedMetricError:
            table.add_row([p, "-", "-", "-", "-", "-", "not sensitive"])
            continue
        table.add_row(
            [
                p,
                round(mp.r_hat, 6),
                round(mp.p1_prime, 4),
                round(mp.p2_prime, 4),
                round(mp.gap, 4),
                mp.eta,
                round(mp.theta, 1),
            ]
        )
    print(table.render())
    return 0


def _load_dataset(spec: str, n: int | None, seed: int) -> np.ndarray:
    path = Path(spec)
    if path.suffix == ".npy" and path.exists():
        return np.load(path)
    if spec in SIMULATED_DATASET_NAMES:
        return load_simulated(spec, n=n, seed=seed)
    if spec.startswith("synthetic:"):
        # synthetic:<n>x<d>
        shape = spec.split(":", 1)[1]
        n_str, d_str = shape.split("x")
        return make_synthetic(int(n_str), int(d_str), seed=seed)
    raise ReproError(
        f"unknown dataset {spec!r}: expected a .npy path, one of "
        f"{SIMULATED_DATASET_NAMES}, or synthetic:<n>x<d>"
    )


def cmd_build(args: argparse.Namespace) -> int:
    data = _load_dataset(args.dataset, args.n, args.seed)
    config = LazyLSHConfig(
        c=args.c,
        p_min=args.p_min,
        seed=args.seed,
        mc_samples=args.mc_samples,
    )
    index = LazyLSH(config).build(data)
    path = save_index(index, args.output, format_version=args.format_version)
    print(
        f"built index over {index.num_points} x {index.dimensionality} points: "
        f"eta={index.eta}, {index.index_size_mb():.1f} MB (simulated), "
        f"saved to {path} (format v{args.format_version or 2})"
    )
    return 0


def _workload_queries(index, args: argparse.Namespace) -> np.ndarray:
    if args.query_file:
        return np.atleast_2d(np.load(args.query_file))
    return index.data[[args.row]]


def cmd_query(args: argparse.Namespace) -> int:
    index = load_index(args.index)
    queries = _workload_queries(index, args)
    table = ResultTable(
        f"kNN results (k={args.k})",
        [
            "query",
            "p",
            "ids",
            "distances",
            "seq I/O",
            "rnd I/O",
            "total I/O",
            "ms",
        ],
    )
    timer = Timer()
    for qi, query in enumerate(queries):
        for p in _parse_p_list(args.p):
            with timer:
                result = index.knn(query, args.k, p=p)
            table.add_row(
                [
                    qi,
                    p,
                    " ".join(str(i) for i in result.ids[:8]),
                    " ".join(f"{d:.1f}" for d in result.distances[:8]),
                    result.io.sequential,
                    result.io.random,
                    result.io.total,
                    round(timer.seconds * 1e3, 3),
                ]
            )
    print(table.render())
    print(
        f"{timer.entries} queries in {timer.total_seconds * 1e3:.3f} ms "
        "(wall clock)"
    )
    return 0


def _run_traced_workload(args: argparse.Namespace) -> tuple[Telemetry, int]:
    """Run the shared ``trace``/``stats`` workload; returns telemetry."""
    # trace shares this loader but has no --backend flag; default eager.
    index = load_index(args.index, backend=getattr(args, "backend", "eager"))
    queries = _workload_queries(index, args)
    metrics = _parse_p_list(args.p)
    telemetry = Telemetry()
    telemetry.observe_store(index.store)
    with telemetry.tracer.span("cli.workload", queries=int(queries.shape[0])):
        if len(metrics) == 1:
            knn_batch(
                index,
                queries,
                args.k,
                p=metrics[0],
                engine=args.engine,
                telemetry=telemetry,
            )
        else:
            knn_batch(
                index,
                queries,
                args.k,
                metrics=metrics,
                engine=args.engine,
                telemetry=telemetry,
            )
    index.store.observer = None
    return telemetry, int(queries.shape[0])


def cmd_trace(args: argparse.Namespace) -> int:
    telemetry, num_queries = _run_traced_workload(args)
    path = telemetry.export_traces_jsonl(args.output)
    summary = telemetry.summary()
    print(
        f"traced {num_queries} queries ({len(telemetry.traces)} traces) "
        f"-> {path}"
    )
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.spans:
        spans_path = telemetry.tracer.export_jsonl(args.spans)
        print(f"spans -> {spans_path}")
    return 0


def _run_sharded_workload(
    args: argparse.Namespace,
) -> tuple[Telemetry, list]:
    """The ``stats --shards N`` workload: run through the service."""
    from repro.serve import ShardedSearchService

    backend = getattr(args, "backend", "eager")
    index = load_index(args.index, backend=backend)
    queries = _workload_queries(index, args)
    metrics = _parse_p_list(args.p)
    if len(metrics) != 1:
        raise ReproError(
            "stats --shards answers one metric per wave; pass a single --p"
        )
    telemetry = Telemetry()
    attach = "mmap" if backend == "mmap" else "shm"
    with ShardedSearchService(
        index, n_shards=args.shards, attach=attach
    ) as service:
        results = service.search_batch(
            queries, args.k, p=metrics[0], telemetry=telemetry
        )
    return telemetry, results


def _shard_io_table(results: list) -> str:
    """Per-shard random-I/O breakdown of a sharded run's results."""
    n_shards = len(results[0].shard_io)
    per_shard = [0] * n_shards
    for result in results:
        for sid, io in enumerate(result.shard_io):
            per_shard[sid] += io.random
    total_random = sum(per_shard)
    table = ResultTable(
        "per-shard random I/O (candidate fetches, by owning shard)",
        ["shard", "random I/O", "share"],
    )
    for sid, random_io in enumerate(per_shard):
        share = random_io / total_random if total_random else 0.0
        table.add_row([sid, random_io, f"{share:.1%}"])
    table.add_row(["total", total_random, "100.0%"])
    return table.render()


def cmd_stats(args: argparse.Namespace) -> int:
    if args.shards:
        telemetry, results = _run_sharded_workload(args)
    else:
        telemetry, _num_queries = _run_traced_workload(args)
        results = []
    if args.format == "json":
        report = telemetry.metrics_dict()
        if results:
            report["shard_io"] = [
                [io.to_dict() for io in result.shard_io]
                for result in results
            ]
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(telemetry.metrics_text(), end="")
        if results:
            print()
            print(_shard_io_table(results))
    return 0


def _parse_id_list(text: str) -> np.ndarray:
    return np.array(
        [int(part) for part in text.split(",") if part.strip()], dtype=np.int64
    )


def cmd_ingest(args: argparse.Namespace) -> int:
    """Apply durable updates to a WAL-backed index home directory."""
    from repro import durability

    home = Path(args.home)
    report: dict = {"home": str(home)}
    if args.init is not None:
        data = _load_dataset(args.init, args.n, args.seed)
        config = LazyLSHConfig(
            c=args.c,
            p_min=args.p_min,
            seed=args.seed,
            mc_samples=args.mc_samples,
        )
        index = LazyLSH(config).build(data)
        durable = durability.create(index, home, sync=not args.no_fsync)
        report["initialized"] = True
        report["points"] = int(index.num_points)
    else:
        durable, recovery = durability.recover(
            home, sync=not args.no_fsync, backend=args.backend
        )
        report["initialized"] = False
        report["recovery"] = recovery
    rng = np.random.default_rng(args.seed)
    lsn_before = durable.last_lsn
    records = 0
    timer = Timer()
    try:
        with timer:
            for _ in range(args.batches):
                if args.insert is not None:
                    batch = _load_dataset(args.insert, None, args.seed)
                    if args.jitter:
                        batch = batch + rng.normal(
                            0.0, args.jitter, size=batch.shape
                        )
                    durable.insert(batch)
                    records += 1
            if args.remove:
                durable.remove(_parse_id_list(args.remove))
                records += 1
        if args.checkpoint:
            report["checkpoint"] = str(
                durability.checkpoint_now(
                    durable,
                    home,
                    format_version=args.format_version,
                    compress=not args.no_compress,
                )
            )
        report.update(
            {
                "fsync": not args.no_fsync,
                "lsn_before": int(lsn_before),
                "lsn_after": int(durable.last_lsn),
                "records_committed": records,
                "live_points": int(durable.num_points),
                "total_rows": int(durable.num_rows),
                "wall_seconds": timer.seconds,
                "records_per_second": (
                    records / timer.seconds if timer.seconds else None
                ),
            }
        )
    finally:
        durable.close()
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """Recover a WAL-backed index home and report what replay did."""
    from repro import durability
    from repro.durability.checkpoint import (
        RecoveryError,
        _reference_index_from,
        states_identical,
    )

    home = Path(args.home)
    durable, report = durability.recover(home)
    try:
        out = {"home": str(home), "recovery": report}
        if args.verify:
            try:
                reference = _reference_index_from(home)
            except RecoveryError as exc:
                out["verified"] = None
                out["verify_skipped"] = str(exc)
            else:
                queries = reference.data[
                    : min(4, reference.data.shape[0])
                ]
                out["verified"] = bool(
                    states_identical(
                        durable.index, reference, queries=queries, k=args.k
                    )
                )
                if not out["verified"]:
                    print(json.dumps(out, indent=2, sort_keys=True))
                    raise ReproError(
                        "recovered index diverges from the full-history "
                        "reference replay"
                    )
        if args.checkpoint:
            out["checkpoint"] = str(durability.checkpoint_now(durable, home))
    finally:
        durable.close()
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.logconfig import configure_logging
    from repro.obs import (
        ContinuousProfiler,
        FlightRecorder,
        GuaranteeAuditor,
        ObsExporter,
        PagingMetrics,
        SLOEngine,
        SLOSpec,
        SlowQueryLog,
        TraceStore,
        WorkloadAnalytics,
        counter_ratio_sli,
        error_rate_sli,
        latency_sli,
    )
    from repro.obs.telemetry import LATENCY_BUCKETS
    from repro.serve import Frontend, ShardedSearchService

    configure_logging(args.log_level, json_format=args.log_json)

    feed = None
    base_lsn = 0
    if args.wal is not None:
        from repro.durability import (
            CHECKPOINT_SUBDIR,
            WAL_SUBDIR,
            WalFeed,
            latest_checkpoint,
        )

        home = Path(args.wal)
        found = latest_checkpoint(home / CHECKPOINT_SUBDIR)
        if found is None:
            raise ReproError(
                f"{home} holds no loadable checkpoint; run `repro ingest "
                f"{home} --init <dataset>` first"
            )
        base_lsn, ckpt_path = found
        # Old-format checkpoints cannot be mapped; degrade quietly.
        backend = args.backend if mmap_capable(ckpt_path) else "eager"
        index = load_index(ckpt_path, backend=backend)
        # Read-only tail of the (possibly live) log: never truncates.
        feed = WalFeed(home / WAL_SUBDIR, start_lsn=base_lsn)
        print(
            f"serving from {ckpt_path.name} (LSN {base_lsn}, "
            f"{backend} open), tailing {home / WAL_SUBDIR}",
            file=sys.stderr,
        )
    elif args.index is not None:
        index = load_index(args.index, backend=args.backend)
    else:
        raise ReproError("serve needs an index path or --wal <home-dir>")
    queries = _workload_queries(index, args)
    metrics = _parse_p_list(args.p)
    if len(metrics) != 1:
        raise ReproError(
            "serve answers one metric per wave; pass a single --p (use "
            "`query` or knn_batch(metrics=...) for multi-metric runs)"
        )
    ops_plane = args.metrics_port is not None
    frontend = None
    telemetry = auditor = exporter = slowlog = None
    trace_store = flight = slo = paging = None
    profiler = workload = None
    if ops_plane:
        slowlog = SlowQueryLog(
            capacity=128,
            latency_threshold_seconds=args.slow_ms / 1e3
            if args.slow_ms
            else None,
        )
        trace_store = TraceStore(capacity=64)
        telemetry = Telemetry(
            capture_traces=False,
            slowlog=slowlog,
            trace_store=trace_store,
            trace_sample=args.trace_sample,
        )
        flight = FlightRecorder(
            registry=telemetry.registry,
            trace_store=trace_store,
            slowlog=slowlog,
            dump_dir=args.flight_dir,
        )
        telemetry.flight_recorder = flight
        workload = WorkloadAnalytics(registry=telemetry.registry)
        telemetry.workload = workload
        profiler = ContinuousProfiler(
            registry=telemetry.registry,
            hz=args.profile_hz if args.profile_hz > 0 else 29.0,
        )
        if args.profile_hz > 0:
            # Continuous sampling; with --profile-hz 0 the profiler is
            # still attached so /profile?seconds=N captures on demand.
            profiler.start()
        if args.audit_rate > 0:
            auditor = GuaranteeAuditor(
                index,
                registry=telemetry.registry,
                sample_rate=args.audit_rate,
                flight_recorder=flight,
            )
        slo = SLOEngine(telemetry.registry)
        if args.slo_latency_ms > 0:
            threshold = args.slo_latency_ms / 1e3
            if threshold not in LATENCY_BUCKETS:
                allowed = ", ".join(f"{b * 1e3:g}" for b in LATENCY_BUCKETS)
                raise ReproError(
                    f"--slo-latency-ms must be a histogram bucket bound "
                    f"(one of {allowed} ms), got {args.slo_latency_ms:g}"
                )
            slo.add(SLOSpec(
                "latency",
                objective=args.slo_objective,
                sli=latency_sli(
                    telemetry.registry.histogram(
                        "lazylsh_query_latency_seconds",
                        "Wall-clock query latency",
                        buckets=LATENCY_BUCKETS,
                    ),
                    threshold,
                ),
                description=f"queries under {args.slo_latency_ms:g} ms",
            ))
        if auditor is not None:
            slo.add(SLOSpec(
                "recall_guarantee",
                objective=max(0.05, min(0.95, auditor.bound)),
                sli=counter_ratio_sli(
                    telemetry.registry.counter(
                        "lazylsh_audit_successes_total",
                        "Audited queries meeting the Theorem-1 bound",
                    ),
                    telemetry.registry.counter(
                        "lazylsh_audit_samples_total",
                        "Queries audited by linear scan",
                    ),
                ),
                description="audited queries meeting the Theorem-1 bound",
            ))
        slo.add(SLOSpec(
            "wave_replays",
            objective=0.95,
            sli=error_rate_sli(
                telemetry.registry.counter(
                    "lazylsh_wave_replays_total",
                    "Query waves replayed after worker repair",
                ),
                telemetry.registry.counter(
                    "lazylsh_queries_total", "Queries served"
                ),
            ),
            description="queries answered without a wave replay",
        ))
        paging = PagingMetrics(telemetry.registry)
    storage = index.storage_info()
    if telemetry is not None:
        registry = telemetry.registry
        registry.gauge(
            "lazylsh_store_resident_bytes",
            "Index bytes held in process RAM (eager arrays + mutable state)",
        ).set(float(storage["resident_bytes"]))
        registry.gauge(
            "lazylsh_store_mapped_bytes",
            "Index bytes memory-mapped from the v3 file (OS page cache)",
        ).set(float(storage["mapped_bytes"]))
        registry.gauge(
            "lazylsh_store_backend_info",
            "Storage backend of the serving index (1 = active)",
        ).set(1.0, backend=storage["backend"])
    timer = Timer()
    try:
        with ShardedSearchService(
            index,
            n_shards=args.shards,
            start_method=args.start_method,
            telemetry=telemetry,
            auditor=auditor,
            base_lsn=base_lsn,
            attach="mmap" if storage["backend"] == "mmap" else "shm",
        ) as service:
            if feed is not None:
                applied = service.ingest(feed.poll())
                if applied:
                    print(
                        f"applied {applied} WAL records "
                        f"(now at LSN {service.acked_lsn})",
                        file=sys.stderr,
                    )
            if ops_plane:
                flight.health = service.health
                exporter = ObsExporter(
                    telemetry.registry,
                    health=service.health,
                    slowlog=slowlog,
                    trace_store=trace_store,
                    slo=slo,
                    profiler=profiler,
                    port=args.metrics_port,
                ).start()
                print(f"ops endpoints: {exporter.url}/metrics "
                      f"{exporter.url}/healthz {exporter.url}/slowlog "
                      f"{exporter.url}/trace {exporter.url}/profile",
                      file=sys.stderr)
            if args.http_port is not None:
                frontend = Frontend(
                    service,
                    port=args.http_port,
                    coalesce_ms=args.coalesce_ms,
                    max_pending=args.max_pending,
                    cache_capacity=args.cache_capacity,
                    registry=(
                        telemetry.registry if telemetry is not None else None
                    ),
                ).start()
                print(
                    f"http front door: POST {frontend.url}/v1/search "
                    f"(GET {frontend.url}/v1/health "
                    f"{frontend.url}/v1/stats)",
                    file=sys.stderr,
                )
            with timer:
                results = service.search_batch(queries, args.k, p=metrics[0])
            if auditor is not None:
                auditor.drain(timeout=60.0)
            report = {
                "k": args.k,
                "p": metrics[0],
                "wall_seconds": timer.seconds,
                "results": [result.to_dict() for result in results],
                "service": service.stats(),
            }
            if auditor is not None:
                report["audit"] = auditor.summary()
            if ops_plane:
                report["paging"] = paging.update(
                    stores=index.mapped_regions()
                )
                report["slo"] = slo.tick()
                report["flight"] = flight.stats()
                report["traces"] = trace_store.stats()
                report["workload"] = workload.stats()
                report["profile"] = profiler.stats()
            if frontend is not None:
                report["frontend"] = frontend.stats()
            if args.linger:
                print(
                    f"serving ops endpoints for {args.linger:g}s "
                    "(ctrl-C to stop early)",
                    file=sys.stderr,
                )
                deadline = time.monotonic() + args.linger
                try:
                    while time.monotonic() < deadline:
                        if feed is not None:
                            # Through the front door so its result cache
                            # sees the epoch bump (same call when no
                            # --http-port: Frontend.ingest delegates).
                            sink = (
                                frontend if frontend is not None else service
                            )
                            applied = sink.ingest(feed.poll())
                            if applied:
                                print(
                                    f"applied {applied} WAL records "
                                    f"(now at LSN {service.acked_lsn})",
                                    file=sys.stderr,
                                )
                        if ops_plane:
                            paging.update(stores=index.mapped_regions())
                        remaining = deadline - time.monotonic()
                        step = (
                            min(args.poll_interval, remaining)
                            if feed is not None or ops_plane
                            else remaining
                        )
                        if step > 0:
                            time.sleep(step)
                except KeyboardInterrupt:
                    pass
                if frontend is not None:
                    # Re-snapshot: include the traffic served while
                    # lingering, not just the warm-up batch.
                    report["frontend"] = frontend.stats()
    finally:
        if frontend is not None:
            frontend.stop()
        if exporter is not None:
            exporter.stop()
        if profiler is not None:
            profiler.stop()
        if auditor is not None:
            auditor.close()
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def _cluster_linger(linger: float | None, tick) -> None:
    """Run ``tick()`` every loop until ``linger`` elapses (None = forever).

    Ctrl-C exits cleanly in either mode — cluster roles are daemons, so
    the default is to serve until interrupted; ``--linger N`` bounds the
    run for smoke tests and benchmarks.
    """
    deadline = None if linger is None else time.monotonic() + float(linger)
    try:
        while deadline is None or time.monotonic() < deadline:
            tick()
    except KeyboardInterrupt:
        pass


def cmd_cluster_lead(args: argparse.Namespace) -> int:
    """Serve a durable home as the cluster leader and ship its WAL."""
    from repro.cluster import WalShipper
    from repro.durability import (
        CHECKPOINT_SUBDIR,
        WAL_SUBDIR,
        WalFeed,
        latest_checkpoint,
    )
    from repro.logconfig import configure_logging
    from repro.obs import MetricsRegistry, ObsExporter
    from repro.serve import Frontend, ShardedSearchService

    configure_logging(args.log_level, json_format=args.log_json)
    home = Path(args.home)
    found = latest_checkpoint(home / CHECKPOINT_SUBDIR)
    if found is None:
        raise ReproError(
            f"{home} holds no loadable checkpoint; run `repro ingest "
            f"{home} --init <dataset>` first"
        )
    base_lsn, ckpt_path = found
    backend = args.backend if mmap_capable(ckpt_path) else "eager"
    index = load_index(ckpt_path, backend=backend)
    feed = WalFeed(home / WAL_SUBDIR, start_lsn=base_lsn)
    registry = MetricsRegistry()
    frontend = exporter = None
    # Order matters: the service forks its shard workers BEFORE any
    # listening socket exists, so no worker inherits (and pins) the
    # replication or HTTP port — see DESIGN §16.
    with ShardedSearchService(
        index,
        n_shards=args.shards,
        base_lsn=base_lsn,
        attach="mmap" if index.storage_info()["backend"] == "mmap" else "shm",
    ) as service:
        service.ingest(feed.poll())
        shipper = WalShipper(
            home,
            host=args.host,
            port=args.port,
            poll_interval=args.poll_interval,
            registry=registry,
        )
        try:
            shipper.start()
            frontend = Frontend(
                service, port=args.http_port, registry=registry
            ).start()
            if args.metrics_port is not None:
                exporter = ObsExporter(
                    registry, health=service.health, port=args.metrics_port
                ).start()
                print(f"ops endpoints: {exporter.url}/metrics "
                      f"{exporter.url}/healthz", file=sys.stderr)
            print(
                f"leading from {ckpt_path.name} (LSN {service.acked_lsn}): "
                f"shipping WAL on {shipper.host}:{shipper.port}, "
                f"front door {frontend.url}",
                file=sys.stderr,
            )

            def tick() -> None:
                applied = frontend.ingest(feed.poll())
                if applied:
                    print(
                        f"applied {applied} WAL records "
                        f"(now at LSN {service.acked_lsn})",
                        file=sys.stderr,
                    )
                time.sleep(args.poll_interval)

            _cluster_linger(args.linger, tick)
            report = {
                "role": "leader",
                "acked_lsn": service.acked_lsn,
                "ship_port": shipper.port,
                "followers": shipper.followers(),
                "frontend": frontend.stats(),
            }
        finally:
            if frontend is not None:
                frontend.stop()
            if exporter is not None:
                exporter.stop()
            shipper.stop()
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def cmd_cluster_follow(args: argparse.Namespace) -> int:
    """Run a read replica tailing a leader's replication stream."""
    from repro.cluster import FollowerNode
    from repro.logconfig import configure_logging
    from repro.obs import MetricsRegistry, ObsExporter

    configure_logging(args.log_level, json_format=args.log_json)
    host, _, port_text = args.leader.rpartition(":")
    if not host or not port_text.isdigit():
        raise ReproError(
            f"--leader must be host:port of the leader's replication "
            f"socket, got {args.leader!r}"
        )
    registry = MetricsRegistry()
    exporter = None
    node = FollowerNode(
        args.home,
        (host, int(port_text)),
        n_shards=args.shards,
        http_port=args.http_port,
        backend=args.backend,
        registry=registry,
    )
    try:
        node.start()
        if args.metrics_port is not None:
            exporter = ObsExporter(
                registry, health=node.service.health, port=args.metrics_port
            ).start()
            print(f"ops endpoints: {exporter.url}/metrics "
                  f"{exporter.url}/healthz", file=sys.stderr)
        print(
            f"following {host}:{port_text} from LSN {node.base_lsn}; "
            f"front door {node.url}",
            file=sys.stderr,
        )
        _cluster_linger(args.linger, lambda: time.sleep(0.2))
        report = dict(node.status(), role="follower")
    finally:
        if exporter is not None:
            exporter.stop()
        node.stop()
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def cmd_cluster_route(args: argparse.Namespace) -> int:
    """Run the router tier over a set of node front doors."""
    from repro.cluster import Router
    from repro.logconfig import configure_logging
    from repro.obs import MetricsRegistry

    configure_logging(args.log_level, json_format=args.log_json)
    nodes: dict[str, str] = {}
    for spec in args.node:
        name, sep, url = spec.partition("=")
        if not sep or not name or not url:
            raise ReproError(
                f"--node takes name=http://host:port, got {spec!r}"
            )
        nodes[name] = url
    router = Router(
        nodes,
        leader=args.leader,
        host=args.host,
        port=args.port,
        check_interval=args.check_interval,
        failure_threshold=args.failure_threshold,
        probe_timeout=args.probe_timeout,
        proxy_timeout=args.proxy_timeout,
        registry=MetricsRegistry(),
    )
    try:
        router.start()
        print(
            f"routing {sorted(nodes)} (leader {args.leader}) at "
            f"{router.url}/v1/search — topology {router.url}/v1/cluster, "
            f"metrics {router.url}/metrics",
            file=sys.stderr,
        )
        _cluster_linger(args.linger, lambda: time.sleep(0.2))
        report = router.describe()
    finally:
        router.stop()
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Run queries with EXPLAIN and render the plan/cost reports."""
    from repro.obs.explain import (
        render_explain,
        validate_explain_dict,
    )

    metrics = _parse_p_list(args.p)
    if len(metrics) != 1:
        raise ReproError("explain answers one metric per run; pass one --p")
    p = metrics[0]
    records: list[dict] = []
    if args.url:
        import urllib.request

        if not args.query_file:
            raise ReproError("explain --url needs --query-file")
        queries = np.atleast_2d(np.load(args.query_file))
        base = args.url.rstrip("/")
        for query in queries:
            body = json.dumps(
                {
                    "query": [float(x) for x in query],
                    "k": args.k,
                    "p": p,
                    "explain": True,
                }
            ).encode()
            req = urllib.request.Request(
                base + "/v1/search",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(req, timeout=30) as fh:
                    payload = json.loads(fh.read().decode())
            except OSError as exc:
                raise ReproError(
                    f"cannot reach {base}/v1/search: {exc}"
                ) from exc
            record = payload.get("explain")
            if record is None:
                raise ReproError(
                    "the front door answered without an explain section; "
                    "is it running a build that predates explain?"
                )
            records.append(record)
    else:
        if args.index is None:
            raise ReproError("explain needs an index path or --url")
        from repro.serve import ShardedSearchService

        index = load_index(args.index, backend=args.backend)
        queries = _workload_queries(index, args)
        with ShardedSearchService(
            index,
            n_shards=args.shards,
            attach="mmap" if args.backend == "mmap" else "shm",
        ) as service:
            results = service.search_batch(
                queries, args.k, p=p, explain=True
            )
        records = [result.explain for result in results]
    for record in records:
        validate_explain_dict(record)
        if args.format == "json":
            print(json.dumps(record, indent=2, sort_keys=True))
        else:
            print(render_explain(record))
    return 0


def _metric_total(samples: dict, name: str, **labels: str) -> float:
    """Sum of a family's sample values matching the given labels."""
    total = 0.0
    for sample_labels, value in samples.get(name, []):
        if all(sample_labels.get(k) == v for k, v in labels.items()):
            total += value
    return total


def _shard_labels(samples: dict, name: str) -> list[str]:
    return sorted(
        {
            labels["shard"]
            for labels, _v in samples.get(name, [])
            if "shard" in labels
        },
        key=lambda s: int(s) if s.isdigit() else 0,
    )


#: How many slowlog rows ``repro top`` shows per refresh.
_SLOWLOG_ROWS = 5


def _render_top(
    samples: dict,
    prev: dict | None,
    dt: float | None,
    health: dict | None,
    slowlog: list | None = None,
) -> str:
    from repro.obs.exporter import histogram_quantile

    def rate(name: str, **labels: str) -> float | None:
        if prev is None or not dt:
            return None
        return (
            _metric_total(samples, name, **labels)
            - _metric_total(prev, name, **labels)
        ) / dt

    def fmt(value: float | None, spec: str = ".1f") -> str:
        return "-" if value is None else format(value, spec)

    lines = []
    queries = _metric_total(samples, "lazylsh_queries_total")
    qps = rate("lazylsh_queries_total")
    lat = samples.get("lazylsh_query_latency_seconds_bucket", [])
    p50 = histogram_quantile(lat, 0.50)
    p99 = histogram_quantile(lat, 0.99)
    seq_io = _metric_total(samples, "lazylsh_query_io_sequential_sum")
    rnd_io = _metric_total(samples, "lazylsh_query_io_random_sum")
    status = "?"
    if health is not None:
        status = "healthy" if health.get("healthy") else "DEGRADED"
    lines.append(
        f"lazylsh top — {status} | queries {queries:.0f} "
        f"| QPS {fmt(qps)} | p50 {fmt(p50 * 1e3 if p50 is not None else None, '.2f')} ms "
        f"| p99 {fmt(p99 * 1e3 if p99 is not None else None, '.2f')} ms "
        f"| I/O seq {seq_io:.0f} rnd {rnd_io:.0f}"
    )
    shards = _shard_labels(samples, "lazylsh_shard_rows_scanned_total")
    if shards:
        alive_by_shard = {}
        if health is not None:
            alive_by_shard = {
                str(s.get("shard")): s.get("alive")
                for s in health.get("shards", [])
            }
        table = ResultTable(
            "per-shard fleet",
            ["shard", "alive", "rows/s", "rows", "crossings", "busy s", "ops"],
        )
        for shard in shards:
            table.add_row(
                [
                    shard,
                    {True: "yes", False: "NO"}.get(
                        alive_by_shard.get(shard), "?"
                    ),
                    fmt(rate("lazylsh_shard_rows_scanned_total", shard=shard)),
                    int(_metric_total(
                        samples, "lazylsh_shard_rows_scanned_total",
                        shard=shard,
                    )),
                    int(_metric_total(
                        samples, "lazylsh_shard_crossings_total", shard=shard
                    )),
                    round(_metric_total(
                        samples, "lazylsh_shard_busy_seconds_total",
                        shard=shard,
                    ), 3),
                    int(_metric_total(
                        samples, "lazylsh_shard_ops_total", shard=shard
                    )),
                ]
            )
        lines.append(table.render())
    if "lazylsh_audit_success_rate" in samples:
        bound = _metric_total(samples, "lazylsh_audit_guarantee_bound")
        success = _metric_total(samples, "lazylsh_audit_success_rate")
        flag = "OK" if success >= bound else "VIOLATION"
        lines.append(
            f"audit: recall@k "
            f"{_metric_total(samples, 'lazylsh_audit_recall_at_k'):.3f} "
            f"| ratio "
            f"{_metric_total(samples, 'lazylsh_audit_overall_ratio'):.3f} "
            f"| success {success:.3f} vs bound {bound:.3f} [{flag}] "
            f"| samples "
            f"{_metric_total(samples, 'lazylsh_audit_samples_total'):.0f}"
        )
    slo_names = sorted(
        {
            labels["slo"]
            for labels, _v in samples.get("lazylsh_slo_alert_active", [])
            if "slo" in labels
        }
    )
    if slo_names:
        parts = []
        for name in slo_names:
            active = _metric_total(
                samples, "lazylsh_slo_alert_active", slo=name
            )
            err = _metric_total(samples, "lazylsh_slo_error_rate", slo=name)
            burns = [
                value
                for labels, value in samples.get("lazylsh_slo_burn_rate", [])
                if labels.get("slo") == name
            ]
            state = "ALERT" if active else "ok"
            parts.append(
                f"{name} err {err:.4f} burn {max(burns, default=0.0):.1f} "
                f"[{state}]"
            )
        lines.append("slo: " + " | ".join(parts))
    cluster_parts = []
    if "lazylsh_cluster_followers" in samples:
        cluster_parts.append(
            f"followers "
            f"{_metric_total(samples, 'lazylsh_cluster_followers'):.0f}"
        )
        cluster_parts.append(
            f"shipped "
            f"{_metric_total(samples, 'lazylsh_cluster_shipped_records_total'):.0f}"
        )
    if "lazylsh_replica_acked_lsn" in samples:
        up = _metric_total(samples, "lazylsh_replica_connected")
        cluster_parts.append(
            f"replica lsn "
            f"{_metric_total(samples, 'lazylsh_replica_acked_lsn'):.0f} "
            f"({'stream up' if up else 'stream DOWN'})"
        )
        cluster_parts.append(
            f"reconnects "
            f"{_metric_total(samples, 'lazylsh_replica_reconnects_total'):.0f}"
        )
    if "lazylsh_cluster_commit_lsn" in samples:
        cluster_parts.append(
            f"commit lsn "
            f"{_metric_total(samples, 'lazylsh_cluster_commit_lsn'):.0f}"
        )
        lags = [
            value
            for _labels, value in samples.get("lazylsh_replica_lag_lsn", [])
        ]
        if lags:
            cluster_parts.append(f"lag max {max(lags):.0f}")
        cluster_parts.append(
            f"failovers "
            f"{_metric_total(samples, 'lazylsh_cluster_failovers_total'):.0f}"
        )
    if cluster_parts:
        lines.append("cluster: " + " | ".join(cluster_parts))
    if "lazylsh_flight_triggers_total" in samples:
        lines.append(
            f"flight: triggers "
            f"{_metric_total(samples, 'lazylsh_flight_triggers_total'):.0f} "
            f"| dumps "
            f"{_metric_total(samples, 'lazylsh_flight_dumps_total'):.0f}"
        )
    if "lazylsh_major_faults_total" in samples:
        residency = [
            value
            for _labels, value in samples.get(
                "lazylsh_page_cache_resident_ratio", []
            )
        ]
        resident_text = (
            f" | resident {min(residency):.0%}..{max(residency):.0%}"
            if residency
            else ""
        )
        lines.append(
            f"paging: major faults "
            f"{_metric_total(samples, 'lazylsh_major_faults_total'):.0f} "
            f"| minor "
            f"{_metric_total(samples, 'lazylsh_minor_faults_total'):.0f}"
            f"{resident_text}"
        )
    profile = samples.get("lazylsh_profile_samples_total", [])
    if profile:
        by_phase = {
            labels.get("phase", "?"): value for labels, value in profile
        }
        total = sum(by_phase.values())
        if total:
            parts = [
                f"{phase} {count / total:.0%}"
                for phase, count in sorted(
                    by_phase.items(), key=lambda kv: -kv[1]
                )
                if count
            ]
            lines.append(
                f"profile: {total:.0f} samples | " + " ".join(parts)
            )
    demand = samples.get("lazylsh_workload_queries_total", [])
    if demand:
        ranked = sorted(demand, key=lambda kv: -kv[1])[:4]
        parts = [
            f"p={labels.get('p', '?')} k={labels.get('k', '?')} "
            f"({value:.0f})"
            for labels, value in ranked
        ]
        heat_parts = []
        for heat in ("hot", "cold"):
            hits = _metric_total(
                samples, "lazylsh_workload_cache_lookups_total",
                heat=heat, outcome="hit",
            )
            misses = _metric_total(
                samples, "lazylsh_workload_cache_lookups_total",
                heat=heat, outcome="miss",
            )
            if hits + misses:
                heat_parts.append(
                    f"{heat} {hits / (hits + misses):.0%}"
                )
        heat_text = (
            " | cache " + " ".join(heat_parts) if heat_parts else ""
        )
        lines.append("workload: " + " ".join(parts) + heat_text)
    if slowlog:
        table = ResultTable(
            "slow queries (newest last)",
            ["query", "ms", "rounds", "termination", "request", "trace"],
        )
        for entry in slowlog[-_SLOWLOG_ROWS:]:
            table.add_row(
                [
                    entry.get("query_id", "-"),
                    round(float(entry.get("elapsed_seconds", 0.0)) * 1e3, 2),
                    entry.get("rounds", "-"),
                    entry.get("termination", "-"),
                    entry.get("request_id") or "-",
                    (
                        f"/trace/{entry['trace_id']}"
                        if entry.get("trace_id")
                        else "-"
                    ),
                ]
            )
        lines.append(table.render())
    return "\n".join(lines)


def cmd_top(args: argparse.Namespace) -> int:
    import urllib.error
    import urllib.request

    from repro.obs.exporter import parse_prometheus_text

    base = args.url.rstrip("/")
    prev = None
    prev_t = None
    iteration = 0
    while args.iterations is None or iteration < args.iterations:
        if iteration:
            time.sleep(args.interval)
        try:
            with urllib.request.urlopen(base + "/metrics", timeout=5) as fh:
                text = fh.read().decode()
        except (urllib.error.URLError, OSError) as exc:
            raise ReproError(f"cannot scrape {base}/metrics: {exc}") from exc
        now = time.monotonic()
        samples = parse_prometheus_text(text)
        health = None
        try:
            with urllib.request.urlopen(base + "/healthz", timeout=5) as fh:
                health = json.loads(fh.read().decode())
        except (urllib.error.HTTPError,) as exc:
            # 503 still carries the health JSON body
            try:
                health = json.loads(exc.read().decode())
            except Exception:
                health = None
        except (urllib.error.URLError, OSError):
            health = None
        slowlog = None
        try:
            with urllib.request.urlopen(base + "/slowlog", timeout=5) as fh:
                slowlog = json.loads(fh.read().decode())
        except (urllib.error.URLError, OSError, ValueError):
            slowlog = None
        if not args.no_clear and iteration:
            print("\x1b[2J\x1b[H", end="")
        print(_render_top(
            samples, prev, now - prev_t if prev_t is not None else None,
            health, slowlog,
        ))
        prev, prev_t = samples, now
        iteration += 1
    return 0


def cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.serve import run_serve_benchmark

    report = run_serve_benchmark(
        n=args.n,
        d=args.d,
        n_queries=args.queries,
        k=args.k,
        p=args.p,
        shard_counts=tuple(
            int(part) for part in args.shards.split(",") if part.strip()
        ),
        seed=args.seed,
        start_method=args.start_method,
    )
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        Path(args.output).write_text(rendered + "\n")
        print(f"bench-serve report -> {args.output}")
    else:
        print(rendered)
    identity = all(c["identity"]["all"] for c in report["sharded"])
    if not identity:
        print("error: sharded results diverged from single-process engine",
              file=sys.stderr)
        return 1
    return 0


def cmd_datasets(_args: argparse.Namespace) -> int:
    print("generated datasets usable with `build`:")
    for name in SIMULATED_DATASET_NAMES:
        print(f"  {name}")
    print("  synthetic:<n>x<d>   (uniform integers, Table 3 workload)")
    print("  <path>.npy          (your own float matrix)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="LazyLSH reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_params = sub.add_parser("params", help="show per-metric parameters")
    p_params.add_argument("--d", type=int, required=True, help="dimensionality")
    p_params.add_argument("--c", type=float, default=3.0, help="approximation ratio")
    p_params.add_argument("--epsilon", type=float, default=0.01)
    p_params.add_argument("--beta", type=float, default=1e-4)
    p_params.add_argument(
        "--p", default="0.5,0.6,0.7,0.8,0.9,1.0", help="comma-separated metrics"
    )
    p_params.add_argument("--mc-samples", type=int, default=50_000)
    p_params.add_argument("--seed", type=int, default=7)
    p_params.set_defaults(func=cmd_params)

    p_build = sub.add_parser("build", help="build and save an index")
    p_build.add_argument("dataset", help=".npy path, dataset name, or synthetic:<n>x<d>")
    p_build.add_argument("output", help="output index path (.npz)")
    p_build.add_argument("--n", type=int, default=None, help="cardinality override")
    p_build.add_argument("--c", type=float, default=3.0)
    p_build.add_argument("--p-min", type=float, default=0.5)
    p_build.add_argument("--mc-samples", type=int, default=50_000)
    p_build.add_argument("--seed", type=int, default=7)
    p_build.add_argument(
        "--format-version",
        type=int,
        choices=(2, 3),
        default=None,
        help="on-disk format: 2 = compressed npz (default), 3 = page-aligned "
        "binary that `--backend mmap` can open without reading it",
    )
    p_build.set_defaults(func=cmd_build)

    p_query = sub.add_parser("query", help="query a saved index")
    p_query.add_argument("index", help="index .npz path")
    p_query.add_argument("--k", type=int, default=10)
    p_query.add_argument("--p", default="0.5,1.0", help="comma-separated metrics")
    p_query.add_argument(
        "--row", type=int, default=0, help="use this indexed row as the query"
    )
    p_query.add_argument(
        "--query-file", default=None, help=".npy file of query vectors"
    )
    p_query.set_defaults(func=cmd_query)

    def _add_workload_args(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("index", help="index .npz path")
        sub_parser.add_argument("--k", type=int, default=10)
        sub_parser.add_argument(
            "--p", default="1.0", help="comma-separated metrics"
        )
        sub_parser.add_argument(
            "--row", type=int, default=0, help="use this indexed row as the query"
        )
        sub_parser.add_argument(
            "--query-file", default=None, help=".npy file of query vectors"
        )
        sub_parser.add_argument(
            "--engine", choices=("flat", "scalar"), default="flat"
        )

    p_trace = sub.add_parser(
        "trace", help="run queries with telemetry, write QueryTrace JSONL"
    )
    _add_workload_args(p_trace)
    p_trace.add_argument("--output", default="traces.jsonl")
    p_trace.add_argument(
        "--spans", default=None, help="also write harness spans as JSONL"
    )
    p_trace.set_defaults(func=cmd_trace)

    p_stats = sub.add_parser(
        "stats", help="run queries with telemetry, print the metrics registry"
    )
    _add_workload_args(p_stats)
    p_stats.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus"
    )
    p_stats.add_argument(
        "--shards",
        type=int,
        default=0,
        help="run through the sharded service with this many shards and "
        "print the per-shard random-I/O breakdown (0 = single-process)",
    )
    p_stats.add_argument(
        "--backend",
        choices=("eager", "mmap"),
        default="eager",
        help="how to open the index: eager loads every array into RAM, "
        "mmap maps a format-v3 file and pages on demand",
    )
    p_stats.set_defaults(func=cmd_stats)

    p_ingest = sub.add_parser(
        "ingest", help="durably apply inserts/removals through a WAL"
    )
    p_ingest.add_argument("home", help="durable index home directory")
    p_ingest.add_argument(
        "--init",
        default=None,
        metavar="DATASET",
        help="initialise the home from this dataset (.npy path, dataset "
        "name, or synthetic:<n>x<d>); omit to recover an existing home",
    )
    p_ingest.add_argument(
        "--insert",
        default=None,
        metavar="SPEC",
        help="insert this batch (.npy path or synthetic:<n>x<d>)",
    )
    p_ingest.add_argument(
        "--batches",
        type=int,
        default=1,
        help="append --insert this many times (throughput runs)",
    )
    p_ingest.add_argument(
        "--jitter",
        type=float,
        default=0.0,
        help="per-batch gaussian noise added to --insert points",
    )
    p_ingest.add_argument(
        "--remove", default=None, help="comma-separated point ids to remove"
    )
    p_ingest.add_argument(
        "--checkpoint",
        action="store_true",
        help="compact the WAL into a checkpoint after applying updates",
    )
    p_ingest.add_argument(
        "--format-version",
        type=int,
        choices=(2, 3),
        default=None,
        help="checkpoint format: 2 = compressed npz (default), 3 = "
        "page-aligned binary for mmap cold starts (needs --checkpoint)",
    )
    p_ingest.add_argument(
        "--no-compress",
        action="store_true",
        help="skip zlib on v2 checkpoints (bigger file, faster write)",
    )
    p_ingest.add_argument(
        "--backend",
        choices=("eager", "mmap"),
        default="eager",
        help="how to open the recovered checkpoint (mmap needs a "
        "format-v3 checkpoint; older ones fall back to eager)",
    )
    p_ingest.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsync on commit (faster, loses the durability guarantee)",
    )
    p_ingest.add_argument("--n", type=int, default=None, help="cardinality override")
    p_ingest.add_argument("--c", type=float, default=3.0)
    p_ingest.add_argument("--p-min", type=float, default=0.5)
    p_ingest.add_argument("--mc-samples", type=int, default=50_000)
    p_ingest.add_argument("--seed", type=int, default=7)
    p_ingest.set_defaults(func=cmd_ingest)

    p_recover = sub.add_parser(
        "recover", help="recover a durable home and print the replay report"
    )
    p_recover.add_argument("home", help="durable index home directory")
    p_recover.add_argument(
        "--verify",
        action="store_true",
        help="also rebuild the full-history reference and require "
        "bit-identical state (needs an unpruned WAL)",
    )
    p_recover.add_argument(
        "--checkpoint",
        action="store_true",
        help="write a fresh checkpoint after recovery",
    )
    p_recover.add_argument(
        "--k", type=int, default=5, help="kNN depth for --verify probes"
    )
    p_recover.set_defaults(func=cmd_recover)

    p_serve = sub.add_parser(
        "serve", help="answer queries through the sharded query service"
    )
    p_serve.add_argument(
        "index", nargs="?", default=None, help="index .npz path"
    )
    p_serve.add_argument(
        "--wal",
        default=None,
        metavar="HOME",
        help="serve a durable home directory instead of a static .npz: "
        "load its newest checkpoint and tail the WAL for live updates",
    )
    p_serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="WAL poll cadence during --linger (seconds; needs --wal)",
    )
    p_serve.add_argument("--k", type=int, default=10)
    p_serve.add_argument("--p", default="1.0", help="single metric")
    p_serve.add_argument(
        "--shards", type=int, default=2, help="shard/worker count"
    )
    p_serve.add_argument(
        "--row", type=int, default=0, help="use this indexed row as the query"
    )
    p_serve.add_argument(
        "--query-file", default=None, help=".npy file of query vectors"
    )
    p_serve.add_argument(
        "--backend",
        choices=("eager", "mmap"),
        default="eager",
        help="how to open the index: eager loads into RAM and ships shards "
        "over shared memory; mmap maps a format-v3 file and workers attach "
        "to the same file in O(1) (a non-v3 --wal checkpoint falls back "
        "to eager)",
    )
    p_serve.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method (platform default if omitted)",
    )
    p_serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="start the ops exporter (/metrics /healthz /slowlog) on this "
        "port (0 = OS-assigned)",
    )
    p_serve.add_argument(
        "--http-port",
        type=int,
        default=None,
        help="start the async HTTP front door (POST /v1/search, "
        "GET /v1/health /v1/stats) on this port (0 = OS-assigned); "
        "pair with --linger to keep it up",
    )
    p_serve.add_argument(
        "--coalesce-ms",
        type=float,
        default=2.0,
        help="front-door batching window in ms (concurrent requests "
        "arriving within it share one index scan)",
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="front-door admission bound; requests beyond it get 429",
    )
    p_serve.add_argument(
        "--cache-capacity",
        type=int,
        default=1024,
        help="front-door result-cache entries (LRU, invalidated by WAL "
        "epoch; 0 = off)",
    )
    p_serve.add_argument(
        "--audit-rate",
        type=float,
        default=0.0,
        help="guarantee-auditor sample rate in [0, 1] (0 = off; needs "
        "--metrics-port)",
    )
    p_serve.add_argument(
        "--slow-ms",
        type=float,
        default=0.0,
        help="slow-query log latency threshold in ms (0 = capture all)",
    )
    p_serve.add_argument(
        "--linger",
        type=float,
        default=0.0,
        help="keep the ops endpoints up this many seconds after the "
        "workload (so `repro top` can watch)",
    )
    p_serve.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        help="head-sampling probability in [0, 1] for distributed "
        "traces (needs --metrics-port; sampled traces appear under "
        "/trace/<id>)",
    )
    p_serve.add_argument(
        "--flight-dir",
        default=None,
        metavar="DIR",
        help="write flight-recorder bundles (JSON) here on incident "
        "triggers; without it bundles stay in memory",
    )
    p_serve.add_argument(
        "--slo-latency-ms",
        type=float,
        default=0.0,
        help="enable a latency SLO with this threshold in ms (must be "
        "a latency-histogram bucket bound; 0 = off)",
    )
    p_serve.add_argument(
        "--slo-objective",
        type=float,
        default=0.99,
        help="target good-fraction for the latency SLO (default 0.99)",
    )
    p_serve.add_argument(
        "--profile-hz",
        type=float,
        default=0.0,
        help="continuous sampling-profiler rate in Hz (0 = no background "
        "sampling; /profile?seconds=N on-demand capture always works "
        "when --metrics-port is set)",
    )
    p_serve.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="log level for the repro.* namespace (default info)",
    )
    p_serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit one JSON object per log line instead of text",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_cluster = sub.add_parser(
        "cluster",
        help="replication plane: lead, follow, or route (DESIGN §16)",
    )
    cluster_sub = p_cluster.add_subparsers(dest="role", required=True)

    def _cluster_common(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--linger",
            type=float,
            default=None,
            metavar="SECONDS",
            help="serve this many seconds then exit with a JSON report "
            "(default: until ctrl-C)",
        )
        parser.add_argument(
            "--log-level",
            default="info",
            choices=("debug", "info", "warning", "error"),
            help="log level for the repro.* namespace (default info)",
        )
        parser.add_argument(
            "--log-json",
            action="store_true",
            help="emit one JSON object per log line instead of text",
        )

    p_lead = cluster_sub.add_parser(
        "lead",
        help="serve a durable home and ship its WAL to followers",
    )
    p_lead.add_argument("home", help="durable home (wal/ + checkpoints/)")
    p_lead.add_argument(
        "--host", default="127.0.0.1", help="replication bind address"
    )
    p_lead.add_argument(
        "--port",
        type=int,
        default=0,
        help="replication (WAL-shipping) port; 0 picks a free one",
    )
    p_lead.add_argument(
        "--http-port",
        type=int,
        default=0,
        help="v1 front-door port (0 picks a free one)",
    )
    p_lead.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve /metrics and /healthz on this port",
    )
    p_lead.add_argument(
        "--shards", type=int, default=2, help="local worker processes"
    )
    p_lead.add_argument(
        "--backend",
        default="mmap",
        choices=("mmap", "eager"),
        help="checkpoint open mode (old formats degrade to eager)",
    )
    p_lead.add_argument(
        "--poll-interval",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="WAL tail/ship poll period; bounds replication lag",
    )
    _cluster_common(p_lead)
    p_lead.set_defaults(func=cmd_cluster_lead)

    p_follow = cluster_sub.add_parser(
        "follow",
        help="run a read replica tailing a leader's WAL stream",
    )
    p_follow.add_argument(
        "home", help="local home for this replica's checkpoints"
    )
    p_follow.add_argument(
        "--leader",
        required=True,
        metavar="HOST:PORT",
        help="the leader's replication socket (repro cluster lead --port)",
    )
    p_follow.add_argument(
        "--http-port",
        type=int,
        default=0,
        help="v1 front-door port for follower reads (0 picks a free one)",
    )
    p_follow.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve /metrics and /healthz on this port",
    )
    p_follow.add_argument(
        "--shards", type=int, default=2, help="local worker processes"
    )
    p_follow.add_argument(
        "--backend",
        default="eager",
        choices=("eager", "mmap"),
        help="bootstrap-checkpoint open mode",
    )
    _cluster_common(p_follow)
    p_follow.set_defaults(func=cmd_cluster_follow)

    p_route = cluster_sub.add_parser(
        "route",
        help="route /v1/search across nodes with staleness bounds "
        "and failover",
    )
    p_route.add_argument(
        "--node",
        action="append",
        required=True,
        metavar="NAME=URL",
        help="a node front door, e.g. leader=http://127.0.0.1:8301 "
        "(repeatable)",
    )
    p_route.add_argument(
        "--leader", required=True, help="configured leader's node name"
    )
    p_route.add_argument(
        "--host", default="127.0.0.1", help="router bind address"
    )
    p_route.add_argument(
        "--port", type=int, default=0, help="router port (0 picks one)"
    )
    p_route.add_argument(
        "--check-interval",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="health-probe period",
    )
    p_route.add_argument(
        "--failure-threshold",
        type=int,
        default=2,
        help="consecutive probe failures before a node is marked down",
    )
    p_route.add_argument(
        "--probe-timeout",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="per-probe HTTP timeout",
    )
    p_route.add_argument(
        "--proxy-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="default per-request proxy timeout",
    )
    _cluster_common(p_route)
    p_route.set_defaults(func=cmd_cluster_route)

    p_explain = sub.add_parser(
        "explain",
        help="run queries with EXPLAIN and render the plan/cost report",
    )
    p_explain.add_argument(
        "index", nargs="?", default=None, help="index .npz path"
    )
    p_explain.add_argument("--k", type=int, default=10)
    p_explain.add_argument("--p", default="1.0", help="single metric")
    p_explain.add_argument(
        "--row", type=int, default=0, help="use this indexed row as the query"
    )
    p_explain.add_argument(
        "--query-file", default=None, help=".npy file of query vectors"
    )
    p_explain.add_argument(
        "--shards", type=int, default=2, help="shard/worker count"
    )
    p_explain.add_argument(
        "--backend", choices=("eager", "mmap"), default="eager"
    )
    p_explain.add_argument(
        "--url",
        default=None,
        help="POST to a running front door at this base URL instead of "
        "loading the index locally (needs --query-file)",
    )
    p_explain.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    p_explain.set_defaults(func=cmd_explain)

    p_top = sub.add_parser(
        "top", help="live ops view of a running exporter"
    )
    p_top.add_argument(
        "--url",
        default="http://127.0.0.1:9100",
        help="base URL of the ops exporter",
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0, help="poll interval seconds"
    )
    p_top.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after this many polls (default: run until ctrl-C)",
    )
    p_top.add_argument(
        "--no-clear",
        action="store_true",
        help="append screens instead of clearing the terminal",
    )
    p_top.set_defaults(func=cmd_top)

    p_bserve = sub.add_parser(
        "bench-serve", help="benchmark the sharded query service"
    )
    p_bserve.add_argument("--n", type=int, default=4000)
    p_bserve.add_argument("--d", type=int, default=16)
    p_bserve.add_argument("--queries", type=int, default=24)
    p_bserve.add_argument("--k", type=int, default=10)
    p_bserve.add_argument("--p", type=float, default=0.75)
    p_bserve.add_argument(
        "--shards", default="1,2,4", help="comma-separated shard counts"
    )
    p_bserve.add_argument("--seed", type=int, default=7)
    p_bserve.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
    )
    p_bserve.add_argument(
        "--output", default=None, help="write the JSON report here"
    )
    p_bserve.set_defaults(func=cmd_bench_serve)

    p_list = sub.add_parser("datasets", help="list generated datasets")
    p_list.set_defaults(func=cmd_datasets)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
