"""Multi-node replication plane: WAL shipping, follower reads, routing.

See DESIGN §16.  The leader ships its durable WAL to followers over a
length-prefixed socket protocol (:mod:`repro.cluster.protocol`); each
follower bootstraps from the newest v3 checkpoint (fetched over the
wire when absent locally), tails the stream into
``ShardedSearchService.ingest`` and serves reads on the standard v1
wire; the router health-checks the fleet, keeps a consistent shard
assignment, enforces per-request staleness bounds (``max_lag_lsn``)
and fails over to the caught-up follower when the leader dies.  A
2-node cluster answers bit-identically to the 1-process reference
index at the acked LSN — the same identity discipline every other
layer of the repo is pinned to.
"""

from repro.cluster.follower import FollowerNode
from repro.cluster.leader import WalShipper
from repro.cluster.protocol import (
    MSG_ACK,
    MSG_CKPT_CHUNK,
    MSG_CKPT_DONE,
    MSG_CKPT_META,
    MSG_ERROR,
    MSG_HELLO,
    MSG_PING,
    MSG_WAL,
    PROTOCOL_VERSION,
    ProtocolError,
    recv_message,
    send_error,
    send_message,
)
from repro.cluster.router import (
    DEFAULT_SLOTS,
    NodeState,
    Router,
    assign_slots,
    slot_of,
)

__all__ = [
    "DEFAULT_SLOTS",
    "MSG_ACK",
    "MSG_CKPT_CHUNK",
    "MSG_CKPT_DONE",
    "MSG_CKPT_META",
    "MSG_ERROR",
    "MSG_HELLO",
    "MSG_PING",
    "MSG_WAL",
    "PROTOCOL_VERSION",
    "FollowerNode",
    "NodeState",
    "ProtocolError",
    "Router",
    "WalShipper",
    "assign_slots",
    "recv_message",
    "send_error",
    "send_message",
    "slot_of",
]
