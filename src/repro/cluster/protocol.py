"""Length-prefixed socket protocol for WAL shipping (DESIGN §16).

One connection carries one replication stream between a follower and
the leader's :class:`~repro.cluster.leader.WalShipper`.  Every message
is a self-delimiting frame:

.. code-block:: text

    u32 meta_len | u32 blob_len | u8 kind | meta (JSON) | blob (bytes)

(all integers little-endian).  ``meta`` is a small JSON object of
per-message fields; ``blob`` is an opaque byte payload — a CRC-framed
WAL record (byte-identical to the frame on the leader's disk, so the
follower verifies the same CRC the durable log did) or a checkpoint
file chunk.  The conversation:

* follower → leader: ``HELLO {start_lsn, need_checkpoint}`` once, then
  ``ACK {lsn}`` after applying records, or ``ERROR {code, ...}`` when
  the stream is not applicable (e.g. a typed ``wal_gap``).
* leader → follower: a checkpoint hand-off (``CKPT_META`` +
  ``CKPT_CHUNK``\\ * + ``CKPT_DONE``) when requested, then ``WAL``
  frames from the agreed LSN, ``PING`` heartbeats when idle, and
  ``ERROR`` (e.g. ``wal_truncated``: the log no longer reaches back to
  the follower's position and it must re-bootstrap).

The framing is deliberately dumb: no negotiation beyond HELLO, no
compression, no partial frames.  A short read means the peer died —
:func:`recv_message` returns ``None`` on a clean EOF at a frame
boundary and raises :class:`ProtocolError` mid-frame.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from repro.errors import ReproError

#: Protocol version exchanged in HELLO; bump with any frame change.
PROTOCOL_VERSION = 1

# Message kinds (u8 on the wire).
MSG_HELLO = 1       # follower → leader: start of stream negotiation
MSG_CKPT_META = 2   # leader → follower: checkpoint name/lsn/size follows
MSG_CKPT_CHUNK = 3  # leader → follower: one checkpoint file chunk
MSG_CKPT_DONE = 4   # leader → follower: checkpoint fully sent
MSG_WAL = 5         # leader → follower: one CRC-framed WalRecord
MSG_ACK = 6         # follower → leader: records applied through {lsn}
MSG_ERROR = 7       # either way: typed error, connection unusable
MSG_PING = 8        # leader → follower: heartbeat while the log is idle

KIND_NAMES = {
    MSG_HELLO: "hello",
    MSG_CKPT_META: "ckpt_meta",
    MSG_CKPT_CHUNK: "ckpt_chunk",
    MSG_CKPT_DONE: "ckpt_done",
    MSG_WAL: "wal",
    MSG_ACK: "ack",
    MSG_ERROR: "error",
    MSG_PING: "ping",
}

_HEADER = struct.Struct("<IIB")

#: Sanity bounds: meta is a handful of JSON fields; the blob is one WAL
#: record or one checkpoint chunk, never a whole dataset.
MAX_META_BYTES = 1 * 1024 * 1024
MAX_BLOB_BYTES = 256 * 1024 * 1024

#: Checkpoint files stream in chunks of this size.
CKPT_CHUNK_BYTES = 256 * 1024


class ProtocolError(ReproError):
    """The replication stream violated the framing contract."""

    code = "cluster_protocol"


def send_message(
    sock: socket.socket,
    kind: int,
    meta: dict[str, Any] | None = None,
    blob: bytes = b"",
) -> None:
    """Serialise and send one frame (blocking, whole frame or raise)."""
    meta_bytes = json.dumps(meta or {}).encode()
    if len(meta_bytes) > MAX_META_BYTES:
        raise ProtocolError(
            f"meta too large: {len(meta_bytes)} bytes"
        )
    if len(blob) > MAX_BLOB_BYTES:
        raise ProtocolError(f"blob too large: {len(blob)} bytes")
    header = _HEADER.pack(len(meta_bytes), len(blob), kind)
    sock.sendall(header + meta_bytes + blob)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError(
                f"peer closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if chunks else b""


def recv_message(
    sock: socket.socket,
) -> tuple[int, dict[str, Any], bytes] | None:
    """Receive one frame as ``(kind, meta, blob)``.

    Returns ``None`` on a clean EOF at a frame boundary (the peer hung
    up); raises :class:`ProtocolError` on a torn frame, oversized
    lengths, an unknown kind or undecodable meta.  ``socket.timeout``
    propagates so callers can poll.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    meta_len, blob_len, kind = _HEADER.unpack(header)
    if meta_len > MAX_META_BYTES or blob_len > MAX_BLOB_BYTES:
        raise ProtocolError(
            f"frame header out of bounds: meta={meta_len} blob={blob_len}"
        )
    if kind not in KIND_NAMES:
        raise ProtocolError(f"unknown message kind {kind}")
    meta_bytes = _recv_exact(sock, meta_len) if meta_len else b"{}"
    if meta_bytes is None:
        raise ProtocolError("peer closed between header and meta")
    blob = _recv_exact(sock, blob_len) if blob_len else b""
    if blob is None:
        raise ProtocolError("peer closed between meta and blob")
    try:
        meta = json.loads(meta_bytes.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable meta: {exc}") from exc
    if not isinstance(meta, dict):
        raise ProtocolError(
            f"meta must be a JSON object, got {type(meta).__name__}"
        )
    return kind, meta, blob


def send_error(
    sock: socket.socket, code: str, message: str, **fields: Any
) -> None:
    """Send a typed MSG_ERROR frame (best effort — swallow send races)."""
    meta = {"code": code, "message": message, **fields}
    try:
        send_message(sock, MSG_ERROR, meta)
    except OSError:  # pragma: no cover - peer already gone
        pass
