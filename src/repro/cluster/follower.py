"""Follower node: bootstrap from a checkpoint, tail the leader's WAL.

:class:`FollowerNode` is one read replica (DESIGN §16).  Lifecycle:

1. **Bootstrap.**  Load the newest v3 checkpoint under the local home;
   when there is none, fetch the leader's newest checkpoint over the
   replication socket (written atomically: tmp + fsync + rename, the
   same discipline as :func:`repro.durability.write_checkpoint`).  The
   checkpoint's covered LSN seeds
   :class:`~repro.serve.ShardedSearchService` (``base_lsn``) and an
   optional :class:`~repro.serve.Frontend` serves reads on the
   standard v1 wire.
2. **Catch-up / tail.**  A replication thread connects to the leader,
   sends ``HELLO {start_lsn: acked}``, applies each ``WAL`` frame via
   ``service.ingest`` (idempotent-by-LSN, bit-identical to a
   single-process index that applied the same records) and acks the
   applied LSN.
3. **Reconnect.**  When the leader restarts or the stream drops, the
   follower re-dials with exponential backoff (``reconnect_min`` →
   ``reconnect_max``), resuming from its acked LSN.  A typed
   ``wal_truncated`` error from the leader (the log was pruned past our
   position) triggers a full re-bootstrap from a fresh checkpoint; a
   :class:`~repro.errors.WalGapError` raised by ``ingest`` (the stream
   skipped ahead) is surfaced back to the leader as a typed ``wal_gap``
   wire error — never a bare exception — and the stream re-syncs from
   the acked LSN on the next dial.
"""

from __future__ import annotations

import logging
import os
import socket
import tempfile
import threading
import time
from pathlib import Path
from typing import Any

from repro.cluster.protocol import (
    MSG_ACK,
    MSG_CKPT_CHUNK,
    MSG_CKPT_DONE,
    MSG_CKPT_META,
    MSG_ERROR,
    MSG_HELLO,
    MSG_PING,
    MSG_WAL,
    PROTOCOL_VERSION,
    ProtocolError,
    recv_message,
    send_error,
    send_message,
)
from repro.durability.checkpoint import (
    CHECKPOINT_SUBDIR,
    latest_checkpoint,
)
from repro.durability.wal import decode_wal_record
from repro.errors import ReproError, WalGapError
from repro.persistence import load_index, mmap_capable

logger = logging.getLogger("repro.cluster.follower")


class FollowerNode:
    """One read replica tailing a :class:`~repro.cluster.WalShipper`.

    Parameters
    ----------
    home:
        Local directory for this node's checkpoints (created on
        demand).  Independent from the leader's home — the follower
        keeps no WAL of its own; on restart it re-bootstraps from its
        checkpoint and re-streams the tail.
    leader:
        ``(host, port)`` of the leader's replication socket.
    n_shards:
        Worker processes for the local query fleet.
    http_port:
        When not ``None``, a :class:`~repro.serve.Frontend` serves
        ``POST /v1/search`` / ``GET /v1/health`` on this port
        (``0`` picks a free one).
    backend:
        Index open mode for the bootstrap checkpoint (``"eager"`` or
        ``"mmap"``; old-format checkpoints degrade to eager).
    registry:
        Optional metrics registry publishing the ``lazylsh_replica_*``
        family.
    reconnect_min / reconnect_max:
        Exponential backoff bounds between dial attempts (seconds).
    """

    def __init__(
        self,
        home: str | Path,
        leader: tuple[str, int],
        *,
        n_shards: int = 2,
        http_port: int | None = None,
        backend: str = "eager",
        registry=None,
        telemetry=None,
        reconnect_min: float = 0.05,
        reconnect_max: float = 2.0,
        socket_timeout: float = 5.0,
    ) -> None:
        self.home = Path(home)
        self.leader = (str(leader[0]), int(leader[1]))
        self.n_shards = int(n_shards)
        self.http_port = http_port
        self.backend = backend
        self.registry = registry
        self.telemetry = telemetry
        self.reconnect_min = float(reconnect_min)
        self.reconnect_max = float(reconnect_max)
        self.socket_timeout = float(socket_timeout)
        self.service = None
        self.frontend = None
        self._thread: threading.Thread | None = None
        self._running = threading.Event()
        self._sock: socket.socket | None = None
        self._sock_lock = threading.Lock()
        self.base_lsn = 0
        self.reconnects = 0
        self.bootstraps = 0
        self.records_applied = 0
        self.last_error: str | None = None
        self._connected = threading.Event()
        if registry is not None:
            self._m_applied = registry.counter(
                "lazylsh_replica_applied_records_total",
                "WAL records applied from the replication stream",
            )
            self._m_acked = registry.gauge(
                "lazylsh_replica_acked_lsn",
                "Last LSN this replica has applied and acked",
            )
            self._m_reconnects = registry.counter(
                "lazylsh_replica_reconnects_total",
                "Replication stream re-dials (leader restarts, drops)",
            )
            self._m_connected = registry.gauge(
                "lazylsh_replica_connected",
                "1 while the replication stream is established",
            )
            self._m_bootstraps = registry.counter(
                "lazylsh_replica_bootstraps_total",
                "Checkpoint bootstraps (initial + wal_truncated rebuilds)",
            )
        else:
            self._m_applied = None
            self._m_acked = None
            self._m_reconnects = None
            self._m_connected = None
            self._m_bootstraps = None

    # -- lifecycle ------------------------------------------------------

    @property
    def acked_lsn(self) -> int:
        """The replica's applied-and-acked LSN (its staleness position)."""
        return self.service.acked_lsn if self.service is not None else 0

    @property
    def connected(self) -> bool:
        return self._connected.is_set()

    @property
    def url(self) -> str | None:
        """Base URL of the local front door (None without one)."""
        return self.frontend.url if self.frontend is not None else None

    def start(self) -> "FollowerNode":
        """Bootstrap, serve, and start tailing (idempotent)."""
        if self._thread is not None:
            return self
        self._bootstrap()
        self._running.set()
        self._thread = threading.Thread(
            target=self._replication_loop,
            name="repro-follower-stream",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop tailing, the front door, and the fleet (idempotent)."""
        self._running.clear()
        with self._sock_lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:  # pragma: no cover - races with the peer
                    pass
                self._sock = None
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._teardown_serving()

    def __enter__(self) -> "FollowerNode":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def status(self) -> dict:
        """JSON-serialisable replica status (for ops and the CLI)."""
        return {
            "leader": list(self.leader),
            "connected": self.connected,
            "base_lsn": self.base_lsn,
            "acked_lsn": self.acked_lsn,
            "records_applied": self.records_applied,
            "reconnects": self.reconnects,
            "bootstraps": self.bootstraps,
            "url": self.url,
            "last_error": self.last_error,
        }

    def wait_for_lsn(self, lsn: int, timeout: float = 10.0) -> bool:
        """Block until the replica has applied ``lsn`` (True on success)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.acked_lsn >= lsn:
                return True
            time.sleep(0.005)
        return self.acked_lsn >= lsn

    # -- bootstrap ------------------------------------------------------

    def _bootstrap(self) -> None:
        """Load (or fetch) the newest checkpoint and start serving."""
        from repro.serve import Frontend, ShardedSearchService

        ckpt_dir = self.home / CHECKPOINT_SUBDIR
        ckpt_dir.mkdir(parents=True, exist_ok=True)
        found = latest_checkpoint(ckpt_dir)
        if found is None:
            found = self._fetch_checkpoint(ckpt_dir)
        self.base_lsn, ckpt_path = found
        backend = self.backend if mmap_capable(ckpt_path) else "eager"
        index = load_index(ckpt_path, backend=backend)
        service = ShardedSearchService(
            index,
            n_shards=self.n_shards,
            base_lsn=self.base_lsn,
            telemetry=self.telemetry,
        )
        self.service = service
        if self.http_port is not None:
            self.frontend = Frontend(
                service, port=int(self.http_port), registry=self.registry
            ).start()
        self.bootstraps += 1
        if self._m_bootstraps is not None:
            self._m_bootstraps.inc()
        if self._m_acked is not None:
            self._m_acked.set(self.base_lsn)
        logger.info(
            "follower bootstrapped from %s (LSN %d, %s open)",
            ckpt_path.name,
            self.base_lsn,
            backend,
        )

    def _teardown_serving(self) -> None:
        if self.frontend is not None:
            self.frontend.stop()
            self.frontend = None
        if self.service is not None:
            self.service.close()
            self.service = None

    def _rebootstrap(self, first_available: int) -> None:
        """The leader pruned past us: rebuild from a fresh checkpoint.

        The stale local checkpoint is removed first so the bootstrap
        fetches one covering at least ``first_available - 1``.
        """
        logger.warning(
            "log truncated under this replica (log now starts at LSN "
            "%d, we acked %d): re-bootstrapping",
            first_available,
            self.acked_lsn,
        )
        self._teardown_serving()
        ckpt_dir = self.home / CHECKPOINT_SUBDIR
        found = latest_checkpoint(ckpt_dir)
        if found is not None and found[0] < first_available - 1:
            found[1].unlink(missing_ok=True)
        self._bootstrap()

    def _fetch_checkpoint(self, ckpt_dir: Path) -> tuple[int, Path]:
        """Pull the leader's newest checkpoint over the wire (atomic)."""
        sock = self._dial()
        try:
            send_message(
                sock,
                MSG_HELLO,
                {
                    "v": PROTOCOL_VERSION,
                    "start_lsn": 0,
                    "need_checkpoint": True,
                },
            )
            message = recv_message(sock)
            if message is None:
                raise ProtocolError("leader hung up before the checkpoint")
            kind, meta, _blob = message
            if kind == MSG_ERROR:
                raise ReproError(
                    f"leader refused the checkpoint: {meta.get('code')}: "
                    f"{meta.get('message')}"
                )
            if kind != MSG_CKPT_META:
                raise ProtocolError(
                    f"expected ckpt_meta, got kind {kind}"
                )
            lsn = int(meta["lsn"])
            name = str(meta["name"])
            size = int(meta["size"])
            if os.sep in name or name.startswith("."):
                raise ProtocolError(f"suspicious checkpoint name {name!r}")
            fd, tmp_name = tempfile.mkstemp(
                prefix=".fetch-", suffix=".tmp", dir=ckpt_dir
            )
            received = 0
            try:
                with os.fdopen(fd, "wb") as handle:
                    while True:
                        message = recv_message(sock)
                        if message is None:
                            raise ProtocolError(
                                "leader hung up mid-checkpoint"
                            )
                        kind, meta, blob = message
                        if kind == MSG_CKPT_CHUNK:
                            handle.write(blob)
                            received += len(blob)
                            continue
                        if kind == MSG_CKPT_DONE:
                            break
                        raise ProtocolError(
                            f"unexpected kind {kind} inside checkpoint "
                            "transfer"
                        )
                    if received != size:
                        raise ProtocolError(
                            f"checkpoint transfer short: {received}/{size} "
                            "bytes"
                        )
                    handle.flush()
                    os.fsync(handle.fileno())
                final = ckpt_dir / name
                os.replace(tmp_name, final)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            logger.info(
                "fetched checkpoint %s (%d bytes, LSN %d) from %s:%d",
                name,
                received,
                lsn,
                *self.leader,
            )
            return lsn, final
        finally:
            sock.close()

    # -- replication stream ---------------------------------------------

    def _dial(self) -> socket.socket:
        sock = socket.create_connection(
            self.leader, timeout=self.socket_timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _replication_loop(self) -> None:
        """Dial, stream, back off, repeat — until :meth:`stop`."""
        backoff = self.reconnect_min
        while self._running.is_set():
            try:
                sock = self._dial()
            except OSError as exc:
                self.last_error = f"dial: {exc}"
                if self._running.is_set():
                    time.sleep(backoff)
                    backoff = min(backoff * 2, self.reconnect_max)
                continue
            with self._sock_lock:
                self._sock = sock
            self._connected.set()
            if self._m_connected is not None:
                self._m_connected.set(1)
            if self._m_reconnects is not None:
                self._m_reconnects.inc()
            self.reconnects += 1
            try:
                self._consume_stream(sock)
                backoff = self.reconnect_min  # the stream was healthy
            except (OSError, ProtocolError, ReproError) as exc:
                self.last_error = str(exc)
                logger.info("replication stream dropped: %s", exc)
            finally:
                self._connected.clear()
                if self._m_connected is not None:
                    self._m_connected.set(0)
                with self._sock_lock:
                    self._sock = None
                try:
                    sock.close()
                except OSError:  # pragma: no cover - races with the peer
                    pass
            if self._running.is_set():
                time.sleep(backoff)
                backoff = min(backoff * 2, self.reconnect_max)

    def _consume_stream(self, sock: socket.socket) -> None:
        assert self.service is not None
        send_message(
            sock,
            MSG_HELLO,
            {
                "v": PROTOCOL_VERSION,
                "start_lsn": int(self.service.acked_lsn),
                "need_checkpoint": False,
            },
        )
        sock.settimeout(self.socket_timeout)
        while self._running.is_set():
            try:
                message = recv_message(sock)
            except socket.timeout:
                continue  # idle leader slower than its heartbeat? re-poll
            if message is None:
                raise OSError("leader closed the stream")
            kind, meta, blob = message
            if kind == MSG_PING:
                send_message(
                    sock, MSG_ACK, {"lsn": int(self.service.acked_lsn)}
                )
                continue
            if kind == MSG_ERROR:
                code = str(meta.get("code", "unknown"))
                if code == "wal_truncated":
                    # Close the stream *before* re-bootstrapping: the
                    # rebuild forks fresh shard workers, and any socket
                    # still open here would be inherited by them,
                    # pinning the connection (and the leader's port)
                    # past our own close.
                    with self._sock_lock:
                        self._sock = None
                    try:
                        sock.close()
                    except OSError:  # pragma: no cover - peer races
                        pass
                    self._rebootstrap(int(meta.get("first_available", 0)))
                    return  # reconnect streams from the new base LSN
                raise ReproError(
                    f"leader error {code}: {meta.get('message')}"
                )
            if kind != MSG_WAL:
                raise ProtocolError(
                    f"unexpected kind {kind} on the replication stream"
                )
            record = decode_wal_record(blob)
            try:
                applied = self.service.ingest([record])
            except WalGapError as exc:
                # Surface the gap as a *typed* wire error — the leader
                # logs expected/received — then resync from the acked
                # LSN on the next dial.
                send_error(
                    sock,
                    exc.code,
                    str(exc),
                    expected=exc.expected,
                    received=exc.received,
                )
                raise
            if applied:
                self.records_applied += applied
                if self._m_applied is not None:
                    self._m_applied.inc(applied)
            acked = int(self.service.acked_lsn)
            if self._m_acked is not None:
                self._m_acked.set(acked)
            send_message(sock, MSG_ACK, {"lsn": acked})
