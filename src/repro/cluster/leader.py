"""Leader-side WAL shipping server (DESIGN §16).

:class:`WalShipper` serves a durable home's write-ahead log to any
number of followers over the :mod:`repro.cluster.protocol` framing.  It
is strictly *read-only* over the home: the writer (a
:class:`~repro.durability.DurableIndex` in this or another process)
keeps appending and checkpointing as usual, and each follower
connection gets its own :class:`~repro.durability.WalFeed` tailing the
same directory — the shipper never truncates, repairs or locks
anything.

Per connection the conversation is:

1. ``HELLO {start_lsn, need_checkpoint}`` from the follower.
2. If the follower needs a checkpoint (it has none locally), the newest
   one streams over in chunks; the stream position becomes the
   checkpoint's covered LSN.
3. If the requested position was pruned by a checkpoint (the feed would
   stall forever), a typed ``wal_truncated`` error is sent instead and
   the connection closes — the follower re-connects asking for a
   checkpoint.
4. ``WAL`` frames ship from the agreed LSN as the log grows, with
   ``PING`` heartbeats while idle; the follower acks applied LSNs on
   the same socket (drained by a per-connection reader thread, feeding
   the ``lazylsh_cluster_follower_acked_lsn`` gauge the router's
   failover logic ultimately depends on).
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from pathlib import Path
from typing import Any

import repro.cluster.protocol as protocol
from repro.cluster.protocol import (
    MSG_ACK,
    MSG_CKPT_CHUNK,
    MSG_CKPT_DONE,
    MSG_CKPT_META,
    MSG_ERROR,
    MSG_HELLO,
    MSG_PING,
    MSG_WAL,
    ProtocolError,
    recv_message,
    send_error,
    send_message,
)
from repro.durability.checkpoint import (
    CHECKPOINT_SUBDIR,
    WAL_SUBDIR,
    latest_checkpoint,
)
from repro.durability.feed import WalFeed
from repro.durability.wal import (
    WalTruncatedError,
    encode_wal_record,
    list_segments,
)
from repro.errors import ReproError

logger = logging.getLogger("repro.cluster.leader")


class _Connection:
    """One follower's replication stream (leader-side bookkeeping)."""

    def __init__(self, sock: socket.socket, peer: str) -> None:
        self.sock = sock
        self.peer = peer
        self.acked_lsn = -1  # -1 until the first ack
        self.shipped = 0
        self.connected_at = time.time()
        self.closed = threading.Event()


class WalShipper:
    """Stream a durable home's WAL to followers over TCP.

    Parameters
    ----------
    home:
        The durable home directory (``wal/`` + ``checkpoints/``), as
        written by :func:`repro.durability.create` /
        :class:`~repro.durability.DurableIndex`.
    host / port:
        Bind address; ``port=0`` picks a free port (read :attr:`port`
        after :meth:`start`).
    poll_interval:
        Idle sleep between WAL polls per connection (seconds).  Bounds
        steady-state replication lag from the leader side.
    heartbeat_seconds:
        A ``PING`` ships after this long without WAL traffic so
        followers can tell an idle log from a dead leader.
    registry:
        Optional :class:`~repro.obs.MetricsRegistry` publishing the
        ``lazylsh_cluster_*`` leader-side family.
    """

    def __init__(
        self,
        home: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = 0.02,
        heartbeat_seconds: float = 0.5,
        registry=None,
    ) -> None:
        self.home = Path(home)
        self.wal_dir = self.home / WAL_SUBDIR
        self.ckpt_dir = self.home / CHECKPOINT_SUBDIR
        if not self.wal_dir.is_dir():
            raise ReproError(
                f"{self.home} is not a durable home (no {WAL_SUBDIR}/ "
                "subdirectory); run `repro ingest --init` first"
            )
        self.host = host
        self._requested_port = int(port)
        self.poll_interval = float(poll_interval)
        self.heartbeat_seconds = float(heartbeat_seconds)
        self._server: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._connections: dict[str, _Connection] = {}
        self._lock = threading.Lock()
        self._running = threading.Event()
        self._port = 0
        if registry is not None:
            self._m_followers = registry.gauge(
                "lazylsh_cluster_followers",
                "Follower connections currently streaming",
            )
            self._m_shipped = registry.counter(
                "lazylsh_cluster_shipped_records_total",
                "WAL records shipped to followers",
            )
            self._m_acked = registry.gauge(
                "lazylsh_cluster_follower_acked_lsn",
                "Last LSN acked by each follower",
            )
            self._m_errors = registry.counter(
                "lazylsh_cluster_ship_errors_total",
                "Replication stream errors by code",
            )
        else:
            self._m_followers = None
            self._m_shipped = None
            self._m_acked = None
            self._m_errors = None

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (0 until started)."""
        return self._port

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self._port)

    def start(self) -> "WalShipper":
        """Bind and accept on a daemon thread (idempotent)."""
        if self._accept_thread is not None:
            return self
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.host, self._requested_port))
        server.listen(16)
        server.settimeout(0.2)
        self._server = server
        self._port = server.getsockname()[1]
        self._running.set()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-wal-shipper", daemon=True
        )
        self._accept_thread.start()
        logger.info("WAL shipper serving %s on port %d", self.home, self._port)
        return self

    def stop(self) -> None:
        """Close every stream and join the threads (idempotent)."""
        self._running.clear()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:  # pragma: no cover - already closed
                pass
        with self._lock:
            conns = list(self._connections.values())
        for conn in conns:
            try:
                conn.sock.close()
            except OSError:  # pragma: no cover - races with the peer
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for thread in self._conn_threads:
            thread.join(timeout=5)
        self._accept_thread = None
        self._conn_threads = []
        self._server = None
        self._port = 0

    def __enter__(self) -> "WalShipper":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def followers(self) -> dict[str, dict]:
        """Live per-follower stream stats (peer → ack/shipped/age)."""
        now = time.time()
        with self._lock:
            return {
                peer: {
                    "acked_lsn": conn.acked_lsn,
                    "shipped": conn.shipped,
                    "connected_seconds": now - conn.connected_at,
                }
                for peer, conn in self._connections.items()
            }

    # -- accept / per-connection shipping -------------------------------

    def _accept_loop(self) -> None:
        assert self._server is not None
        while self._running.is_set():
            try:
                sock, addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # server socket closed by stop()
            peer = f"{addr[0]}:{addr[1]}"
            thread = threading.Thread(
                target=self._serve_follower,
                args=(sock, peer),
                name=f"repro-ship-{peer}",
                daemon=True,
            )
            self._conn_threads.append(thread)
            thread.start()

    def _serve_follower(self, sock: socket.socket, peer: str) -> None:
        conn = _Connection(sock, peer)
        with self._lock:
            self._connections[peer] = conn
        if self._m_followers is not None:
            self._m_followers.set(len(self._connections))
        try:
            self._stream(conn)
        except (OSError, ProtocolError) as exc:
            logger.info("follower %s dropped: %s", peer, exc)
        except ReproError as exc:
            logger.warning("stream to %s failed: %s", peer, exc)
            if self._m_errors is not None:
                self._m_errors.inc(code=exc.code)
        finally:
            conn.closed.set()
            try:
                sock.close()
            except OSError:  # pragma: no cover - races with the peer
                pass
            with self._lock:
                self._connections.pop(peer, None)
                remaining = len(self._connections)
            if self._m_followers is not None:
                self._m_followers.set(remaining)

    def _stream(self, conn: _Connection) -> None:
        sock = conn.sock
        sock.settimeout(5.0)
        hello = recv_message(sock)
        if hello is None:
            return
        kind, meta, _blob = hello
        if kind != MSG_HELLO:
            raise ProtocolError(
                f"expected HELLO, got {protocol.KIND_NAMES.get(kind, kind)}"
            )
        version = meta.get("v", protocol.PROTOCOL_VERSION)
        if version != protocol.PROTOCOL_VERSION:
            send_error(
                sock,
                "cluster_protocol",
                f"unsupported protocol version {version!r}",
            )
            return
        start_lsn = int(meta.get("start_lsn", 0))
        if meta.get("need_checkpoint", False):
            start_lsn = self._send_checkpoint(sock)
        elif not self._reachable(start_lsn):
            first = self._first_available()
            if self._m_errors is not None:
                self._m_errors.inc(code="wal_truncated")
            send_error(
                sock,
                "wal_truncated",
                f"log starts at LSN {first}, follower asked for "
                f"{start_lsn + 1}; re-bootstrap from a checkpoint",
                first_available=first,
            )
            return
        # Acks flow back on the same socket; a dedicated reader keeps
        # the shipping loop from trading latency for ack handling.
        ack_thread = threading.Thread(
            target=self._drain_acks,
            args=(conn,),
            name=f"repro-ship-ack-{conn.peer}",
            daemon=True,
        )
        ack_thread.start()
        feed = WalFeed(self.wal_dir, start_lsn=start_lsn)
        last_sent = time.monotonic()
        try:
            while self._running.is_set() and not conn.closed.is_set():
                try:
                    records = feed.poll(max_records=256)
                except WalTruncatedError as exc:
                    if self._m_errors is not None:
                        self._m_errors.inc(code=exc.code)
                    send_error(
                        sock,
                        exc.code,
                        str(exc),
                        first_available=exc.first_available,
                    )
                    return
                if records:
                    for record in records:
                        send_message(
                            sock,
                            MSG_WAL,
                            {"lsn": int(record.lsn)},
                            encode_wal_record(record),
                        )
                    conn.shipped += len(records)
                    if self._m_shipped is not None:
                        self._m_shipped.inc(len(records))
                    last_sent = time.monotonic()
                    continue
                if time.monotonic() - last_sent >= self.heartbeat_seconds:
                    send_message(sock, MSG_PING, {"lsn": feed.last_lsn})
                    last_sent = time.monotonic()
                time.sleep(self.poll_interval)
        finally:
            conn.closed.set()
            ack_thread.join(timeout=5)

    def _drain_acks(self, conn: _Connection) -> None:
        """Read ACK/ERROR frames until the stream dies."""
        conn.sock.settimeout(0.5)
        while self._running.is_set() and not conn.closed.is_set():
            try:
                message = recv_message(conn.sock)
            except socket.timeout:
                continue
            except (OSError, ProtocolError):
                break
            if message is None:
                break
            kind, meta, _blob = message
            if kind == MSG_ACK:
                conn.acked_lsn = max(conn.acked_lsn, int(meta.get("lsn", 0)))
                if self._m_acked is not None:
                    self._m_acked.set(conn.acked_lsn, peer=conn.peer)
            elif kind == MSG_ERROR:
                logger.warning(
                    "follower %s reported %s: %s",
                    conn.peer,
                    meta.get("code"),
                    meta.get("message"),
                )
                if self._m_errors is not None:
                    self._m_errors.inc(code=str(meta.get("code", "unknown")))
                break
        conn.closed.set()

    # -- checkpoint hand-off --------------------------------------------

    def _send_checkpoint(self, sock: socket.socket) -> int:
        """Stream the newest checkpoint; returns its covered LSN."""
        newest = latest_checkpoint(self.ckpt_dir)
        if newest is None:
            raise ReproError(
                f"follower asked for a checkpoint but {self.ckpt_dir} "
                "has none"
            )
        lsn, path = newest
        size = path.stat().st_size
        send_message(
            sock,
            MSG_CKPT_META,
            {"lsn": int(lsn), "name": path.name, "size": int(size)},
        )
        sent = 0
        with path.open("rb") as handle:
            while True:
                chunk = handle.read(protocol.CKPT_CHUNK_BYTES)
                if not chunk:
                    break
                send_message(sock, MSG_CKPT_CHUNK, {"offset": sent}, chunk)
                sent += len(chunk)
        send_message(sock, MSG_CKPT_DONE, {"lsn": int(lsn), "size": sent})
        return int(lsn)

    # -- log-position checks --------------------------------------------

    def _first_available(self) -> int:
        segments = list_segments(self.wal_dir)
        if segments:
            return segments[0][0]
        newest = latest_checkpoint(self.ckpt_dir)
        return (newest[0] + 1) if newest is not None else 1

    def _reachable(self, start_lsn: int) -> bool:
        """Can a feed resume from ``start_lsn`` without a pruned gap?"""
        segments = list_segments(self.wal_dir)
        if segments:
            return segments[0][0] <= start_lsn + 1
        # Empty log: fine unless a checkpoint proves records existed
        # beyond the follower's position.
        newest = latest_checkpoint(self.ckpt_dir)
        return newest is None or newest[0] <= start_lsn
