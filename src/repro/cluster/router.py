"""Cluster router: health checks, shard routing, staleness-bounded
follower reads, and leader failover (DESIGN §16).

:class:`Router` is a thin HTTP tier in front of a set of node front
doors (one leader + N followers, each a :class:`~repro.serve.Frontend`
speaking the v1 wire).  It keeps no index state of its own:

* A **health loop** polls every node's ``GET /v1/health`` each
  ``check_interval``, reading liveness plus the node's applied LSN
  (``wal.acked_lsn``).  ``failure_threshold`` consecutive probe
  failures mark a node down.  The cluster **commit point** is the
  highest LSN ever observed on any node — a sticky high-water mark, so
  a dead leader's position still counts against follower lag.
* A **consistent shard map** assigns ``n_slots`` virtual shards to
  healthy nodes by rendezvous (highest-random-weight) hashing: adding
  or removing one node only moves the slots it owns, never reshuffles
  the rest.
* ``POST /v1/search`` **proxies** on the v1 wire.  Requests without a
  staleness bound go to the acting leader (freshest node).  Requests
  with ``max_lag_lsn`` may be served by any healthy node whose lag
  (commit point minus acked LSN) is within the bound — picked by
  rendezvous weight for the query's slot so repeat queries hit the
  same replica's caches — and are rejected with a typed ``stale_read``
  error when no node qualifies.
* **Failover**: when the configured leader stops answering, the acting
  leader becomes the healthy node with the highest acked LSN (the
  caught-up follower), counted in ``lazylsh_cluster_failovers_total``.
  When the configured leader returns it resumes (its durable WAL means
  it can only be ahead of or equal to any follower it fed).
"""

from __future__ import annotations

import hashlib
import json
import logging
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.api import SearchRequest
from repro.errors import (
    ReproError,
    StaleReadError,
    UnavailableError,
)
from repro.serve.frontend import HTTP_STATUS_BY_CODE, error_body

logger = logging.getLogger("repro.cluster.router")

#: Virtual shard slots in the consistent assignment.
DEFAULT_SLOTS = 16


@dataclass
class NodeState:
    """The router's live view of one node."""

    name: str
    url: str
    healthy: bool = False
    acked_lsn: int = 0
    failures: int = 0
    probes: int = 0
    last_seen: float = 0.0
    detail: dict = field(default_factory=dict)

    def snapshot(self, commit_lsn: int) -> dict:
        return {
            "url": self.url,
            "healthy": self.healthy,
            "acked_lsn": self.acked_lsn,
            "lag_lsn": max(0, commit_lsn - self.acked_lsn),
            "failures": self.failures,
            "probes": self.probes,
        }


def _rendezvous_weight(slot: int, name: str) -> int:
    digest = hashlib.sha1(f"{slot}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def slot_of(query: Any, n_slots: int = DEFAULT_SLOTS) -> int:
    """The virtual shard slot of one query (stable across processes)."""
    payload = json.dumps(query, separators=(",", ":")).encode()
    digest = hashlib.sha1(payload).digest()
    return int.from_bytes(digest[:8], "big") % n_slots


def assign_slots(
    names: list[str], n_slots: int = DEFAULT_SLOTS
) -> dict[int, str]:
    """Rendezvous-hash every slot to one of ``names`` (must be
    non-empty).  Removing a name moves only the slots it owned."""
    return {
        slot: max(names, key=lambda name: _rendezvous_weight(slot, name))
        for slot in range(n_slots)
    }


class Router:
    """HTTP router over a replicated node set.

    Parameters
    ----------
    nodes:
        ``name -> base_url`` of every node front door (e.g.
        ``{"leader": "http://127.0.0.1:8301", ...}``).
    leader:
        The configured leader's name (must be a key of ``nodes``).
    host / port:
        Bind address of the router's own HTTP server; ``port=0`` picks
        a free port.
    check_interval:
        Health-probe period in seconds.
    failure_threshold:
        Consecutive probe failures before a node is marked down (so
        failover detection takes about ``check_interval *
        failure_threshold`` plus one probe timeout).
    n_slots:
        Virtual shard slots in the consistent assignment.
    probe_timeout:
        Per-probe HTTP timeout in seconds.
    proxy_timeout:
        Default per-request proxy timeout (overridden by a request's
        own ``deadline_ms`` budget when longer).
    registry:
        Optional metrics registry publishing ``lazylsh_cluster_*`` and
        ``lazylsh_replica_lag_lsn``.
    """

    def __init__(
        self,
        nodes: dict[str, str],
        *,
        leader: str,
        host: str = "127.0.0.1",
        port: int = 0,
        check_interval: float = 0.25,
        failure_threshold: int = 2,
        n_slots: int = DEFAULT_SLOTS,
        probe_timeout: float = 1.0,
        proxy_timeout: float = 30.0,
        registry=None,
    ) -> None:
        if leader not in nodes:
            raise ReproError(
                f"leader {leader!r} is not among the nodes "
                f"{sorted(nodes)}"
            )
        self.configured_leader = leader
        self.check_interval = float(check_interval)
        self.failure_threshold = int(failure_threshold)
        self.n_slots = int(n_slots)
        self.probe_timeout = float(probe_timeout)
        self.proxy_timeout = float(proxy_timeout)
        self.host = host
        self._requested_port = int(port)
        self._nodes = {
            name: NodeState(name=name, url=url.rstrip("/"))
            for name, url in nodes.items()
        }
        self._lock = threading.Lock()
        self._commit_lsn = 0
        self._acting_leader: str | None = None
        self._failovers = 0
        self._server: ThreadingHTTPServer | None = None
        self._server_thread: threading.Thread | None = None
        self._health_thread: threading.Thread | None = None
        self._running = threading.Event()
        self._port = 0
        self.registry = registry
        if registry is not None:
            self._m_lag = registry.gauge(
                "lazylsh_replica_lag_lsn",
                "Records behind the cluster commit point, per node",
            )
            self._m_healthy = registry.gauge(
                "lazylsh_cluster_node_healthy",
                "1 while the node answers health probes",
            )
            self._m_failovers = registry.counter(
                "lazylsh_cluster_failovers_total",
                "Acting-leader changes after the leader stopped answering",
            )
            self._m_proxied = registry.counter(
                "lazylsh_cluster_proxied_total",
                "Search requests proxied, by node",
            )
            self._m_rejected = registry.counter(
                "lazylsh_cluster_rejected_total",
                "Requests the router rejected, by error code",
            )
            self._m_commit = registry.gauge(
                "lazylsh_cluster_commit_lsn",
                "Highest LSN observed on any node (the commit point)",
            )
        else:
            self._m_lag = None
            self._m_healthy = None
            self._m_failovers = None
            self._m_proxied = None
            self._m_rejected = None
            self._m_commit = None

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self._port}"

    @property
    def failovers(self) -> int:
        return self._failovers

    def start(self) -> "Router":
        """Probe once, then serve (idempotent)."""
        if self._server is not None:
            return self
        self._running.set()
        self._probe_all()  # synchronous first sweep: route immediately
        router = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args: Any) -> None:  # quiet
                pass

            def do_GET(self) -> None:
                router._handle_get(self)

            def do_POST(self) -> None:
                router._handle_post(self)

        server = ThreadingHTTPServer(
            (self.host, self._requested_port), _Handler
        )
        server.daemon_threads = True
        self._server = server
        self._port = server.server_address[1]
        self._server_thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-router-http",
            daemon=True,
        )
        self._server_thread.start()
        self._health_thread = threading.Thread(
            target=self._health_loop, name="repro-router-health", daemon=True
        )
        self._health_thread.start()
        logger.info("cluster router listening on %s", self.url)
        return self

    def stop(self) -> None:
        self._running.clear()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=5)
        if self._health_thread is not None:
            self._health_thread.join(timeout=5)
        self._server = None
        self._server_thread = None
        self._health_thread = None
        self._port = 0

    def __enter__(self) -> "Router":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- health / membership --------------------------------------------

    def _probe_node(self, node: NodeState) -> None:
        try:
            with urllib.request.urlopen(
                node.url + "/v1/health", timeout=self.probe_timeout
            ) as response:
                report = json.loads(response.read().decode())
        except urllib.error.HTTPError as exc:
            # 503 still carries the health report body.
            try:
                report = json.loads(exc.read().decode())
            except (ValueError, OSError):
                report = {"healthy": False}
        except (OSError, ValueError):
            node.probes += 1
            node.failures += 1
            if node.failures >= self.failure_threshold:
                node.healthy = False
            return
        node.probes += 1
        node.failures = 0
        node.last_seen = time.time()
        node.healthy = bool(report.get("healthy", False))
        node.detail = {
            "restarts": report.get("restarts"),
            "queries_served": report.get("queries_served"),
        }
        wal = report.get("wal") or {}
        try:
            node.acked_lsn = max(node.acked_lsn, int(wal.get("acked_lsn", 0)))
        except (TypeError, ValueError):
            pass

    def _probe_all(self) -> None:
        with self._lock:
            nodes = list(self._nodes.values())
        for node in nodes:
            self._probe_node(node)
        self._recompute()

    def _recompute(self) -> None:
        """Refresh the commit point, acting leader, and gauges."""
        with self._lock:
            states = list(self._nodes.values())
            self._commit_lsn = max(
                [self._commit_lsn] + [n.acked_lsn for n in states]
            )
            healthy = [n for n in states if n.healthy]
            previous = self._acting_leader
            configured = self._nodes[self.configured_leader]
            if configured.healthy:
                acting: str | None = configured.name
            elif healthy:
                # The caught-up follower: highest acked LSN wins, name
                # as a deterministic tie-break.
                acting = max(
                    healthy, key=lambda n: (n.acked_lsn, n.name)
                ).name
            else:
                acting = None
            self._acting_leader = acting
            if (
                previous is not None
                and acting is not None
                and acting != previous
            ):
                self._failovers += 1
                if self._m_failovers is not None:
                    self._m_failovers.inc()
                logger.warning(
                    "acting leader changed: %s -> %s (commit LSN %d)",
                    previous,
                    acting,
                    self._commit_lsn,
                )
            commit = self._commit_lsn
        if self._m_commit is not None:
            self._m_commit.set(commit)
        for node in states:
            if self._m_healthy is not None:
                self._m_healthy.set(1 if node.healthy else 0, node=node.name)
            if self._m_lag is not None:
                self._m_lag.set(
                    max(0, commit - node.acked_lsn), node=node.name
                )

    def _health_loop(self) -> None:
        while self._running.is_set():
            time.sleep(self.check_interval)
            if not self._running.is_set():
                break
            self._probe_all()

    # -- routing --------------------------------------------------------

    def _route(self, record: dict) -> NodeState:
        """Pick the node to serve one parsed v1 request (or raise)."""
        bound = record.get("max_lag_lsn")
        with self._lock:
            commit = self._commit_lsn
            healthy = [n for n in self._nodes.values() if n.healthy]
            acting = self._acting_leader
        if not healthy or acting is None:
            raise UnavailableError(
                "no healthy node in the cluster; retry after a backoff"
            )
        if bound is None:
            return self._nodes[acting]
        bound = int(bound)
        eligible = [
            n for n in healthy if (commit - n.acked_lsn) <= bound
        ]
        if not eligible:
            best = min(commit - n.acked_lsn for n in healthy)
            raise StaleReadError(
                f"no replica within max_lag_lsn={bound} of commit LSN "
                f"{commit} (best available lag: {best}); relax the bound "
                "or retry once replication catches up"
            )
        slot = slot_of(record.get("query"), self.n_slots)
        return max(
            eligible, key=lambda n: _rendezvous_weight(slot, n.name)
        )

    def _note_proxy_failure(self, node: NodeState) -> None:
        with self._lock:
            node.failures += 1
            if node.failures >= self.failure_threshold:
                node.healthy = False
        self._recompute()

    def _proxy_search(
        self, record: dict, body: bytes
    ) -> tuple[int, bytes]:
        """Route and forward one search; one retry after a node fault."""
        deadline_ms = record.get("deadline_ms")
        timeout = self.proxy_timeout
        if deadline_ms is not None:
            try:
                timeout = max(float(deadline_ms) / 1000.0, 0.05)
            except (TypeError, ValueError):
                pass
        last_error: Exception | None = None
        for _attempt in range(2):
            node = self._route(record)  # raises typed errors
            request = urllib.request.Request(
                node.url + "/v1/search",
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=timeout
                ) as response:
                    payload = json.loads(response.read().decode())
                    status = response.status
            except urllib.error.HTTPError as exc:
                # A typed node-side error (400/429/503...): relay as-is.
                data = exc.read()
                if self._m_proxied is not None:
                    self._m_proxied.inc(node=node.name)
                return exc.code, data
            except (OSError, ValueError) as exc:
                # The node died under the request: mark and retry once
                # on whatever the recomputed topology offers.
                last_error = exc
                self._note_proxy_failure(node)
                continue
            if self._m_proxied is not None:
                self._m_proxied.inc(node=node.name)
            payload["served_by"] = node.name
            return status, json.dumps(payload).encode()
        raise UnavailableError(
            f"every candidate node failed mid-request "
            f"(last error: {last_error}); retry after a backoff"
        )

    # -- HTTP handlers ---------------------------------------------------

    def describe(self) -> dict:
        """Topology snapshot: nodes, lag, slot assignment, failovers."""
        with self._lock:
            commit = self._commit_lsn
            nodes = {
                name: node.snapshot(commit)
                for name, node in self._nodes.items()
            }
            healthy = sorted(
                name for name, node in self._nodes.items() if node.healthy
            )
            acting = self._acting_leader
            failovers = self._failovers
        slots = assign_slots(healthy, self.n_slots) if healthy else {}
        return {
            "healthy": acting is not None,
            "configured_leader": self.configured_leader,
            "acting_leader": acting,
            "commit_lsn": commit,
            "failovers": failovers,
            "n_slots": self.n_slots,
            "slots": {str(slot): name for slot, name in slots.items()},
            "nodes": nodes,
        }

    def _send(
        self, handler: BaseHTTPRequestHandler, status: int, body: bytes
    ) -> None:
        handler.send_response(status)
        handler.send_header("Content-Type", "application/json")
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        try:
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    def _send_json(
        self, handler: BaseHTTPRequestHandler, status: int, payload: dict
    ) -> None:
        self._send(handler, status, json.dumps(payload).encode())

    def _handle_get(self, handler: BaseHTTPRequestHandler) -> None:
        path = urllib.parse.urlparse(handler.path).path
        if path == "/v1/health":
            report = self.describe()
            status = 200 if report["healthy"] else 503
            self._send_json(handler, status, report)
            return
        if path == "/v1/cluster":
            self._send_json(handler, 200, self.describe())
            return
        if path == "/metrics" and self.registry is not None:
            body = self.registry.render_prometheus().encode()
            handler.send_response(200)
            handler.send_header(
                "Content-Type", "text/plain; version=0.0.4"
            )
            handler.send_header("Content-Length", str(len(body)))
            handler.end_headers()
            handler.wfile.write(body)
            return
        self._send_json(
            handler, 404, error_body("not_found", f"unknown path {path!r}")
        )

    def _handle_post(self, handler: BaseHTTPRequestHandler) -> None:
        path = urllib.parse.urlparse(handler.path).path
        if path != "/v1/search":
            self._send_json(
                handler,
                404,
                error_body("not_found", f"unknown path {path!r}"),
            )
            return
        try:
            length = int(handler.headers.get("Content-Length", "0"))
            body = handler.rfile.read(length) if length else b""
            record = json.loads(body.decode())
        except (ValueError, OSError) as exc:
            self._send_json(
                handler,
                400,
                error_body("wire_format", f"invalid JSON body: {exc}"),
            )
            return
        try:
            # Full edge validation (including max_lag_lsn) before any
            # node sees the request; the body forwards verbatim.
            SearchRequest.from_dict(record)
            status, payload = self._proxy_search(record, body)
        except ReproError as exc:
            if self._m_rejected is not None:
                self._m_rejected.inc(code=exc.code)
            status = HTTP_STATUS_BY_CODE.get(exc.code, 500)
            self._send_json(handler, status, error_body(exc.code, str(exc)))
            return
        except Exception as exc:  # noqa: BLE001 - the edge must not drop
            self._send_json(
                handler,
                500,
                error_body("internal", f"{type(exc).__name__}: {exc}"),
            )
            return
        self._send(handler, status, payload)
