"""Uniform sampling inside a unit ``lp`` ball (Algorithm 1 of the paper).

Follows Calafiore, Dabbene & Tempo (1998): to sample uniformly in
``Bp(origin, 1)`` in ``R^d``:

1. draw ``d`` independent scalars ``xi_i ~ G(1, 1, p)`` (generalized gamma),
2. attach independent random signs: ``x_i = s_i * xi_i``,
3. draw ``w ~ Uniform(0, 1)`` and set ``z = w^(1/d)``,
4. return ``y = z * x / ||x||_p``.

Step 1-2 produce a vector whose direction is uniform w.r.t. the ``lp``
sphere; step 3-4 push it inward with the density required for volumetric
uniformity.
"""

from __future__ import annotations

import numpy as np

from repro._typing import SeedLike, as_rng
from repro.errors import InvalidParameterError
from repro.metrics.lp import lp_norm, validate_p
from repro.metrics.stable import GeneralizedGamma


def sample_lp_ball(
    n: int,
    d: int,
    p: float,
    *,
    radius: float = 1.0,
    center: np.ndarray | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sample ``n`` points uniformly from ``Bp(center, radius)`` in ``R^d``.

    Parameters
    ----------
    n:
        Number of points to draw.
    d:
        Dimensionality of the ambient space.
    p:
        The ``lp`` exponent (any ``p > 0``).
    radius:
        Ball radius; the unit ball is scaled by this factor.
    center:
        Optional centre; defaults to the origin.
    seed:
        Seed or generator for reproducibility.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n, d)``.
    """
    if n < 0:
        raise InvalidParameterError(f"sample count must be >= 0, got {n}")
    if d < 1:
        raise InvalidParameterError(f"dimensionality must be >= 1, got {d}")
    if radius < 0:
        raise InvalidParameterError(f"radius must be >= 0, got {radius}")
    p = validate_p(p)
    rng = as_rng(seed)
    if n == 0:
        points = np.empty((0, d), dtype=np.float64)
    else:
        gg = GeneralizedGamma(alpha=1.0, lam=1.0, upsilon=p)
        xi = gg.sample((n, d), seed=rng)
        signs = rng.choice([-1.0, 1.0], size=(n, d))
        x = signs * xi
        z = np.power(rng.uniform(0.0, 1.0, size=n), 1.0 / d)
        norms = lp_norm(x, p, axis=1)
        # A zero norm has probability zero; guard against it anyway.
        norms = np.where(norms == 0.0, 1.0, norms)
        points = (z / norms)[:, None] * x
    points = points * radius
    if center is not None:
        center = np.asarray(center, dtype=np.float64)
        if center.shape != (d,):
            raise InvalidParameterError(
                f"center must have shape ({d},), got {center.shape}"
            )
        points = points + center
    return points


def sample_lp_sphere(
    n: int,
    d: int,
    p: float,
    *,
    radius: float = 1.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sample ``n`` points uniformly from the ``lp`` sphere of ``radius``.

    Same construction as :func:`sample_lp_ball` without the radial
    ``w^(1/d)`` shrink; useful for probing the boundary geometry in tests.
    """
    if n == 0:
        return np.empty((0, d), dtype=np.float64)
    p = validate_p(p)
    rng = as_rng(seed)
    gg = GeneralizedGamma(alpha=1.0, lam=1.0, upsilon=p)
    xi = gg.sample((n, d), seed=rng)
    signs = rng.choice([-1.0, 1.0], size=(n, d))
    x = signs * xi
    norms = lp_norm(x, p, axis=1)
    norms = np.where(norms == 0.0, 1.0, norms)
    return radius * x / norms[:, None]
