"""Classic LSH families beyond p-stable projections (Section 6.2).

The related-work section situates LazyLSH in the LSH family zoo:

* **bit sampling** for the Hamming distance (Indyk & Motwani, STOC 1998)
  — ``h(v) = v[i]`` for a random coordinate ``i``; collision probability
  ``1 - ham(a, b) / d``;
* **sign random projections / SimHash** for the angular distance
  (Charikar, STOC 2002) — ``h(v) = sign(a . v)``; collision probability
  ``1 - angle(a, b) / pi``;
* **MinHash** for the Jaccard distance between sets (Broder, 1997) —
  ``h(S) = min(pi(S))`` for a random permutation ``pi``; collision
  probability equals the Jaccard similarity.

These are self-contained implementations with the analytic collision
probabilities exposed, so the locality-sensitivity definitions can be
verified empirically (see ``tests/test_families.py``).  They are not used
by the LazyLSH engine itself — fractional metrics need the p-stable
machinery — but complete the library as an LSH toolkit.
"""

from __future__ import annotations

import numpy as np

from repro._typing import SeedLike, as_rng
from repro.errors import InvalidParameterError


def hamming_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Hamming distance between binary vectors (or row-wise for 2-D)."""
    a = np.asarray(a)
    b = np.asarray(b)
    return np.sum(a != b, axis=-1)


def angular_distance(a: np.ndarray, b: np.ndarray) -> float:
    """The angle (radians) between two vectors — SimHash's metric."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        raise InvalidParameterError("angular distance undefined for zero vectors")
    cosine = float(np.clip(np.dot(a, b) / denom, -1.0, 1.0))
    return float(np.arccos(cosine))


def jaccard_similarity(a: set, b: set) -> float:
    """Jaccard similarity ``|a & b| / |a | b|`` of two sets."""
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


class BitSamplingLSH:
    """Hamming-space LSH: each function samples one random coordinate.

    ``Pr[h(a) = h(b)] = 1 - ham(a, b) / d``.
    """

    def __init__(self, d: int, num_functions: int, seed: SeedLike = None) -> None:
        if d < 1 or num_functions < 1:
            raise InvalidParameterError("d and num_functions must be >= 1")
        self.d = d
        rng = as_rng(seed)
        self.coordinates = rng.integers(0, d, size=num_functions)

    def hash_points(self, points: np.ndarray) -> np.ndarray:
        """Hash binary row vectors; returns ``(num_functions, n)``."""
        points = np.atleast_2d(np.asarray(points))
        if points.shape[1] != self.d:
            raise InvalidParameterError(
                f"points have {points.shape[1]} coordinates, expected {self.d}"
            )
        return points[:, self.coordinates].T

    def collision_probability(self, distance: float) -> float:
        """Analytic single-function collision probability."""
        if not 0 <= distance <= self.d:
            raise InvalidParameterError(
                f"Hamming distance must lie in [0, {self.d}], got {distance}"
            )
        return 1.0 - distance / self.d


class SimHash:
    """Angular-distance LSH: one sign-of-projection bit per function.

    ``Pr[h(a) = h(b)] = 1 - angle(a, b) / pi``.
    """

    def __init__(self, d: int, num_functions: int, seed: SeedLike = None) -> None:
        if d < 1 or num_functions < 1:
            raise InvalidParameterError("d and num_functions must be >= 1")
        self.d = d
        rng = as_rng(seed)
        self.hyperplanes = rng.standard_normal((d, num_functions))

    def hash_points(self, points: np.ndarray) -> np.ndarray:
        """Hash row vectors to sign bits; returns ``(num_functions, n)``."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.d:
            raise InvalidParameterError(
                f"points have {points.shape[1]} coordinates, expected {self.d}"
            )
        return (points @ self.hyperplanes >= 0).astype(np.int8).T

    def signature(self, point: np.ndarray) -> int:
        """Pack one point's bits into an integer fingerprint."""
        bits = self.hash_points(point[None, :])[:, 0]
        value = 0
        for bit in bits:
            value = (value << 1) | int(bit)
        return value

    @staticmethod
    def collision_probability(angle: float) -> float:
        """Analytic single-function collision probability."""
        if not 0 <= angle <= np.pi:
            raise InvalidParameterError(
                f"angle must lie in [0, pi], got {angle}"
            )
        return 1.0 - angle / np.pi


class MinHash:
    """Jaccard LSH over integer-element sets via random permutations.

    ``Pr[h(A) = h(B)] = jaccard(A, B)``.  Permutations are simulated with
    a splitmix64-style finaliser seeded per function — affine
    ``(a*x + b) mod p`` hashing is *not* min-wise independent (it maps
    arithmetic progressions to arithmetic progressions, biasing estimates
    for range-structured sets), while a full avalanche mixer behaves like
    a random function for this purpose.
    """

    def __init__(self, num_functions: int, seed: SeedLike = None) -> None:
        if num_functions < 1:
            raise InvalidParameterError("num_functions must be >= 1")
        rng = as_rng(seed)
        self.salts = rng.integers(
            0, np.iinfo(np.uint64).max, size=num_functions, dtype=np.uint64
        )

    @staticmethod
    def _mix64(x: np.ndarray) -> np.ndarray:
        """splitmix64 finaliser: a bijective avalanche mixer on uint64."""
        x = x + np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return x ^ (x >> np.uint64(31))

    def hash_set(self, elements) -> np.ndarray:
        """MinHash signature of one set; shape ``(num_functions,)``."""
        items = np.asarray(sorted(int(x) for x in elements), dtype=np.uint64)
        if items.size == 0:
            raise InvalidParameterError("cannot MinHash an empty set")
        with np.errstate(over="ignore"):
            # (num_functions, |set|) hashed values; min per function.
            hashed = self._mix64(items[None, :] ^ self.salts[:, None])
        return np.min(hashed, axis=1)

    def estimate_jaccard(self, sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Unbiased Jaccard estimate: fraction of matching signature slots."""
        sig_a = np.asarray(sig_a)
        sig_b = np.asarray(sig_b)
        if sig_a.shape != sig_b.shape:
            raise InvalidParameterError(
                f"signature shapes differ: {sig_a.shape} vs {sig_b.shape}"
            )
        return float(np.mean(sig_a == sig_b))
