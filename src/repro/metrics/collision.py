"""Collision probabilities of p-stable LSH functions (Eq. 3-5, Lemma 2).

For a hash function ``h(v) = floor((a . v + b) / r0)`` with ``a`` drawn from
a p-stable distribution, two points at ``lp`` distance ``s`` collide with
probability

.. math::

    p(s, r_0) = \\int_0^{r_0} \\frac{1}{s} f_p\\Big(\\frac{t}{s}\\Big)
                \\Big(1 - \\frac{t}{r_0}\\Big) \\, dt

where ``f_p`` is the density of the *absolute value* of the p-stable
distribution.  Closed forms exist for the Cauchy (Eq. 4) and Gaussian
(Eq. 5) cases; the general case is evaluated numerically.

``p(s, r0)`` is monotonically decreasing in ``s`` for fixed ``r0`` and is
scale invariant (Lemma 2): ``p(s, r0) == p(c*s, c*r0)`` for any ``c > 0``.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np
from scipy import integrate
from scipy.stats import norm as _scipy_norm

from repro.errors import InvalidParameterError
from repro.metrics.lp import validate_p


def _validate_s_r0(s: float, r0: float) -> tuple[float, float]:
    s = float(s)
    r0 = float(r0)
    if s < 0:
        raise InvalidParameterError(f"distance s must be >= 0, got {s}")
    if r0 <= 0:
        raise InvalidParameterError(f"bucket width r0 must be > 0, got {r0}")
    return s, r0


def collision_probability_cauchy(s: float, r0: float) -> float:
    """Collision probability for the 1-stable (Cauchy) family (Eq. 4).

    ``p(s, r0) = 2*arctan(r0/s)/pi - ln(1 + (r0/s)^2) / (pi * (r0/s))``.

    At ``s = 0`` two identical projections always collide, so the limit 1.0
    is returned.
    """
    s, r0 = _validate_s_r0(s, r0)
    if s == 0.0:
        return 1.0
    ratio = r0 / s
    if ratio > 1e8:
        # Asymptotically 1 - O(log(ratio)/ratio); the remainder is below
        # float tolerance and the naive formula would overflow ratio^2.
        return 1.0
    return (
        2.0 * math.atan(ratio) / math.pi
        - math.log1p(ratio * ratio) / (math.pi * ratio)
    )


def collision_probability_gaussian(s: float, r0: float) -> float:
    """Collision probability for the 2-stable (Gaussian) family (Eq. 5).

    ``p(s, r0) = 1 - 2*Phi(-r0/s) - 2/(sqrt(2*pi)*(r0/s)) *
    (1 - exp(-r0^2 / (2 s^2)))`` with ``Phi`` the standard normal CDF.
    """
    s, r0 = _validate_s_r0(s, r0)
    if s == 0.0:
        return 1.0
    ratio = r0 / s
    if ratio > 1e8:
        # The tail terms are far below float tolerance here and the naive
        # formula would overflow ratio^2.
        return 1.0
    return float(
        1.0
        - 2.0 * _scipy_norm.cdf(-ratio)
        - 2.0 / (math.sqrt(2.0 * math.pi) * ratio) * (1.0 - math.exp(-(ratio**2) / 2.0))
    )


@lru_cache(maxsize=64)
def _abs_stable_pdf_grid(p: float, x_max: float, n: int) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Tabulate the density of ``|X|`` for standard p-stable ``X``.

    Uses the inversion integral of the characteristic function
    ``phi(t) = exp(-2^(1-p) |t|^p)`` — the library-wide normalisation that
    coincides with the standard Cauchy at ``p = 1`` and the standard
    Gaussian at ``p = 2`` (see :func:`repro.metrics.stable.sample_p_stable`):

    ``f_X(x) = (1/pi) * Integral_0^inf cos(x t) phi(t) dt``

    and ``f_{|X|}(x) = 2 f_X(x)`` for ``x >= 0``.  Returned as plain tuples
    so the result is hashable/cacheable.
    """
    xs = np.linspace(0.0, x_max, n)
    scale = 2.0 ** (1.0 - p)

    def density(x: float) -> float:
        val, _err = integrate.quad(
            lambda t: math.cos(x * t) * math.exp(-scale * (t**p)),
            0.0,
            np.inf,
            limit=400,
        )
        return 2.0 * val / math.pi

    return tuple(float(x) for x in xs), tuple(max(0.0, density(float(x))) for x in xs)


def collision_probability_numeric(
    s: float, r0: float, p: float, *, grid_points: int = 400
) -> float:
    """Collision probability via numeric evaluation of Eq. 3.

    Valid for any ``p in (0, 2]``.  Exploits Lemma 2 to normalise ``s = 1``
    before integrating, which keeps a single cached density grid useful for
    every ``(s, r0)`` pair with the same ratio.
    """
    s, r0 = _validate_s_r0(s, r0)
    p = validate_p(p, allow_above_two=False)
    if s == 0.0:
        return 1.0
    # Lemma 2: p(s, r0) == p(1, r0/s).
    w = r0 / s
    xs_t, fs_t = _abs_stable_pdf_grid(p, float(max(w * 1.05, 1.0)), grid_points)
    xs = np.asarray(xs_t)
    fs = np.asarray(fs_t)
    mask = xs <= w
    xs_in = xs[mask]
    fs_in = fs[mask]
    integrand = fs_in * (1.0 - xs_in / w)
    return float(np.trapezoid(integrand, xs_in))


def collision_probability(s: float, r0: float, p: float = 1.0) -> float:
    """Collision probability ``p(s, r0)`` under the p-stable family.

    Dispatches to the closed forms for ``p = 1`` and ``p = 2`` and the
    numeric integral otherwise.
    """
    p = validate_p(p, allow_above_two=False)
    if p == 1.0:
        return collision_probability_cauchy(s, r0)
    if p == 2.0:
        return collision_probability_gaussian(s, r0)
    return collision_probability_numeric(s, r0, p)


def collision_probability_vector(
    s_values: np.ndarray, r0: float, p: float = 1.0
) -> np.ndarray:
    """Vectorised :func:`collision_probability` over many distances."""
    s_values = np.asarray(s_values, dtype=np.float64)
    return np.array([collision_probability(float(s), r0, p) for s in s_values.ravel()]).reshape(
        s_values.shape
    )
