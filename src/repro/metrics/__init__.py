"""Distance-metric substrate: ``lp`` geometry, p-stable distributions,
collision probabilities, and uniform ``lp``-ball sampling.

These modules implement Section 2 (Preliminary) and the geometric core of
Section 3 of the LazyLSH paper.
"""

from repro.metrics.collision import (
    collision_probability,
    collision_probability_cauchy,
    collision_probability_gaussian,
)
from repro.metrics.lp import (
    Ball,
    l1_bounds,
    lp_distance,
    lp_distance_matrix,
    lp_norm,
    norm_equivalence_bounds,
    validate_p,
)
from repro.metrics.sampling import sample_lp_ball
from repro.metrics.stable import (
    GeneralizedGamma,
    sample_cauchy,
    sample_gaussian,
    sample_p_stable,
)

__all__ = [
    "Ball",
    "GeneralizedGamma",
    "collision_probability",
    "collision_probability_cauchy",
    "collision_probability_gaussian",
    "l1_bounds",
    "lp_distance",
    "lp_distance_matrix",
    "lp_norm",
    "norm_equivalence_bounds",
    "sample_cauchy",
    "sample_gaussian",
    "sample_lp_ball",
    "sample_p_stable",
    "validate_p",
]
