"""``lp`` distances, balls and the l1 norm-equivalence bounds of Eq. 11.

The paper (Definition 1) works with the quantity

.. math::

    \\ell_p(o, q) = \\Big( \\sum_{i=1}^d |o_i - q_i|^p \\Big)^{1/p}

for any ``p > 0``.  For ``0 < p < 1`` this is the *fractional distance
metric* of Aggarwal et al.; it is not a metric in the strict sense (the
triangle inequality fails) but all the LSH machinery only needs the
distance values themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import PointMatrix, PointVector
from repro.errors import InvalidParameterError


def validate_p(p: float, *, allow_above_two: bool = True) -> float:
    """Validate an ``lp`` exponent and return it as a float.

    Parameters
    ----------
    p:
        The exponent of the ``lp`` distance.  Must be strictly positive.
    allow_above_two:
        Distances are defined for every ``p > 0``, but p-stable hash
        families only exist for ``p in (0, 2]``.  Hash-related call sites
        pass ``False`` to enforce the tighter domain.
    """
    p = float(p)
    if not np.isfinite(p) or p <= 0.0:
        raise InvalidParameterError(f"lp exponent must be finite and > 0, got {p!r}")
    if not allow_above_two and p > 2.0:
        raise InvalidParameterError(
            f"p-stable distributions only exist for p in (0, 2], got p={p}"
        )
    return p


def lp_norm(vectors: PointMatrix, p: float, *, axis: int = -1) -> np.ndarray:
    """Return the ``lp`` norm of ``vectors`` along ``axis``.

    Works for fractional ``p`` as well; ``numpy.linalg.norm`` rejects
    ``0 < p < 1`` which is exactly the regime LazyLSH cares about.
    """
    p = validate_p(p)
    absed = np.abs(np.asarray(vectors, dtype=np.float64))
    if p == 1.0:
        return absed.sum(axis=axis)
    if p == 2.0:
        return np.sqrt(np.square(absed).sum(axis=axis))
    return np.power(np.power(absed, p).sum(axis=axis), 1.0 / p)


def lp_distance(x: PointMatrix, y: PointVector, p: float) -> np.ndarray:
    """``lp`` distance between each row of ``x`` and the point(s) ``y``.

    ``x`` may be a single vector or an ``(n, d)`` matrix; broadcasting
    follows numpy rules, so the usual calls are ``lp_distance(X, q, p)``
    (distances of every database point to a query) and
    ``lp_distance(a, b, p)`` for two single points, which returns a scalar
    array.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    return lp_norm(x - y, p, axis=-1)


def lp_distance_matrix(x: PointMatrix, y: PointMatrix, p: float) -> np.ndarray:
    """Full ``(n, m)`` distance matrix between rows of ``x`` and ``y``.

    Computed in row chunks to bound the peak memory of the broadcasted
    ``(chunk, m, d)`` difference tensor.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.atleast_2d(np.asarray(y, dtype=np.float64))
    p = validate_p(p)
    n, d = x.shape
    m = y.shape[0]
    out = np.empty((n, m), dtype=np.float64)
    # Aim for ~32 MB of temporary per chunk.
    chunk = max(1, int(32e6 / max(1, m * d * 8)))
    for start in range(0, n, chunk):
        stop = min(n, start + chunk)
        diff = x[start:stop, None, :] - y[None, :, :]
        out[start:stop] = lp_norm(diff, p, axis=-1)
    return out


def norm_equivalence_bounds(
    delta: float, d: int, p: float, s: float
) -> tuple[float, float]:
    """Bounds of the ``ls`` distance given ``lp(o, q) = delta``.

    Generalisation of Eq. 11 to an arbitrary base exponent ``s`` (the paper
    only needs ``s = 1`` for its l1 base index, and ``s = 2`` for the
    Appendix C analysis of an l2 base index).  From norm equivalence in
    :math:`R^d`, for ``p < s``:

    .. math::

        \\|x\\|_s \\le \\|x\\|_p \\le d^{1/p - 1/s} \\|x\\|_s

    so ``lp = delta`` implies ``ls in [delta * d^(1/s - 1/p), delta]``; the
    interval flips for ``p > s``.
    """
    p = validate_p(p)
    s = validate_p(s)
    if d < 1:
        raise InvalidParameterError(f"dimensionality must be >= 1, got {d}")
    if delta < 0:
        raise InvalidParameterError(f"radius must be >= 0, got {delta}")
    factor = float(d) ** (1.0 / s - 1.0 / p)
    if p < s:
        return delta * factor, delta
    if p > s:
        return delta, delta * factor
    return delta, delta


def l1_bounds(delta: float, d: int, p: float) -> tuple[float, float]:
    """Bounds of the l1 distance given ``lp(o, q) = delta`` (Eq. 11).

    Returns ``(delta_lower, delta_upper)`` — written :math:`\\delta^\\perp`
    and :math:`\\delta^\\top` in the paper — such that every pair at ``lp``
    distance ``delta`` lies at l1 distance inside the closed interval.

    The bounds follow from norm equivalence in :math:`R^d`:

    * for ``0 < p < 1``:   ``delta * d^(1 - 1/p)  <=  l1  <=  delta``
    * for ``p >= 1``:      ``delta  <=  l1  <=  delta * d^(1 - 1/p)``

    The paper writes the factor as :math:`d \\cdot \\delta / \\sqrt[p]{d}`,
    which equals ``delta * d^(1 - 1/p)``.
    """
    return norm_equivalence_bounds(delta, d, p, 1.0)


@dataclass(frozen=True)
class Ball:
    """The ball ``Bp(center, radius)`` of Definition 2.

    Attributes
    ----------
    center:
        The ball's centre point ``q``.
    radius:
        Ball radius ``r`` (inclusive).
    p:
        The ``lp`` exponent of the enclosing space.
    """

    center: PointVector
    radius: float
    p: float

    def __post_init__(self) -> None:
        validate_p(self.p)
        if self.radius < 0:
            raise InvalidParameterError(f"ball radius must be >= 0, got {self.radius}")

    @property
    def dimensionality(self) -> int:
        """Dimensionality of the ambient space."""
        return int(np.asarray(self.center).shape[-1])

    def contains(self, points: PointMatrix) -> np.ndarray:
        """Boolean mask of which ``points`` lie inside the closed ball."""
        return lp_distance(points, self.center, self.p) <= self.radius

    def l1_bounds(self) -> tuple[float, float]:
        """l1-distance bounds for points on this ball's surface (Eq. 11)."""
        return l1_bounds(self.radius, self.dimensionality, self.p)
