"""p-stable distributions and the generalized gamma density (Definition 7).

LazyLSH's hash family projects points onto random vectors whose entries are
drawn from a p-stable distribution (Definition 4):

* ``p = 1`` — the standard Cauchy distribution (closed form),
* ``p = 2`` — the standard Gaussian distribution (closed form),
* general ``p in (0, 2]`` — no closed-form density, but samples can be
  produced with the Chambers–Mallows–Stuck (CMS) construction.  The paper's
  base index only ever uses the Cauchy family, but the general sampler is
  needed for testing the theory and for the "one index per p" strawman
  baseline discussed in the introduction.

The generalized gamma distribution ``G(alpha, lambda, upsilon)`` drives the
uniform ``lp``-ball sampler of Algorithm 1 (Calafiore et al.).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._typing import SeedLike, as_rng
from repro.errors import InvalidParameterError
from repro.metrics.lp import validate_p


def sample_cauchy(size: int | tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    """Draw samples from the standard Cauchy (1-stable) distribution."""
    rng = as_rng(seed)
    return rng.standard_cauchy(size)


def sample_gaussian(size: int | tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    """Draw samples from the standard Gaussian (2-stable) distribution."""
    rng = as_rng(seed)
    return rng.standard_normal(size)


def sample_p_stable(
    p: float, size: int | tuple[int, ...], seed: SeedLike = None
) -> np.ndarray:
    """Draw samples from a standard symmetric p-stable distribution.

    Uses the closed forms for ``p = 1`` (Cauchy) and ``p = 2`` (Gaussian),
    and the Chambers–Mallows–Stuck construction otherwise:

    .. math::

        X = \\frac{\\sin(p U)}{(\\cos U)^{1/p}}
            \\Big( \\frac{\\cos(U - p U)}{W} \\Big)^{(1-p)/p}

    with ``U ~ Uniform(-pi/2, pi/2)`` and ``W ~ Exp(1)``.

    Normalisation: the LSH literature's two closed-form cases use the
    *standard* Cauchy (characteristic function ``exp(-|t|)``) and the
    *standard* Gaussian (``exp(-t^2 / 2)``), which correspond to different
    scale parameters of the raw CMS family (``exp(-|t|^p)``).  We scale
    the CMS output by ``2^(1/p - 1)``, i.e. adopt the characteristic
    function ``exp(-2^(1-p) |t|^p)``, which interpolates the family and
    coincides with both closed forms at the endpoints — so the general
    sampler, the closed-form samplers and the collision-probability
    formulas all share one convention.
    """
    p = validate_p(p, allow_above_two=False)
    rng = as_rng(seed)
    if p == 1.0:
        return rng.standard_cauchy(size)
    if p == 2.0:
        return rng.standard_normal(size)
    u = rng.uniform(-math.pi / 2.0, math.pi / 2.0, size)
    w = rng.standard_exponential(size)
    part1 = np.sin(p * u) / np.power(np.cos(u), 1.0 / p)
    part2 = np.power(np.cos(u - p * u) / w, (1.0 - p) / p)
    return 2.0 ** (1.0 / p - 1.0) * part1 * part2


@dataclass(frozen=True)
class GeneralizedGamma:
    """The generalized gamma distribution ``G(alpha, lam, upsilon)``.

    Density (Definition 7 / Stacy 1962):

    .. math::

        f(x) = \\frac{\\upsilon / \\alpha^{\\lambda}}{\\Gamma(\\lambda/\\upsilon)}
               x^{\\lambda - 1} e^{-(x/\\alpha)^{\\upsilon}}, \\quad x \\ge 0.

    Sampling uses the standard reduction: if
    ``z ~ Gamma(shape=lambda/upsilon, scale=1)`` then
    ``alpha * z**(1/upsilon) ~ G(alpha, lambda, upsilon)``.
    """

    alpha: float
    lam: float
    upsilon: float

    def __post_init__(self) -> None:
        for name, value in (
            ("alpha", self.alpha),
            ("lam", self.lam),
            ("upsilon", self.upsilon),
        ):
            if not np.isfinite(value) or value <= 0:
                raise InvalidParameterError(
                    f"GeneralizedGamma parameter {name} must be > 0, got {value!r}"
                )

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the density at the (non-negative) points ``x``."""
        x = np.asarray(x, dtype=np.float64)
        coeff = (self.upsilon / self.alpha**self.lam) / math.gamma(
            self.lam / self.upsilon
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            vals = coeff * np.power(x, self.lam - 1.0) * np.exp(
                -np.power(x / self.alpha, self.upsilon)
            )
        return np.where(x < 0, 0.0, vals)

    def sample(self, size: int | tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
        """Draw samples via the gamma-power reduction."""
        rng = as_rng(seed)
        z = rng.gamma(shape=self.lam / self.upsilon, scale=1.0, size=size)
        return self.alpha * np.power(z, 1.0 / self.upsilon)

    def mean(self) -> float:
        """Analytic mean: ``alpha * Gamma((lam+1)/ups) / Gamma(lam/ups)``."""
        return (
            self.alpha
            * math.gamma((self.lam + 1.0) / self.upsilon)
            / math.gamma(self.lam / self.upsilon)
        )
