"""SRS (Sun et al., PVLDB 2014): tiny-index ANN via 2-stable projections.

SRS projects the dataset into a very low-dimensional space (``m = 6`` in
the paper's and our experiments) with Gaussian (2-stable) projections.  For
a point at l2 distance ``s`` from the query, the squared projected distance
is distributed as ``s^2 * chi^2_m``, whose sharp concentration lets SRS:

1. examine points in increasing order of *projected* distance (the real
   system walks an R-tree incrementally; we sort exactly, which visits the
   same sequence — see DESIGN.md on this substitution), and
2. stop early once the incoming projected distance ``pi`` makes it
   sufficiently unlikely (chi-squared tail) that any unseen point lies
   within ``d_k / c`` of the query, where ``d_k`` is the current k-th best
   true distance.

Fractional-metric queries follow the paper's comparator recipe (Sec. 5.2):
candidates are collected by the l2 machinery and the top ``k`` by true
``lp`` distance are returned.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy.stats import chi2

from repro._typing import IdArray, PointMatrix, PointVector
from repro.errors import IndexNotBuiltError, InvalidParameterError
from repro.metrics.lp import lp_distance, validate_p
from repro.storage.io_stats import IOStats
from repro.storage.pages import PageLayout


@dataclass(frozen=True)
class SRSConfig:
    """Build parameters of an :class:`SRS` index.

    ``num_projections`` is the projected dimensionality (6 in both the SRS
    paper's and the LazyLSH paper's experiments).  ``max_fraction`` bounds
    the candidate budget as a fraction of ``n`` (the SRS paper's ``T'``),
    and ``early_stop_confidence`` is the chi-squared tail mass used by the
    incremental early-termination test.
    """

    num_projections: int = 6
    c: float = 3.0
    max_fraction: float = 0.1
    early_stop_confidence: float = 0.99
    seed: int | None = 7
    page_size: int = 4096


@dataclass
class SRSResult:
    """Outcome of an SRS kNN query."""

    ids: IdArray
    distances: np.ndarray
    p: float
    k: int
    io: IOStats = field(default_factory=IOStats)
    candidates: int = 0
    stopped_early: bool = False


class SRS:
    """The SRS baseline: exact incremental NN in a 6-d projected space."""

    def __init__(self, config: SRSConfig | None = None) -> None:
        cfg = config or SRSConfig()
        if cfg.num_projections < 1:
            raise InvalidParameterError(
                f"num_projections must be >= 1, got {cfg.num_projections}"
            )
        if not cfg.c > 1.0:
            raise InvalidParameterError(
                f"approximation ratio c must be > 1, got {cfg.c}"
            )
        if not 0.0 < cfg.max_fraction <= 1.0:
            raise InvalidParameterError(
                f"max_fraction must lie in (0, 1], got {cfg.max_fraction}"
            )
        if not 0.0 < cfg.early_stop_confidence < 1.0:
            raise InvalidParameterError(
                "early_stop_confidence must lie in (0, 1), got "
                f"{cfg.early_stop_confidence}"
            )
        self.config = cfg
        self.io_stats = IOStats()
        self._data: PointMatrix | None = None
        self._projected: np.ndarray | None = None
        self._projection: np.ndarray | None = None
        self._layout = PageLayout(page_size=cfg.page_size, entry_size=8)

    def build(self, data: PointMatrix) -> "SRS":
        """Project the dataset into the ``m``-dimensional index space."""
        data = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
        if data.ndim != 2 or data.shape[0] < 1:
            raise InvalidParameterError(
                f"data must be a non-empty 2-D matrix, got shape {data.shape}"
            )
        rng = np.random.default_rng(self.config.seed)
        d = data.shape[1]
        self._projection = rng.standard_normal((d, self.config.num_projections))
        self._projected = data @ self._projection
        self._data = data
        return self

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._data is not None

    def _require_built(self) -> None:
        if not self.is_built:
            raise IndexNotBuiltError("call build(data) before querying")

    @property
    def num_points(self) -> int:
        """Cardinality of the dataset."""
        self._require_built()
        assert self._data is not None
        return self._data.shape[0]

    def index_size_mb(self) -> float:
        """Simulated index size (the projected vectors), in MB.

        One entry per point: ``m`` float coordinates plus the id — an
        order of magnitude smaller than the hash-bank indexes, which is
        SRS's selling point.
        """
        self._require_built()
        entry_bytes = 8 * (self.config.num_projections + 1)
        n_bytes = self.num_points * entry_bytes
        return self._layout.pages_for_bytes(n_bytes) * self.config.page_size / (
            1024.0 * 1024.0
        )

    def knn(self, query: PointVector, k: int, p: float = 2.0) -> SRSResult:
        """Approximate kNN of ``query``; candidates ranked by true ``lp``."""
        self._require_built()
        assert (
            self._data is not None
            and self._projected is not None
            and self._projection is not None
        )
        p = validate_p(p)
        n = self.num_points
        if not 1 <= k <= n:
            raise InvalidParameterError(
                f"k must lie in [1, {n}] for a dataset of {n} points, got {k}"
            )
        query = np.asarray(query, dtype=np.float64)
        stats = IOStats()
        m = self.config.num_projections
        projected_query = query @ self._projection
        proj_dists = np.sqrt(
            np.square(self._projected - projected_query).sum(axis=1)
        )
        order = np.argsort(proj_dists, kind="stable")
        budget = max(k, int(math.ceil(self.config.max_fraction * n)))
        tail_quantile = chi2.ppf(self.config.early_stop_confidence, df=m)
        cand_ids: list[int] = []
        # True distances under both the guarantee metric (l2) and the
        # requested metric; the early-stop test is an l2 statement.
        cand_l2: list[float] = []
        stopped_early = False
        for rank in range(min(budget, n)):
            idx = int(order[rank])
            stats.add_random(1)
            cand_ids.append(idx)
            cand_l2.append(float(lp_distance(self._data[idx], query, 2.0)))
            if len(cand_ids) >= k:
                d_k = np.partition(np.asarray(cand_l2), k - 1)[k - 1]
                if rank + 1 < n:
                    next_proj = proj_dists[order[rank + 1]]
                    # Any unseen point at l2 distance <= d_k / c would have
                    # projected distance^2 ~ (d_k/c)^2 * chi^2_m; once the
                    # frontier exceeds the tail quantile of that law, such
                    # a point is unlikely to exist and we can stop.
                    if d_k > 0 and next_proj**2 > (d_k / self.config.c) ** 2 * tail_quantile:
                        stopped_early = True
                        break
                    if d_k == 0.0:
                        stopped_early = True
                        break
        cand_arr = np.asarray(cand_ids, dtype=np.int64)
        if p == 2.0:
            dists = np.asarray(cand_l2)
        else:
            dists = lp_distance(self._data[cand_arr], query, p)
        top = np.argsort(dists, kind="stable")[:k]
        self.io_stats.add_random(stats.random)
        self.io_stats.add_sequential(stats.sequential)
        return SRSResult(
            ids=cand_arr[top],
            distances=np.asarray(dists)[top],
            p=p,
            k=k,
            io=stats,
            candidates=len(cand_ids),
            stopped_early=stopped_early,
        )
