"""Multi-probe LSH (Lv et al., VLDB 2007) — the related-work extension.

Where E2LSH only inspects the query's own compound bucket in each table,
multi-probe LSH also probes buckets whose compound keys differ from the
query's by small perturbations, chosen in increasing order of "success
score" — the squared distance from the query's projection to the perturbed
bucket's boundary.  This lets far fewer tables reach the same recall, at
the cost of extra bucket probes.

The probing sequence is generated with the original paper's heap algorithm
over perturbation sets (subsets of the ``2m`` sorted boundary distances,
expanded via *shift* and *expand* operations), restricted to valid sets
that never perturb the same coordinate in both directions.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro._typing import IdArray, PointMatrix, PointVector
from repro.errors import IndexNotBuiltError, InvalidParameterError
from repro.baselines._autoscale import estimate_nn_distance
from repro.metrics.lp import lp_distance, validate_p
from repro.storage.io_stats import IOStats
from repro.storage.pages import PageLayout


@dataclass(frozen=True)
class MultiProbeConfig:
    """Build parameters of a :class:`MultiProbeLSH` index.

    ``width`` is the bucket width of the base hash functions.  ``None``
    (the default) auto-scales it at build time to ``width_scale`` times the
    median nearest-neighbour distance of a data sample — raw feature data
    spans wildly different magnitudes, and a fixed width would leave every
    point in its own compound bucket (or all points in one).
    """

    m: int = 8
    num_tables: int = 8
    width: float | None = None
    width_scale: float = 4.0
    base_p: float = 2.0
    num_probes: int = 16
    seed: int | None = 7
    page_size: int = 4096
    entry_size: int = 8


@dataclass
class MultiProbeResult:
    """Outcome of a multi-probe kNN query."""

    ids: IdArray
    distances: np.ndarray
    p: float
    k: int
    io: IOStats = field(default_factory=IOStats)
    candidates: int = 0
    probes: int = 0


def probing_sequence(scores: np.ndarray, num_probes: int) -> list[list[tuple[int, int]]]:
    """Generate perturbation sets in increasing total-score order.

    Parameters
    ----------
    scores:
        Array of shape ``(2m,)``: for each coordinate ``j`` of the compound
        key, ``scores[2j]`` is the squared distance to the lower bucket
        boundary (delta ``-1``) and ``scores[2j + 1]`` to the upper
        boundary (delta ``+1``).
    num_probes:
        How many perturbation sets to emit (excluding the empty set, which
        is the query's own bucket and is always probed first by callers).

    Returns
    -------
    list of perturbation sets; each set is a list of ``(coordinate,
    delta)`` pairs with ``delta in {-1, +1}``.
    """
    two_m = scores.shape[0]
    if two_m == 0 or num_probes <= 0:
        return []
    order = np.argsort(scores, kind="stable")
    sorted_scores = scores[order]

    def partner_conflict(indices: tuple[int, ...]) -> bool:
        # Two entries conflict when they perturb the same coordinate.
        coords = [order[i] // 2 for i in indices]
        return len(coords) != len(set(coords))

    # Heap of (total score, indices-into-sorted_scores tuple).
    heap: list[tuple[float, tuple[int, ...]]] = [(float(sorted_scores[0]), (0,))]
    emitted: list[list[tuple[int, int]]] = []
    seen: set[tuple[int, ...]] = set()
    while heap and len(emitted) < num_probes:
        total, indices = heapq.heappop(heap)
        last = indices[-1]
        # Shift: move the last element one step right.
        if last + 1 < two_m:
            shifted = indices[:-1] + (last + 1,)
            if shifted not in seen:
                seen.add(shifted)
                heapq.heappush(
                    heap,
                    (
                        total - float(sorted_scores[last]) + float(sorted_scores[last + 1]),
                        shifted,
                    ),
                )
        # Expand: append the next element.
        if last + 1 < two_m:
            expanded = indices + (last + 1,)
            if expanded not in seen:
                seen.add(expanded)
                heapq.heappush(
                    heap, (total + float(sorted_scores[last + 1]), expanded)
                )
        if partner_conflict(indices):
            continue
        emitted.append(
            [
                (int(order[i] // 2), -1 if order[i] % 2 == 0 else 1)
                for i in indices
            ]
        )
    return emitted


class MultiProbeLSH:
    """Multi-probe LSH over a single set of compound hash tables."""

    def __init__(self, config: MultiProbeConfig | None = None) -> None:
        cfg = config or MultiProbeConfig()
        if cfg.m < 1:
            raise InvalidParameterError(f"m must be >= 1, got {cfg.m}")
        if cfg.num_tables < 1:
            raise InvalidParameterError(
                f"num_tables must be >= 1, got {cfg.num_tables}"
            )
        if cfg.num_probes < 1:
            raise InvalidParameterError(
                f"num_probes must be >= 1, got {cfg.num_probes}"
            )
        if cfg.width is not None and cfg.width <= 0:
            raise InvalidParameterError(f"width must be > 0, got {cfg.width}")
        if cfg.width_scale <= 0:
            raise InvalidParameterError(
                f"width_scale must be > 0, got {cfg.width_scale}"
            )
        validate_p(cfg.base_p, allow_above_two=False)
        self.config = cfg
        self.io_stats = IOStats()
        self._width: float = 0.0
        self._data: PointMatrix | None = None
        self._projections: np.ndarray | None = None
        self._offsets: np.ndarray | None = None
        self._tables: list[dict[tuple[int, ...], np.ndarray]] = []
        self._layout = PageLayout(page_size=cfg.page_size, entry_size=cfg.entry_size)

    def build(self, data: PointMatrix) -> "MultiProbeLSH":
        """Materialise the ``num_tables`` compound hash tables."""
        data = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
        if data.ndim != 2 or data.shape[0] < 1:
            raise InvalidParameterError(
                f"data must be a non-empty 2-D matrix, got shape {data.shape}"
            )
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        n, d = data.shape
        if cfg.width is not None:
            self._width = cfg.width
        else:
            self._width = cfg.width_scale * estimate_nn_distance(
                data, cfg.base_p, seed=cfg.seed
            )
        if cfg.base_p == 2.0:
            self._projections = rng.standard_normal((cfg.num_tables, d, cfg.m))
        else:
            self._projections = rng.standard_cauchy((cfg.num_tables, d, cfg.m))
        self._offsets = rng.uniform(0.0, self._width, (cfg.num_tables, cfg.m))
        self._tables = []
        for t in range(cfg.num_tables):
            keys = np.floor(
                (data @ self._projections[t] + self._offsets[t]) / self._width
            ).astype(np.int64)
            table: dict[tuple[int, ...], list[int]] = {}
            for idx in range(n):
                table.setdefault(tuple(keys[idx]), []).append(idx)
            self._tables.append(
                {key: np.asarray(ids, dtype=np.int64) for key, ids in table.items()}
            )
        self._data = data
        return self

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._data is not None

    def _require_built(self) -> None:
        if not self.is_built:
            raise IndexNotBuiltError("call build(data) before querying")

    def index_size_mb(self) -> float:
        """Simulated index size of the compound tables, in MB."""
        self._require_built()
        entries = sum(
            sum(ids.size for ids in table.values()) for table in self._tables
        )
        return self._layout.size_bytes(entries) / (1024.0 * 1024.0)

    def knn(self, query: PointVector, k: int, p: float | None = None) -> MultiProbeResult:
        """Approximate kNN probing ``num_probes`` buckets per table."""
        self._require_built()
        assert (
            self._data is not None
            and self._projections is not None
            and self._offsets is not None
        )
        cfg = self.config
        p = validate_p(p if p is not None else cfg.base_p)
        n = self._data.shape[0]
        if not 1 <= k <= n:
            raise InvalidParameterError(
                f"k must lie in [1, {n}] for a dataset of {n} points, got {k}"
            )
        query = np.asarray(query, dtype=np.float64)
        stats = IOStats()
        seen = np.zeros(n, dtype=bool)
        cand_ids: list[int] = []
        probes = 0
        for t in range(cfg.num_tables):
            raw = (query @ self._projections[t] + self._offsets[t]) / self._width
            base_key = np.floor(raw).astype(np.int64)
            frac = raw - base_key
            # scores[2j] = squared distance to lower boundary (delta -1),
            # scores[2j+1] = squared distance to upper boundary (delta +1).
            scores = np.empty(2 * cfg.m)
            scores[0::2] = np.square(frac)
            scores[1::2] = np.square(1.0 - frac)
            keys = [tuple(int(x) for x in base_key)]
            for perturbation in probing_sequence(scores, cfg.num_probes - 1):
                key = base_key.copy()
                for coord, delta in perturbation:
                    key[coord] += delta
                keys.append(tuple(int(x) for x in key))
            for key in keys:
                probes += 1
                bucket = self._tables[t].get(key)
                if bucket is None:
                    continue
                stats.add_sequential(self._layout.pages_for_range(0, int(bucket.size)))
                fresh = bucket[~seen[bucket]]
                if fresh.size == 0:
                    continue
                seen[fresh] = True
                stats.add_random(int(fresh.size))
                cand_ids.extend(int(x) for x in fresh)
        cand_arr = np.asarray(cand_ids, dtype=np.int64)
        if cand_arr.size == 0:
            dists = np.empty(0)
            top = np.empty(0, dtype=np.int64)
        else:
            dists = lp_distance(self._data[cand_arr], query, p)
            top = np.argsort(dists, kind="stable")[:k]
        self.io_stats.add_sequential(stats.sequential)
        self.io_stats.add_random(stats.random)
        return MultiProbeResult(
            ids=cand_arr[top] if cand_arr.size else cand_arr,
            distances=np.asarray(dists)[top] if cand_arr.size else dists,
            p=p,
            k=k,
            io=stats,
            candidates=len(cand_ids),
            probes=probes,
        )
