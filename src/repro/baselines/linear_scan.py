"""Exact kNN by linear scan, with the paper's simulated-I/O accounting.

The linear-scan baseline of Appendix B.2 reads the entire dataset
sequentially (one sequential I/O per 4 KB page of raw vectors) and computes
every distance.  It is exact, so it also doubles as the ground-truth oracle
for the overall-ratio metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._typing import IdArray, PointMatrix, PointVector
from repro.errors import InvalidParameterError
from repro.metrics.lp import lp_distance, validate_p
from repro.storage.io_stats import IOStats
from repro.storage.pages import PageLayout

#: Bytes per stored coordinate in the simulated raw file (float32, as the
#: datasets are small-integer valued).
_VALUE_SIZE = 4


@dataclass
class ScanResult:
    """Exact kNN result of a linear scan."""

    ids: IdArray
    distances: np.ndarray
    p: float
    k: int
    io: IOStats = field(default_factory=IOStats)


class LinearScan:
    """Exact kNN over a raw vector file.

    Parameters
    ----------
    data:
        The ``(n, d)`` dataset.
    page_size:
        Simulated page size for the sequential-scan cost model.
    """

    def __init__(self, data: PointMatrix, *, page_size: int = 4096) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] < 1:
            raise InvalidParameterError(
                f"data must be a non-empty 2-D matrix, got shape {data.shape}"
            )
        self._data = data
        self._layout = PageLayout(page_size=page_size, entry_size=_VALUE_SIZE)
        self.io_stats = IOStats()

    @property
    def num_points(self) -> int:
        """Cardinality of the dataset."""
        return self._data.shape[0]

    @property
    def dimensionality(self) -> int:
        """Dimensionality of the dataset."""
        return self._data.shape[1]

    def scan_cost_pages(self) -> int:
        """Sequential pages one full scan of the raw file costs."""
        n, d = self._data.shape
        return self._layout.pages_for_bytes(n * d * _VALUE_SIZE)

    def knn(self, query: PointVector, k: int, p: float = 1.0) -> ScanResult:
        """Exact ``k`` nearest neighbours of ``query`` under ``lp``."""
        p = validate_p(p)
        n = self.num_points
        if not 1 <= k <= n:
            raise InvalidParameterError(
                f"k must lie in [1, {n}] for a dataset of {n} points, got {k}"
            )
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.dimensionality,):
            raise InvalidParameterError(
                f"query must have shape ({self.dimensionality},), got {query.shape}"
            )
        stats = IOStats()
        stats.add_sequential(self.scan_cost_pages())
        dists = lp_distance(self._data, query, p)
        if k < n:
            part = np.argpartition(dists, k - 1)[:k]
        else:
            part = np.arange(n)
        order = part[np.argsort(dists[part], kind="stable")]
        self.io_stats.add_sequential(stats.sequential)
        return ScanResult(
            ids=order.astype(np.int64),
            distances=dists[order],
            p=p,
            k=k,
            io=stats,
        )

    def knn_batch(
        self, queries: PointMatrix, k: int, p: float = 1.0
    ) -> list[ScanResult]:
        """Exact kNN for each row of ``queries``."""
        return [self.knn(q, k, p=p) for q in np.atleast_2d(queries)]
