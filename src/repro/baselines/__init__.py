"""Baselines the paper compares against (Section 5), built from scratch:

* :mod:`repro.baselines.linear_scan` — exact kNN by scanning everything,
* :mod:`repro.baselines.c2lsh` — C2LSH (Gan et al., SIGMOD 2012) built in
  the l1 space, with the paper's post-hoc ``lp`` re-ranking comparator
  setup,
* :mod:`repro.baselines.e2lsh` — classic E2LSH (Datar et al., SCG 2004)
  with compound hash tables per radius,
* :mod:`repro.baselines.srs` — SRS (Sun et al., PVLDB 2014) with 2-stable
  projections and chi-squared early termination,
* :mod:`repro.baselines.multiprobe` — multi-probe LSH (Lv et al., VLDB
  2007) as a related-work extension,
* :mod:`repro.baselines.lsb` — the LSB-forest (Tao et al., TODS 2010),
  the first no-per-radius LSH structure (Sec. 6.2).
"""

from repro.baselines.c2lsh import C2LSH
from repro.baselines.e2lsh import E2LSH
from repro.baselines.linear_scan import LinearScan
from repro.baselines.lsb import LSBForest
from repro.baselines.multiprobe import MultiProbeLSH
from repro.baselines.srs import SRS

__all__ = ["C2LSH", "E2LSH", "LSBForest", "LinearScan", "MultiProbeLSH", "SRS"]
