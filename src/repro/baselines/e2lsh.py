"""E2LSH (Datar et al., SCG 2004): compound hash tables per search radius.

The first p-stable LSH method.  For one radius ``R`` it concatenates ``m``
base hash functions (bucket width ``r0 * R``) into a compound key ``g(v)``
and repeats with ``L`` independent tables; near neighbours collide on at
least one full compound key with constant probability.  A kNN query issues
range queries at geometrically growing radii — which requires one set of
``L`` tables *per radius*, the storage blow-up that motivated C2LSH's
virtual rehashing and, transitively, LazyLSH.

Tables for a radius are built lazily on first use so that the storage cost
of the radius series is visible (``index_size_mb`` grows as queries reach
farther radii).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro._typing import IdArray, PointMatrix, PointVector
from repro.baselines._autoscale import estimate_nn_distance
from repro.errors import IndexNotBuiltError, InvalidParameterError
from repro.metrics.collision import collision_probability
from repro.metrics.lp import lp_distance, validate_p
from repro.storage.io_stats import IOStats
from repro.storage.pages import PageLayout

_MAX_LEVELS = 48


@dataclass(frozen=True)
class E2LSHConfig:
    """Build parameters of an :class:`E2LSH` index.

    ``m`` (hash functions per table) and ``num_tables`` (``L``) default to
    the classic theory-driven choices ``m = ceil(ln n / ln(1/p2))`` and
    ``L = ceil(n^rho)`` with ``rho = ln(1/p1)/ln(1/p2)``, capped at
    ``max_tables``.
    """

    c: float = 2.0
    r0: float = 4.0
    base_p: float = 2.0
    m: int | None = None
    num_tables: int | None = None
    max_tables: int = 64
    probe_limit_factor: int = 3
    initial_radius: float | None = None
    seed: int | None = 7
    page_size: int = 4096
    entry_size: int = 8


@dataclass
class E2LSHResult:
    """Outcome of an E2LSH kNN query."""

    ids: IdArray
    distances: np.ndarray
    p: float
    k: int
    io: IOStats = field(default_factory=IOStats)
    candidates: int = 0
    levels: int = 0


class _Level:
    """The ``L`` compound hash tables materialised for one radius."""

    def __init__(
        self,
        data: PointMatrix,
        radius: float,
        cfg: E2LSHConfig,
        m: int,
        num_tables: int,
        rng: np.random.Generator,
    ) -> None:
        n, d = data.shape
        self.radius = radius
        width = cfg.r0 * radius
        if cfg.base_p == 2.0:
            projections = rng.standard_normal((num_tables, d, m))
        else:
            projections = rng.standard_cauchy((num_tables, d, m))
        offsets = rng.uniform(0.0, width, (num_tables, m))
        self.tables: list[dict[tuple[int, ...], np.ndarray]] = []
        self._query_proj = projections
        self._query_off = offsets
        self._width = width
        for t in range(num_tables):
            keys = np.floor((data @ projections[t] + offsets[t]) / width).astype(
                np.int64
            )
            table: dict[tuple[int, ...], list[int]] = {}
            for idx in range(n):
                table.setdefault(tuple(keys[idx]), []).append(idx)
            self.tables.append(
                {key: np.asarray(ids, dtype=np.int64) for key, ids in table.items()}
            )

    def query_keys(self, query: PointVector) -> list[tuple[int, ...]]:
        """Compound key of ``query`` in each of the ``L`` tables."""
        keys = []
        for t in range(len(self.tables)):
            raw = (query @ self._query_proj[t] + self._query_off[t]) / self._width
            keys.append(tuple(int(x) for x in np.floor(raw)))
        return keys

    def num_entries(self) -> int:
        """Total bucket entries across the level's tables."""
        return sum(sum(ids.size for ids in table.values()) for table in self.tables)


class E2LSH:
    """The E2LSH baseline: one set of compound tables per radius."""

    def __init__(self, config: E2LSHConfig | None = None) -> None:
        self.config = config or E2LSHConfig()
        if not self.config.c > 1.0:
            raise InvalidParameterError(
                f"approximation ratio c must be > 1, got {self.config.c}"
            )
        validate_p(self.config.base_p, allow_above_two=False)
        self.io_stats = IOStats()
        self._data: PointMatrix | None = None
        self._levels: dict[float, _Level] = {}
        self._rng: np.random.Generator | None = None
        self._initial_radius: float = 1.0
        self._m: int = 0
        self._num_tables: int = 0
        self._layout = PageLayout(
            page_size=self.config.page_size, entry_size=self.config.entry_size
        )

    def build(self, data: PointMatrix) -> "E2LSH":
        """Record the dataset and derive ``(m, L)``; tables build lazily."""
        data = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
        if data.ndim != 2 or data.shape[0] < 1:
            raise InvalidParameterError(
                f"data must be a non-empty 2-D matrix, got shape {data.shape}"
            )
        n = data.shape[0]
        cfg = self.config
        p1 = collision_probability(1.0, cfg.r0, cfg.base_p)
        p2 = collision_probability(cfg.c, cfg.r0, cfg.base_p)
        rho = math.log(1.0 / p1) / math.log(1.0 / p2)
        self._m = cfg.m if cfg.m is not None else max(
            1, math.ceil(math.log(n) / math.log(1.0 / p2))
        )
        derived_tables = max(1, math.ceil(n**rho))
        self._num_tables = (
            cfg.num_tables if cfg.num_tables is not None else min(derived_tables, cfg.max_tables)
        )
        self._rng = np.random.default_rng(cfg.seed)
        if cfg.initial_radius is not None:
            self._initial_radius = cfg.initial_radius
        else:
            # Start the radius series just below the typical NN distance so
            # the first level or two already produce collisions, instead of
            # building many useless levels of near-empty tables.
            self._initial_radius = max(
                estimate_nn_distance(data, cfg.base_p, seed=cfg.seed) / cfg.c,
                1e-12,
            )
        self._data = data
        self._levels = {}
        return self

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._data is not None

    def _require_built(self) -> None:
        if not self.is_built:
            raise IndexNotBuiltError("call build(data) before querying")

    @property
    def m(self) -> int:
        """Hash functions per compound key."""
        self._require_built()
        return self._m

    @property
    def num_tables(self) -> int:
        """Number of independent tables (``L``)."""
        self._require_built()
        return self._num_tables

    @property
    def num_levels(self) -> int:
        """Radius levels materialised so far."""
        return len(self._levels)

    def _level(self, radius: float) -> _Level:
        assert self._data is not None and self._rng is not None
        level = self._levels.get(radius)
        if level is None:
            level = _Level(
                self._data,
                radius,
                self.config,
                self._m,
                self._num_tables,
                self._rng,
            )
            self._levels[radius] = level
        return level

    def index_size_mb(self) -> float:
        """Simulated size of every materialised level, in MB.

        Grows with the number of radius levels — the storage weakness the
        paper contrasts against single-index methods.
        """
        self._require_built()
        total_bytes = sum(
            self._layout.size_bytes(level.num_entries()) for level in self._levels.values()
        )
        return total_bytes / (1024.0 * 1024.0)

    def knn(self, query: PointVector, k: int, p: float | None = None) -> E2LSHResult:
        """Approximate kNN via range queries at growing radii.

        ``p`` defaults to the base metric; passing a different exponent
        re-ranks retrieved candidates by their ``lp`` distance, matching
        how the paper adapts single-space baselines to fractional metrics.
        """
        self._require_built()
        assert self._data is not None
        p = validate_p(p if p is not None else self.config.base_p)
        n = self._data.shape[0]
        if not 1 <= k <= n:
            raise InvalidParameterError(
                f"k must lie in [1, {n}] for a dataset of {n} points, got {k}"
            )
        query = np.asarray(query, dtype=np.float64)
        stats = IOStats()
        seen = np.zeros(n, dtype=bool)
        cand_ids: list[int] = []
        cand_dists: list[float] = []
        probe_limit = self.config.probe_limit_factor * self._num_tables
        radius = self._initial_radius
        levels_used = 0
        for _ in range(_MAX_LEVELS):
            levels_used += 1
            level = self._level(radius)
            keys = level.query_keys(query)
            probed = 0
            for t, key in enumerate(keys):
                bucket = level.tables[t].get(key)
                if bucket is None:
                    continue
                stats.add_sequential(
                    self._layout.pages_for_range(0, int(bucket.size))
                )
                fresh = bucket[~seen[bucket]]
                if fresh.size == 0:
                    continue
                seen[fresh] = True
                stats.add_random(int(fresh.size))
                dists = lp_distance(self._data[fresh], query, p)
                cand_ids.extend(int(x) for x in fresh)
                cand_dists.extend(float(x) for x in dists)
                probed += int(fresh.size)
                if probed >= probe_limit:
                    break
            if cand_ids:
                dist_arr = np.asarray(cand_dists)
                within = np.count_nonzero(dist_arr <= self.config.c * radius)
                if within >= k:
                    break
            if np.all(seen):
                break
            radius *= self.config.c
        order = np.argsort(np.asarray(cand_dists))[:k]
        ids = np.asarray(cand_ids, dtype=np.int64)[order]
        dists = np.asarray(cand_dists, dtype=np.float64)[order]
        self.io_stats.add_sequential(stats.sequential)
        self.io_stats.add_random(stats.random)
        return E2LSHResult(
            ids=ids,
            distances=dists,
            p=p,
            k=k,
            io=stats,
            candidates=len(cand_ids),
            levels=levels_used,
        )
