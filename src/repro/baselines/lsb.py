"""LSB-forest (Tao et al., TODS 2010) — Z-order compound hashing.

The LSB-tree was the first LSH structure that avoids building hash tables
at every search radius: each point's ``m`` compound hash values are
interleaved into one Z-order value and the points are stored sorted by it
(a B-tree in the original; a sorted run with page accounting here).
Points whose Z-order values share a long common prefix agree on their
compound hash at a coarse level — which corresponds exactly to colliding
at some radius ``2^level`` — so a kNN query simply walks outward from the
query's Z-order position, visiting entries in decreasing
longest-common-prefix (LLCP) order.  An LSB-*forest* repeats with ``L``
independent trees and merges their walks.

Termination follows the paper's two events, adapted to this simulator:

* **E1**: the current best ``k``-th distance is within ``c`` times the
  bucket side length implied by the current LLCP level — closer entries
  could not be hiding at coarser levels;
* **E2**: a visit budget of ``visit_factor * L * k`` entries is spent
  (the original uses ``4 * L * B``-style budgets tied to page size).

Fractional-metric queries re-rank retrieved candidates by true ``lp``
distance, the same comparator recipe the LazyLSH paper applies to
single-space baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._typing import IdArray, PointMatrix, PointVector
from repro.errors import IndexNotBuiltError, InvalidParameterError
from repro.metrics.lp import lp_distance, validate_p
from repro.storage.io_stats import IOStats
from repro.storage.pages import PageLayout


@dataclass(frozen=True)
class LSBConfig:
    """Build parameters of an :class:`LSBForest`.

    ``m * bits_per_dim`` must fit in 64 bits (the Z-order values are
    packed into ``uint64``).
    """

    m: int = 4
    num_trees: int = 8
    bits_per_dim: int = 16
    c: float = 2.0
    base_p: float = 2.0
    width: float | None = None
    visit_factor: int = 10
    seed: int | None = 7
    page_size: int = 4096
    entry_size: int = 16


@dataclass
class LSBResult:
    """Outcome of an LSB-forest kNN query."""

    ids: IdArray
    distances: np.ndarray
    p: float
    k: int
    io: IOStats = field(default_factory=IOStats)
    candidates: int = 0
    terminated_by: str = "budget"


def interleave_bits(values: np.ndarray, bits_per_dim: int) -> np.ndarray:
    """Interleave the rows of ``values`` (shape ``(n, m)``) into Z-order.

    Bit ``b`` of dimension ``j`` lands at position ``b * m + j`` of the
    output, so the *most significant* output bits hold every dimension's
    most significant input bits — the property LLCP search relies on.
    """
    values = np.asarray(values, dtype=np.uint64)
    n, m = values.shape
    if m * bits_per_dim > 64:
        raise InvalidParameterError(
            f"m * bits_per_dim must be <= 64, got {m} * {bits_per_dim}"
        )
    out = np.zeros(n, dtype=np.uint64)
    for bit in range(bits_per_dim):
        for dim in range(m):
            src = (values[:, dim] >> np.uint64(bit)) & np.uint64(1)
            dst_pos = np.uint64(bit * m + dim)
            out |= src << dst_pos
    return out


def llcp(a: np.ndarray, b: int, total_bits: int) -> np.ndarray:
    """Length of the longest common bit-prefix of each ``a`` with ``b``.

    Prefixes are counted from the most significant of ``total_bits``.
    """
    a = np.asarray(a, dtype=np.uint64)
    diff = a ^ np.uint64(b)
    out = np.full(a.shape, total_bits, dtype=np.int64)
    nonzero = diff != 0
    if np.any(nonzero):
        # Highest set bit position of the difference.
        high = np.zeros(a.shape, dtype=np.int64)
        d = diff.copy()
        for shift in (32, 16, 8, 4, 2, 1):
            mask = d >= (np.uint64(1) << np.uint64(shift))
            high[mask] += shift
            d[mask] >>= np.uint64(shift)
        out[nonzero] = total_bits - 1 - high[nonzero]
    return out


class _Tree:
    """One LSB tree: m hash functions + a Z-order-sorted run."""

    def __init__(
        self,
        data: PointMatrix,
        cfg: LSBConfig,
        width: float | None,
        rng: np.random.Generator,
    ) -> None:
        n, d = data.shape
        if cfg.base_p == 2.0:
            self.projections = rng.standard_normal((d, cfg.m))
        else:
            self.projections = rng.standard_cauchy((d, cfg.m))
        projected = data @ self.projections
        if width is None:
            # Spread the projections over the full 2^bits bucket range so
            # the Z-order values actually discriminate; a coarser width
            # collapses clustered data onto a handful of Z values.
            spread = float(projected.max() - projected.min())
            width = max(spread, 1e-12) / float(2**cfg.bits_per_dim)
        self.offsets = rng.uniform(0.0, width, cfg.m)
        self.width = width
        self.bits = cfg.bits_per_dim
        self.m = cfg.m
        raw = np.floor((projected + self.offsets) / width).astype(np.int64)
        # Shift into the non-negative domain and clamp to bits_per_dim.
        self.shift = raw.min(axis=0)
        clamped = np.clip(raw - self.shift, 0, (1 << self.bits) - 1)
        z_values = interleave_bits(clamped.astype(np.uint64), self.bits)
        order = np.argsort(z_values, kind="stable")
        self.sorted_z = z_values[order]
        self.sorted_ids = order.astype(np.int64)

    def query_z(self, query: PointVector) -> int:
        raw = np.floor(
            (query @ self.projections + self.offsets) / self.width
        ).astype(np.int64)
        clamped = np.clip(raw - self.shift, 0, (1 << self.bits) - 1)
        return int(interleave_bits(clamped[None, :].astype(np.uint64), self.bits)[0])


class LSBForest:
    """The LSB-forest baseline: Z-order walks over ``L`` sorted runs."""

    def __init__(self, config: LSBConfig | None = None) -> None:
        cfg = config or LSBConfig()
        if cfg.m < 1 or cfg.num_trees < 1 or cfg.bits_per_dim < 1:
            raise InvalidParameterError(
                "m, num_trees and bits_per_dim must all be >= 1"
            )
        if cfg.m * cfg.bits_per_dim > 64:
            raise InvalidParameterError(
                f"m * bits_per_dim must be <= 64, got {cfg.m * cfg.bits_per_dim}"
            )
        if not cfg.c > 1.0:
            raise InvalidParameterError(f"approximation ratio c must be > 1, got {cfg.c}")
        if cfg.visit_factor < 1:
            raise InvalidParameterError(
                f"visit_factor must be >= 1, got {cfg.visit_factor}"
            )
        validate_p(cfg.base_p, allow_above_two=False)
        self.config = cfg
        self.io_stats = IOStats()
        self._data: PointMatrix | None = None
        self._trees: list[_Tree] = []
        self._width: float = 0.0
        self._layout = PageLayout(page_size=cfg.page_size, entry_size=cfg.entry_size)

    def build(self, data: PointMatrix) -> "LSBForest":
        """Materialise the ``L`` Z-order-sorted trees."""
        data = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
        if data.ndim != 2 or data.shape[0] < 1:
            raise InvalidParameterError(
                f"data must be a non-empty 2-D matrix, got shape {data.shape}"
            )
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self._trees = [
            _Tree(data, cfg, cfg.width, rng) for _ in range(cfg.num_trees)
        ]
        self._width = float(np.mean([tree.width for tree in self._trees]))
        self._data = data
        return self

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._data is not None

    def _require_built(self) -> None:
        if not self.is_built:
            raise IndexNotBuiltError("call build(data) before querying")

    def index_size_mb(self) -> float:
        """Simulated size of the ``L`` sorted runs, in MB."""
        self._require_built()
        assert self._data is not None
        per_tree = self._layout.size_bytes(self._data.shape[0])
        return len(self._trees) * per_tree / (1024.0 * 1024.0)

    def knn(self, query: PointVector, k: int, p: float | None = None) -> LSBResult:
        """Approximate kNN by merged bidirectional Z-order walks."""
        self._require_built()
        assert self._data is not None
        cfg = self.config
        p = validate_p(p if p is not None else cfg.base_p)
        n = self._data.shape[0]
        if not 1 <= k <= n:
            raise InvalidParameterError(
                f"k must lie in [1, {n}] for a dataset of {n} points, got {k}"
            )
        query = np.asarray(query, dtype=np.float64)
        stats = IOStats()
        total_bits = cfg.m * cfg.bits_per_dim
        # Cursor pair (left, right) per tree around the query's position.
        cursors: list[list[int]] = []
        query_zs: list[int] = []
        for tree in self._trees:
            zq = tree.query_z(query)
            pos = int(np.searchsorted(tree.sorted_z, zq))
            cursors.append([pos - 1, pos])
            query_zs.append(zq)
        seen = np.zeros(n, dtype=bool)
        cand_ids: list[int] = []
        cand_l2: list[float] = []
        budget = max(k, cfg.visit_factor * cfg.num_trees * k)
        terminated_by = "exhausted"
        while len(cand_ids) < n:
            # Pick the (tree, side) whose next entry has the largest LLCP
            # with its query Z-value — the LSB visit order.
            best: tuple[int, int, int] | None = None  # (llcp, tree, side)
            for t, tree in enumerate(self._trees):
                left, right = cursors[t]
                if left >= 0:
                    level = int(
                        llcp(tree.sorted_z[left : left + 1], query_zs[t], total_bits)[0]
                    )
                    if best is None or level > best[0]:
                        best = (level, t, 0)
                if right < n:
                    level = int(
                        llcp(
                            tree.sorted_z[right : right + 1], query_zs[t], total_bits
                        )[0]
                    )
                    if best is None or level > best[0]:
                        best = (level, t, 1)
            if best is None:
                break
            level, t, side = best
            tree = self._trees[t]
            if side == 0:
                idx = cursors[t][0]
                cursors[t][0] -= 1
            else:
                idx = cursors[t][1]
                cursors[t][1] += 1
            point_id = int(tree.sorted_ids[idx])
            stats.add_sequential(1)
            if not seen[point_id]:
                seen[point_id] = True
                stats.add_random(1)
                cand_ids.append(point_id)
                cand_l2.append(
                    float(lp_distance(self._data[point_id], query, cfg.base_p))
                )
            min_visits = min(budget, cfg.num_trees * k)
            if len(cand_ids) >= max(k, min_visits):
                d_k = np.partition(np.asarray(cand_l2), k - 1)[k - 1]
                # E1: the walk's frontier has degraded to LLCP ``level``,
                # i.e. every unvisited entry shares at best a bucket of
                # side width * 2^(bits - floor(level/m)).  A point c times
                # closer than that granularity would (whp, across the L
                # trees) have shown up at a finer level already, so once
                # d_k * c fits inside the frontier granularity nothing
                # better is likely to remain.
                coarse = cfg.bits_per_dim - min(level // cfg.m, cfg.bits_per_dim)
                side_length = tree.width * float(2**coarse)
                if d_k * cfg.c <= side_length:
                    terminated_by = "E1"
                    break
                if len(cand_ids) >= budget:
                    terminated_by = "E2"
                    break
        cand_arr = np.asarray(cand_ids, dtype=np.int64)
        if p == cfg.base_p:
            dists = np.asarray(cand_l2)
        else:
            dists = lp_distance(self._data[cand_arr], query, p)
        top = np.argsort(dists, kind="stable")[:k]
        self.io_stats.add_sequential(stats.sequential)
        self.io_stats.add_random(stats.random)
        return LSBResult(
            ids=cand_arr[top],
            distances=np.asarray(dists)[top],
            p=p,
            k=k,
            io=stats,
            candidates=len(cand_ids),
            terminated_by=terminated_by,
        )
