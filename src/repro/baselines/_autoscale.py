"""Data-adaptive scale estimation shared by the classic-LSH baselines.

E2LSH and multi-probe LSH are parameterised in absolute distance units
(bucket width, initial search radius).  Raw feature datasets span wildly
different magnitudes, so both baselines estimate the typical
nearest-neighbour distance from a sample at build time and scale their
absolute parameters by it.
"""

from __future__ import annotations

import numpy as np

from repro._typing import PointMatrix, SeedLike, as_rng
from repro.metrics.lp import lp_distance


def estimate_nn_distance(
    data: PointMatrix,
    p: float,
    *,
    sample_size: int = 256,
    seed: SeedLike = 7,
) -> float:
    """Median nearest-neighbour ``lp`` distance of a data sample.

    Samples ``min(sample_size, n)`` points and computes each one's nearest
    other sample point exactly.  Zero medians (heavily duplicated data)
    fall back to the smallest positive distance, or 1.0 if every pair
    coincides.
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    if n < 2:
        return 1.0
    rng = as_rng(seed)
    size = min(sample_size, n)
    sample = data[rng.choice(n, size=size, replace=False)]
    nn = np.empty(size)
    for i in range(size):
        dists = lp_distance(sample, sample[i], p)
        dists[i] = np.inf
        nn[i] = dists.min()
    finite = nn[np.isfinite(nn)]
    if finite.size == 0:
        return 1.0
    median = float(np.median(finite))
    if median > 0:
        return median
    positive = finite[finite > 0]
    return float(positive.min()) if positive.size else 1.0
