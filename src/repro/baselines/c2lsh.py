"""C2LSH (Gan et al., SIGMOD 2012) built in the l1 space.

C2LSH is the index structure LazyLSH borrows its collision-counting and
virtual-rehashing machinery from, and the main comparator in the paper's
evaluation.  Differences from :class:`repro.core.LazyLSH`:

* the index is parameterised for the ``l1`` space only — ``eta`` and
  ``theta`` come straight from Lemma 1 with ``(p1, p2)``, no ball-geometry
  correction;
* virtual rehashing uses the *original* aligned windows of Eq. 7
  (``H_R(v) = floor(h(v)/R)``), not query-centric ones;
* fractional-metric queries are answered the way the paper configures the
  comparator (Sec. 5.2): retrieve ``k + 100`` approximate neighbours in
  the ``l1`` space, then keep the ``k`` with the smallest ``lp`` distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import PointMatrix, PointVector
from repro.core.hashing import StableHashBank, original_window
from repro.core.lazylsh import KnnResult
from repro.core.params import ParameterEngine
from repro.errors import (
    IndexNotBuiltError,
    InvalidParameterError,
)
from repro.metrics.lp import lp_distance, validate_p
from repro.storage.inverted_index import InvertedListStore
from repro.storage.io_stats import IOStats
from repro.storage.pages import PageLayout, PageTracker

_MAX_ROUNDS = 128

#: Extra l1 neighbours retrieved before the lp re-rank (Sec. 5.2).
DEFAULT_RERANK_EXTRA = 100


@dataclass(frozen=True)
class C2LSHConfig:
    """Build parameters of a :class:`C2LSH` index."""

    c: float = 3.0
    epsilon: float = 0.01
    beta: float | None = None
    r0: float = 1.0
    seed: int | None = 7
    page_size: int = 4096
    entry_size: int = 8

    def resolve_beta(self, n: int) -> float:
        """Concrete false-positive rate (same policy as LazyLSH)."""
        if self.beta is not None:
            return self.beta
        return min(max(100.0 / n, 1e-4), 0.5)


class C2LSH:
    """The C2LSH baseline index (l1 space, aligned virtual rehashing)."""

    def __init__(self, config: C2LSHConfig | None = None) -> None:
        self.config = config or C2LSHConfig()
        self.io_stats = IOStats()
        self._data: PointMatrix | None = None
        self._bank: StableHashBank | None = None
        self._store: InvertedListStore | None = None
        self._eta: int = 0
        self._theta: float = 0.0
        self._beta: float = 0.0

    def build(self, data: PointMatrix) -> "C2LSH":
        """Materialise the l1 base index over ``data``."""
        data = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
        if data.ndim != 2 or data.shape[0] < 1:
            raise InvalidParameterError(
                f"data must be a non-empty 2-D matrix, got shape {data.shape}"
            )
        if not np.all(np.isfinite(data)):
            raise InvalidParameterError("data contains non-finite values")
        n, d = data.shape
        cfg = self.config
        self._beta = cfg.resolve_beta(n)
        engine = ParameterEngine(
            d,
            c=cfg.c,
            epsilon=cfg.epsilon,
            beta=self._beta,
            r0=cfg.r0,
            base_p=1.0,
            seed=cfg.seed,
        )
        params = engine.metric_params(1.0)
        self._eta = params.eta
        self._theta = params.theta
        t_max = float(np.abs(data).max())
        self._bank = StableHashBank(
            d,
            self._eta,
            r0=cfg.r0,
            c=cfg.c,
            t_max=max(t_max, 1.0),
            base_p=1.0,
            seed=cfg.seed,
        )
        layout = PageLayout(page_size=cfg.page_size, entry_size=cfg.entry_size)
        self._store = InvertedListStore(self._bank.hash_points(data), layout)
        self._data = data
        return self

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._data is not None

    def _require_built(self) -> None:
        if not self.is_built:
            raise IndexNotBuiltError("call build(data) before querying")

    @property
    def num_points(self) -> int:
        """Cardinality of the indexed dataset."""
        self._require_built()
        assert self._data is not None
        return self._data.shape[0]

    @property
    def eta(self) -> int:
        """Number of materialised hash functions."""
        self._require_built()
        return self._eta

    @property
    def theta(self) -> float:
        """Collision-count threshold (Lemma 1)."""
        self._require_built()
        return self._theta

    def index_size_mb(self) -> float:
        """Simulated on-disk index size in MB."""
        self._require_built()
        assert self._store is not None
        return self._store.size_mb()

    def knn_l1(self, query: PointVector, k: int, stats: IOStats | None = None) -> KnnResult:
        """Approximate ``k`` nearest neighbours in the l1 space.

        The C2LSH query loop: aligned virtual rehashing at radii
        ``1, c, c^2, ...`` with collision counting against ``theta``.
        """
        self._require_built()
        assert self._bank is not None and self._store is not None and self._data is not None
        n = self.num_points
        if not 1 <= k <= n:
            raise InvalidParameterError(
                f"k must lie in [1, {n}] for a dataset of {n} points, got {k}"
            )
        query = np.asarray(query, dtype=np.float64)
        if stats is None:
            stats = IOStats()
        # Per-query page cache, matching LazyLSH's accounting: a page
        # re-touched at a later rehashing radius is charged once.  Tracked
        # as page intervals, not a set — the window scans touch contiguous
        # runs, so dedup is interval arithmetic with identical counts.
        seen_pages = PageTracker()
        cap = k + self._beta * n
        counts = np.zeros(n, dtype=np.int32)
        is_candidate = np.zeros(n, dtype=bool)
        cand_ids: list[int] = []
        cand_dists: list[float] = []
        query_hashes = self._bank.hash_point(query)
        prev_windows: list[tuple[int, int]] | None = None
        radius = 1.0
        rounds = 0
        done = False
        while not done:
            rounds += 1
            if rounds > _MAX_ROUNDS:
                raise RuntimeError(
                    "C2LSH query did not terminate; the index is corrupted"
                )
            c_radius = self.config.c * radius
            windows: list[tuple[int, int]] = []
            for i in range(self._eta):
                lo, hi = original_window(int(query_hashes[i]), radius)
                windows.append((lo, hi))
                if prev_windows is None:
                    ids = self._store.read_window(i, lo, hi, stats, seen_pages)
                else:
                    plo, phi = prev_windows[i]
                    if lo <= plo and phi <= hi:
                        ids = self._store.read_ring(
                            i, lo, hi, plo, phi, stats, seen_pages
                        )
                    else:
                        ids = self._store.read_window(i, lo, hi, stats, seen_pages)
                if ids.size > 0:
                    counts[ids] += 1
                    crossed = ids[(counts[ids] > self._theta) & ~is_candidate[ids]]
                    if crossed.size > 0:
                        is_candidate[crossed] = True
                        stats.add_random(int(crossed.size))
                        dists = lp_distance(self._data[crossed], query, 1.0)
                        cand_ids.extend(int(x) for x in crossed)
                        cand_dists.extend(float(x) for x in dists)
                if len(cand_ids) >= k:
                    dist_arr = np.asarray(cand_dists)
                    if np.count_nonzero(dist_arr < c_radius * self.config.r0) >= k:
                        done = True
                        break
                if len(cand_ids) > cap:
                    done = True
                    break
            prev_windows = windows
            radius *= self.config.c
        order = np.argsort(np.asarray(cand_dists))[:k]
        ids = np.asarray(cand_ids, dtype=np.int64)[order]
        dists = np.asarray(cand_dists, dtype=np.float64)[order]
        return KnnResult(
            ids=ids,
            distances=dists,
            p=1.0,
            k=k,
            io=stats,
            candidates=len(cand_ids),
            rounds=rounds,
        )

    def knn(
        self,
        query: PointVector,
        k: int,
        p: float = 1.0,
        *,
        rerank_extra: int = DEFAULT_RERANK_EXTRA,
    ) -> KnnResult:
        """Approximate kNN under ``lp`` via the paper's comparator recipe.

        Retrieves ``min(k + rerank_extra, n)`` approximate l1 neighbours,
        then returns the ``k`` of them with the smallest true ``lp``
        distance.  For ``p = 1`` this is plain C2LSH.
        """
        self._require_built()
        assert self._data is not None
        p = validate_p(p)
        if rerank_extra < 0:
            raise InvalidParameterError(
                f"rerank_extra must be >= 0, got {rerank_extra}"
            )
        stats = IOStats()
        pool_k = k if p == 1.0 else min(k + rerank_extra, self.num_points)
        l1_result = self.knn_l1(query, pool_k, stats)
        if p == 1.0:
            result = l1_result
        else:
            query = np.asarray(query, dtype=np.float64)
            pool_ids = l1_result.ids
            dists = lp_distance(self._data[pool_ids], query, p)
            order = np.argsort(dists)[:k]
            result = KnnResult(
                ids=pool_ids[order],
                distances=dists[order],
                p=p,
                k=k,
                io=stats,
                candidates=l1_result.candidates,
                rounds=l1_result.rounds,
            )
        self.io_stats.add_sequential(stats.sequential)
        self.io_stats.add_random(stats.random)
        return result

    @property
    def rounds_cap(self) -> int:
        """Maximum rehashing rounds before the query loop aborts."""
        return _MAX_ROUNDS
