"""The overall ratio metric (Section 5.2).

For an ``Np(q, k, c)`` query with reported neighbours ``o_1..o_k`` and true
neighbours ``o*_1..o*_k`` (both sorted by ascending distance to ``q``):

.. math::

    \\text{ratio} = \\frac{1}{k} \\sum_{i=1}^{k}
        \\frac{\\ell_p(o_i, q)}{\\ell_p(o^*_i, q)}

A ratio of 1.0 means exact results; the guarantee bounds it by ``c``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError


def overall_ratio(
    reported_dists: np.ndarray, true_dists: np.ndarray
) -> float:
    """Overall ratio of one query's reported vs true distances.

    Both arrays must be sorted ascending and of equal length ``k``.  Rank
    pairs where the true distance is zero contribute 1.0 when the reported
    distance is also zero (the query found an exact duplicate) and are
    otherwise skipped — the paper's query protocol removes query points
    from the data precisely to avoid this degenerate case.
    """
    reported = np.asarray(reported_dists, dtype=np.float64)
    true = np.asarray(true_dists, dtype=np.float64)
    if reported.shape != true.shape or reported.ndim != 1:
        raise InvalidParameterError(
            f"expected equal-length 1-D arrays, got shapes {reported.shape} "
            f"and {true.shape}"
        )
    if reported.size == 0:
        raise InvalidParameterError("cannot compute a ratio over zero results")
    if reported.size > 1:
        if np.any(np.diff(reported) < 0) or np.any(np.diff(true) < 0):
            raise InvalidParameterError(
                "distance arrays must be sorted ascending"
            )
    ratios = np.empty(reported.size, dtype=np.float64)
    zero_true = true == 0.0
    regular = ~zero_true
    ratios[regular] = reported[regular] / true[regular]
    ratios[zero_true & (reported == 0.0)] = 1.0
    keep = regular | (zero_true & (reported == 0.0))
    if not np.any(keep):
        raise InvalidParameterError(
            "all true distances are zero but reported ones are not"
        )
    return float(ratios[keep].mean())


def mean_overall_ratio(
    reported: list[np.ndarray], true: list[np.ndarray]
) -> float:
    """Average :func:`overall_ratio` over a batch of queries."""
    if len(reported) != len(true) or not reported:
        raise InvalidParameterError(
            "need equally many (and at least one) reported/true arrays"
        )
    return float(
        np.mean([overall_ratio(r, t) for r, t in zip(reported, true)])
    )
