"""Experiment-harness utilities shared by the benchmark scripts.

Benchmarks print the same rows/series the paper's tables and figures
report; :class:`ResultTable` renders them as aligned plain text (and
markdown for EXPERIMENTS.md), :class:`Timer` measures wall-clock query
times for the Appendix B.2 experiments, and :func:`time_knn_batch` runs a
query workload through :func:`repro.core.batch.knn_batch` under the
timer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import InvalidParameterError


@dataclass
class ResultTable:
    """A printable experiment result table.

    Example
    -------
    >>> table = ResultTable("Table 5a", ["|D|", "eta", "MB"])
    >>> table.add_row([1000, 923, 10.6])
    >>> print(table.render())  # doctest: +SKIP
    """

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, values: Iterable[Any]) -> None:
        """Append one row; must match the column count."""
        row = list(values)
        if len(row) != len(self.columns):
            raise InvalidParameterError(
                f"row has {len(row)} values but table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _format(value: Any) -> str:
        if isinstance(value, float):
            if value == 0 or 0.001 <= abs(value) < 100_000:
                return f"{value:.3f}".rstrip("0").rstrip(".")
            return f"{value:.3e}"
        return str(value)

    def render(self) -> str:
        """Aligned plain-text rendering."""
        cells = [self.columns] + [
            [self._format(v) for v in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.columns))
        ]
        lines = [self.title, "-" * len(self.title)]
        for j, row in enumerate(cells):
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
            if j == 0:
                lines.append("  ".join("=" * w for w in widths))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-markdown rendering for EXPERIMENTS.md."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(self._format(v) for v in row) + " |")
        return "\n".join(lines)


class Timer:
    """Context-manager wall-clock timer.

    Re-enterable: ``seconds`` is the most recent ``with`` block's
    duration, ``total_seconds`` and ``entries`` accumulate over every
    finished block — so one timer can meter a loop of measured sections.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.seconds >= 0
    True
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.entries
    2
    >>> t.total_seconds >= t.seconds
    True
    """

    def __init__(self) -> None:
        self.seconds: float = 0.0
        self.total_seconds: float = 0.0
        self.entries: int = 0
        self._start: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._start
        self.total_seconds += self.seconds
        self.entries += 1

    def as_row(self) -> dict:
        """JSON-serialisable summary for run records and result tables."""
        return {
            "seconds": self.seconds,
            "total_seconds": self.total_seconds,
            "entries": self.entries,
        }


def time_knn_batch(
    index,
    queries,
    k: int,
    p: float | None = None,
    *,
    metrics: Sequence[float] | None = None,
    engine: str = "flat",
    share_pages: bool = False,
    telemetry=None,
):
    """Run ``knn_batch`` under a wall-clock timer.

    Returns ``(BatchKnnResult, seconds)``; used by the benchmark scripts
    so scalar/flat comparisons all time the identical call path.
    ``telemetry`` is forwarded to :func:`repro.core.batch.knn_batch`.
    """
    from repro.core.batch import knn_batch

    with Timer() as timer:
        result = knn_batch(
            index,
            queries,
            k,
            p=p,
            metrics=metrics,
            engine=engine,
            share_pages=share_pages,
            telemetry=telemetry,
        )
    return result, timer.seconds
