"""The kNN classifier behind Table 1.

"For each query point, we retrieve its nearest neighbor and assign it to
the same class tag as its nearest neighbor."  The classifier is pluggable
in *how* it retrieves neighbours: an exact scan (the ``Real 1NN`` column)
or any approximate index with a ``knn(query, k, p)`` method (the LazyLSH
columns).
"""

from __future__ import annotations

from collections import Counter
from typing import Protocol

import numpy as np

from repro.datasets.ground_truth import exact_knn
from repro.errors import InvalidParameterError
from repro.metrics.lp import validate_p


class _KnnIndex(Protocol):
    def knn(self, query: np.ndarray, k: int, p: float):  # pragma: no cover
        ...


class KnnClassifier:
    """Majority-vote kNN classifier over a labelled training set.

    Parameters
    ----------
    points / labels:
        The training data.
    retriever:
        Optional approximate index already built over ``points``; when
        omitted, neighbours are retrieved exactly.
    """

    def __init__(
        self,
        points: np.ndarray,
        labels: np.ndarray,
        retriever: _KnnIndex | None = None,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        labels = np.asarray(labels)
        if points.ndim != 2 or labels.shape != (points.shape[0],):
            raise InvalidParameterError(
                "points must be (n, d) and labels (n,), got "
                f"{points.shape} and {labels.shape}"
            )
        self._points = points
        self._labels = labels
        self._retriever = retriever

    def _neighbour_ids(self, query: np.ndarray, k: int, p: float) -> np.ndarray:
        if self._retriever is None:
            ids, _dists = exact_knn(self._points, query[None, :], k, p)
            return ids[0]
        result = self._retriever.knn(query, k, p=p)
        return np.asarray(result.ids)

    def predict_one(self, query: np.ndarray, k: int = 1, p: float = 1.0):
        """Predicted label of a single query point."""
        validate_p(p)
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        ids = self._neighbour_ids(np.asarray(query, dtype=np.float64), k, p)
        if ids.size == 0:
            raise InvalidParameterError("retriever returned no neighbours")
        votes = Counter(self._labels[ids].tolist())
        return votes.most_common(1)[0][0]

    def predict(self, queries: np.ndarray, k: int = 1, p: float = 1.0) -> np.ndarray:
        """Predicted labels of each query row."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return np.asarray(
            [self.predict_one(q, k, p) for q in queries]
        )


def classification_accuracy(
    train_points: np.ndarray,
    train_labels: np.ndarray,
    test_points: np.ndarray,
    test_labels: np.ndarray,
    *,
    k: int = 1,
    p: float = 1.0,
    retriever: _KnnIndex | None = None,
) -> float:
    """Accuracy of the (approximate) kNN classifier on a test split."""
    clf = KnnClassifier(train_points, train_labels, retriever)
    predictions = clf.predict(test_points, k=k, p=p)
    test_labels = np.asarray(test_labels)
    if predictions.shape != test_labels.shape:
        raise InvalidParameterError(
            f"prediction/label shape mismatch: {predictions.shape} vs "
            f"{test_labels.shape}"
        )
    return float(np.mean(predictions == test_labels))
