"""Evaluation metrics and experiment harness (Section 5.2).

* :mod:`repro.eval.ratio` — the overall ratio,
* :mod:`repro.eval.recall` — recall / precision@k,
* :mod:`repro.eval.knn_classifier` — the Table-1 kNN classifier,
* :mod:`repro.eval.harness` — result tables and timing helpers shared by
  the benchmark scripts.
"""

from repro.eval.harness import ResultTable, Timer
from repro.eval.knn_classifier import KnnClassifier, classification_accuracy
from repro.eval.ratio import overall_ratio
from repro.eval.recall import precision_at_k, recall_at_k

__all__ = [
    "KnnClassifier",
    "ResultTable",
    "Timer",
    "classification_accuracy",
    "overall_ratio",
    "precision_at_k",
    "recall_at_k",
]
