"""Recall and precision of approximate kNN result sets."""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError


def recall_at_k(reported_ids: np.ndarray, true_ids: np.ndarray) -> float:
    """Fraction of the true top-k found in the reported top-k.

    Both arrays are id lists of the same query; the reported list may be
    shorter than ``k`` (some probabilistic methods return fewer).
    """
    true_ids = np.asarray(true_ids)
    reported_ids = np.asarray(reported_ids)
    if true_ids.size == 0:
        raise InvalidParameterError("true_ids must be non-empty")
    hits = np.isin(true_ids, reported_ids).sum()
    return float(hits) / float(true_ids.size)


def precision_at_k(reported_ids: np.ndarray, true_ids: np.ndarray) -> float:
    """Fraction of the reported ids that are true top-k members."""
    true_ids = np.asarray(true_ids)
    reported_ids = np.asarray(reported_ids)
    if reported_ids.size == 0:
        raise InvalidParameterError("reported_ids must be non-empty")
    hits = np.isin(reported_ids, true_ids).sum()
    return float(hits) / float(reported_ids.size)


def mean_recall_at_k(
    reported: list[np.ndarray], true: list[np.ndarray]
) -> float:
    """Average :func:`recall_at_k` over a batch of queries."""
    if len(reported) != len(true) or not reported:
        raise InvalidParameterError(
            "need equally many (and at least one) reported/true id arrays"
        )
    return float(np.mean([recall_at_k(r, t) for r, t in zip(reported, true)]))
