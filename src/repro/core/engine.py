"""Flat-array query execution engine for Algorithm 4.

The seed implementation of :meth:`LazyLSH.knn` is interpreter-bound: a
Python loop over all ``eta`` hash functions per rehashing round, one
``searchsorted`` per function per round, and an ``np.asarray`` rebuild of
the candidate-distance list on every inner termination check.  This module
re-executes the *same plan* with batched kernels:

* all of a round's window (or ring) entry ranges are answered by two
  vectorised ``searchsorted`` calls over the store's flat layout
  (:meth:`InvertedListStore.batch_entry_positions`) — across every hash
  function *and* every query of a batch simultaneously;
* the round's scans are then consumed in geometrically growing *blocks*
  of hash functions, so a query that terminates at function ``i`` of its
  final round gathers only ``O(i)`` functions' worth of entries, like the
  scalar loop's mid-round ``break``;
* collision counts are updated with one ``np.bincount`` per block, and
  the per-function threshold crossings are recovered with one stable
  argsort (the rank of a point's occurrence within the block tells at
  which function its count crossed ``theta``);
* the "``k`` candidates within ``c * delta``" termination condition is
  maintained incrementally (a counter plus the shrinking set of
  outside-radius distances), so each per-function check is O(1) — the
  first function at which a query terminates falls out of one ``cumsum``;
* sequential I/O is charged by interval arithmetic on per-function page
  hulls instead of a per-page Python loop.

The engine is a pure execution-plan change: candidate order, termination
round/function, results, and the simulated sequential/random I/O counts
are bit-identical to the scalar reference loops (``LazyLSH._knn_impl`` and
``MultiQueryEngine``'s scalar path), which the paper's evaluation measures.

Why exactness holds
-------------------

The scalar loop's observable state only changes at threshold crossings,
and within one block the crossing function of a point is determined by its
collision count at block start plus the number of consumed windows
containing it.  Promotions are re-ordered here by flat scan position —
function-major, left ring run before right — which is precisely the
scalar visit order, and mid-round termination is re-derived as the first
function where the cumulative within-radius count reaches ``k`` (or the
candidate budget is exhausted), so I/O is charged only for the windows
the scalar loop would actually have read.
"""

from __future__ import annotations

import math

import numpy as np

from repro._typing import PointVector
from repro.metrics.lp import lp_distance
from repro.storage.io_stats import IOStats
from repro.storage.pages import PageTracker

#: Hard cap on rehashing rounds (mirrors the scalar loops).
_MAX_ROUNDS = 128

#: Algorithm-4 termination reasons, shared by the flat and scalar paths
#: (and re-exported by :mod:`repro.obs` for trace consumers).
TERMINATION_K_WITHIN = "k_within_radius"
TERMINATION_CAP = "candidate_cap"

#: Hash functions gathered per block; doubles every block of a round so a
#: full no-termination round costs O(log eta) block overheads while an
#: early termination at function ``i`` overshoots by at most ``O(i)``.
_BLOCK_FUNCS = 64

#: Sentinel for "no pages seen yet" per-function page hulls.
_HULL_EMPTY_FIRST = 2**62

#: ``slack`` value for rows that can never cross the collision threshold
#: (deleted points and already-promoted candidates).  Far above any
#: possible per-block collision count, and decremented by at most the
#: total number of window memberships of one query (< 2**18), so such a
#: row never fires the ``add > slack`` crossing test.
_SLACK_DEAD = 2**30

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_I64.setflags(write=False)
_EMPTY_F64 = np.empty(0, dtype=np.float64)
_EMPTY_F64.setflags(write=False)


def charge_ring_hulls(
    first_l: np.ndarray,
    stop_l: np.ndarray,
    mask_l: np.ndarray,
    first_r: np.ndarray,
    stop_r: np.ndarray,
    mask_r: np.ndarray,
    seen_first: np.ndarray,
    seen_stop: np.ndarray,
) -> np.ndarray:
    """Charge left/right ring page runs against per-function page hulls.

    ``first_*``/``stop_*`` are half-open page intervals per function
    (ignored where the matching mask is False); ``seen_first``/
    ``seen_stop`` are the hulls of pages already charged, extended *in
    place*.  Returns the per-function count of newly read pages.

    This is the pure interval arithmetic shared by the flat engine's
    :meth:`LaneGroup._charge_hulls` and the sharded service's
    coordinator (which reconstructs the same full-run intervals from
    per-shard scan extents): a ring half outside the hull sits entirely
    below its first page or at/above its stop page, so the two
    new-page counts plus one inclusion-exclusion term for the shared
    boundary page never double count.
    """
    over_l = np.maximum(
        np.minimum(stop_l, seen_stop) - np.maximum(first_l, seen_first), 0
    )
    over_r = np.maximum(
        np.minimum(stop_r, seen_stop) - np.maximum(first_r, seen_first), 0
    )
    new_l = np.where(mask_l, (stop_l - first_l) - over_l, 0)
    new_r = np.where(mask_r, (stop_r - first_r) - over_r, 0)
    dup_first = np.maximum(first_l, first_r)
    dup_stop = np.minimum(stop_l, stop_r)
    dup = np.maximum(dup_stop - dup_first, 0)
    dup -= np.maximum(
        np.minimum(dup_stop, seen_stop) - np.maximum(dup_first, seen_first), 0
    )
    dup = np.where(mask_l & mask_r, dup, 0)
    new = new_l + new_r - dup
    np.minimum(seen_first, np.where(mask_l, first_l, seen_first), out=seen_first)
    np.minimum(seen_first, np.where(mask_r, first_r, seen_first), out=seen_first)
    np.maximum(seen_stop, np.where(mask_l, stop_l, seen_stop), out=seen_stop)
    np.maximum(seen_stop, np.where(mask_r, stop_r, seen_stop), out=seen_stop)
    return new


class Lane:
    """Per-(query, metric) Algorithm-4 state inside a lane group."""

    __slots__ = (
        "p",
        "params",
        "k",
        "cap",
        "theta",
        "eta",
        "counts",
        "slack",
        "is_candidate",
        "id_chunks",
        "dist_chunks",
        "n_cand",
        "n_within",
        "outside",
        "active",
        "rounds",
        "io",
        "delta",
        "c_delta",
        "i_stop",
        "scan_end",
        "block_data",
        "stop_reason",
        "trace",
    )

    def __init__(self, p: float, params, k: int, cap: float, n_rows: int) -> None:
        self.p = p
        self.params = params
        self.k = k
        self.cap = cap
        self.theta = int(params.theta)
        self.eta = int(params.eta)
        self.counts = np.zeros(n_rows, dtype=np.int32)
        # Fused crossing test: row j's count crosses theta within a block
        # iff the block adds more than ``slack[j]`` collisions.  Rows that
        # cannot cross (dead or already candidates) carry _SLACK_DEAD; the
        # group initialises the live entries to ``theta`` when it binds
        # the lane to its data.
        self.slack = np.full(n_rows, _SLACK_DEAD, dtype=np.int32)
        self.is_candidate = np.zeros(n_rows, dtype=bool)
        self.id_chunks: list[np.ndarray] = []
        self.dist_chunks: list[np.ndarray] = []
        self.n_cand = 0
        # Incremental termination bookkeeping: ``n_within`` counts the
        # candidates already inside the current round's ``c * delta``;
        # ``outside`` holds the distances not yet inside, re-filtered once
        # per round as the radius grows (each distance is scanned only
        # while it remains outside).
        self.n_within = 0
        self.outside = np.empty(0, dtype=np.float64)
        self.active = True
        self.rounds = 0
        self.io = IOStats()
        self.delta = 1.0 / float(params.r_hat)
        self.c_delta = 0.0
        # Per-round scan cursor: the function the lane stopped at (None
        # while still scanning) and the exclusive end of its scan range.
        self.i_stop: int | None = None
        self.scan_end = 0
        self.block_data: tuple | None = None
        # Telemetry: why the lane terminated, and an optional
        # QueryTraceBuilder hook (None keeps the no-op fast path — the
        # only disabled-telemetry cost is `is None` checks).
        self.stop_reason = ""
        self.trace = None

    def begin_round_radius(self) -> None:
        """Refresh the within-radius counter for the new (larger) radius."""
        if self.outside.size:
            newly = self.outside < self.c_delta
            hits = int(np.count_nonzero(newly))
            if hits:
                self.n_within += hits
                self.outside = self.outside[~newly]

    def candidate_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        if not self.id_chunks:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        return (
            np.concatenate(self.id_chunks),
            np.concatenate(self.dist_chunks),
        )


class LaneGroup:
    """One query point's lanes, sharing windows, scans and page charging.

    ``style`` selects the float arithmetic of the reference loop being
    reproduced: ``"single"`` follows ``LazyLSH._knn_impl`` (radius state
    ``delta`` multiplied by ``c`` each round), ``"multi"`` follows
    ``MultiQueryEngine`` (``level = c ** round`` recomputed per round, one
    shared scan feeding every metric, sequential I/O attributed to the
    smallest active ``p``, random I/O deduplicated through a shared
    ``fetched`` mask).
    """

    def __init__(
        self,
        *,
        store,
        data,
        alive,
        c: float,
        rehashing: str,
        query: PointVector,
        query_hashes: np.ndarray,
        lanes: list[Lane],
        style: str,
        shared_pages: PageTracker | None = None,
    ) -> None:
        self.store = store
        self.data = data
        self.alive = alive
        self.c = float(c)
        self.rehashing = rehashing
        self.query = query
        self.query_hashes = query_hashes
        self.lanes = lanes
        self.style = style
        self.shared_pages = shared_pages
        self.n_rows = int(alive.shape[0])
        self.fetched = (
            np.zeros(self.n_rows, dtype=bool) if style == "multi" else None
        )
        for lane in lanes:
            np.copyto(lane.slack, lane.theta, where=alive)
        # Scratch buffer for marking crossing ids inside _analyse_lane;
        # always all-False between calls.
        self._lookup = np.zeros(self.n_rows, dtype=bool)
        eta_max = max(lane.eta for lane in lanes)
        self.eta_max = eta_max
        # Per-function previous-round state: bucket windows, their entry
        # ranges, and the page hull already charged (interval arithmetic).
        self.plos = np.zeros(eta_max, dtype=np.int64)
        self.phis = np.zeros(eta_max, dtype=np.int64)
        self.pstarts = np.zeros(eta_max, dtype=np.int64)
        self.pstops = np.zeros(eta_max, dtype=np.int64)
        self.seen_first = np.full(eta_max, _HULL_EMPTY_FIRST, dtype=np.int64)
        self.seen_stop = np.zeros(eta_max, dtype=np.int64)
        self.first_round = True
        self.level = 0.0
        self.cur_los: np.ndarray | None = None
        self.cur_his: np.ndarray | None = None
        self.active_lanes: list[Lane] = []
        self.f_round = 0

    @property
    def active(self) -> bool:
        return any(lane.active for lane in self.lanes)

    # -- round protocol -------------------------------------------------

    def begin_round(self, round_index: int):
        """Advance radii; return this round's ``(funcs, los, his)``."""
        self.active_lanes = [lane for lane in self.lanes if lane.active]
        if not self.active_lanes:
            return None
        for lane in self.active_lanes:
            lane.rounds += 1
        if self.style == "single":
            lane = self.lanes[0]
            self.level = float(lane.params.r_hat) * lane.delta
            lane.c_delta = self.c * lane.delta
        else:
            self.level = self.c**round_index
            for lane in self.active_lanes:
                lane.delta = self.c**round_index / float(lane.params.r_hat)
                lane.c_delta = self.c * lane.delta
        for lane in self.active_lanes:
            lane.begin_round_radius()
            if lane.trace is not None:
                lane.trace.begin_round(
                    level=self.level, radius=lane.c_delta, io=lane.io
                )
        f_round = max(lane.eta for lane in self.active_lanes)
        self.f_round = f_round
        hq = self.query_hashes[:f_round]
        if self.rehashing == "query_centric":
            half = int(math.floor(self.level / 2.0))
            los = hq - half
            his = hq + half
        else:
            width = max(1, int(math.floor(self.level)))
            base = np.floor_divide(hq, width)
            los = base * width
            his = los + width - 1
        self.cur_los = los
        self.cur_his = his
        funcs = np.arange(f_round, dtype=np.int64)
        return funcs, los, his

    def process_round(self, starts: np.ndarray, stops: np.ndarray) -> None:
        """Consume one round's entry ranges (absolute flat positions).

        The scan is split into left/right ring segments per function and
        consumed in geometrically growing function blocks — the flat
        analogue of the scalar loop's per-function ``break``: once every
        lane has terminated, the remaining functions of the round are
        never gathered, counted or charged.
        """
        f_round = self.f_round
        n = self.store.num_points
        base = np.arange(f_round, dtype=np.int64) * n
        stops = np.maximum(starts, stops)
        if self.first_round:
            left_starts, left_stops = starts, stops
            right_starts = right_stops = stops
        else:
            nested = (self.cur_los <= self.plos[:f_round]) & (
                self.phis[:f_round] <= self.cur_his
            )
            pstarts = self.pstarts[:f_round]
            pstops = self.pstops[:f_round]
            left_starts = starts
            left_stops = np.where(nested, np.minimum(pstarts, stops), stops)
            right_starts = np.where(nested, np.maximum(pstops, starts), stops)
            right_stops = stops
        left_lens = left_stops - left_starts
        right_lens = right_stops - right_starts
        func_lens = left_lens + right_lens
        seg_starts = np.empty(2 * f_round, dtype=np.int64)
        seg_lens = np.empty(2 * f_round, dtype=np.int64)
        seg_starts[0::2] = left_starts
        seg_starts[1::2] = right_starts
        seg_lens[0::2] = left_lens
        seg_lens[1::2] = right_lens

        for lane in self.active_lanes:
            lane.i_stop = None
            lane.scan_end = min(lane.eta, f_round)

        rel_left = (left_starts - base, left_stops - base)
        rel_right = (right_starts - base, right_stops - base)
        f0 = 0
        block = _BLOCK_FUNCS
        while True:
            f_need = max(
                (
                    lane.scan_end
                    for lane in self.active_lanes
                    if lane.i_stop is None
                ),
                default=0,
            )
            if f0 >= f_need:
                break
            f1 = min(f_need, f0 + block)
            block *= 2
            self._process_block(
                f0, f1, seg_starts, seg_lens, func_lens, rel_left, rel_right
            )
            f0 = f1

        for lane in self.active_lanes:
            if lane.i_stop is not None:
                lane.active = False
            if lane.trace is not None:
                lane.trace.end_round(
                    io=lane.io, candidates=lane.n_cand, within=lane.n_within
                )

        # Advance per-function previous-round state.
        self.plos[:f_round] = self.cur_los
        self.phis[:f_round] = self.cur_his
        self.pstarts[:f_round] = starts
        self.pstops[:f_round] = stops
        self.first_round = False
        if self.style == "single":
            self.lanes[0].delta *= self.c

    # -- internals ------------------------------------------------------

    def _process_block(
        self,
        f0: int,
        f1: int,
        seg_starts: np.ndarray,
        seg_lens: np.ndarray,
        func_lens: np.ndarray,
        rel_left: tuple[np.ndarray, np.ndarray],
        rel_right: tuple[np.ndarray, np.ndarray],
    ) -> None:
        """Gather and consume hash functions ``[f0, f1)`` of the round."""
        lens_blk = func_lens[f0:f1]
        bounds = np.empty(f1 - f0 + 1, dtype=np.int64)
        bounds[0] = 0
        np.cumsum(lens_blk, out=bounds[1:])
        flat_ids = self.store.gather_segments32(
            seg_starts[2 * f0 : 2 * f1], seg_lens[2 * f0 : 2 * f1]
        )

        # Lanes still scanning when this block begins; a lane whose scan
        # range ended in an earlier block consumes nothing here.
        scanners = [
            lane
            for lane in self.active_lanes
            if lane.i_stop is None and lane.scan_end > f0
        ]
        for lane in scanners:
            self._analyse_lane(lane, f0, f1, flat_ids, bounds)

        # Sequential I/O: one interval-arithmetic charge per consumed
        # function, attributed to the smallest-p lane consuming it.
        reader = np.full(f1 - f0, -1, dtype=np.int64)
        for rank in range(len(self.active_lanes) - 1, -1, -1):
            lane = self.active_lanes[rank]
            if lane not in scanners:
                continue
            last = lane.scan_end - 1 if lane.i_stop is None else lane.i_stop
            hi = min(last, f1 - 1)
            if hi >= f0:
                reader[: hi - f0 + 1] = rank
        consumed = reader >= 0
        epp = self.store.layout.entries_per_page
        new_pages = self._charge_hulls(
            f0, f1, rel_left, rel_right, epp, consumed
        )
        if np.any(consumed):
            seq = np.bincount(
                reader[consumed],
                weights=new_pages[consumed],
                minlength=len(self.active_lanes),
            )
            for rank, lane in enumerate(self.active_lanes):
                if seq[rank]:
                    lane.io.add_sequential(int(seq[rank]))

        # Random I/O + candidate promotion.
        if self.fetched is None:
            self._promote_single(scanners)
        else:
            self._promote_shared(scanners)

    def _analyse_lane(
        self,
        lane: Lane,
        f0: int,
        f1: int,
        flat_ids: np.ndarray,
        bounds: np.ndarray,
    ) -> None:
        """Find the block's threshold crossings and the stop function.

        Avoids sorting the block's id stream: one ``bincount`` finds the
        (few) points whose collision count crosses ``theta`` within the
        block, and only their occurrences are ranked to recover the exact
        function — hence scan position — where each crossing happens.
        """
        nf = min(lane.scan_end, f1) - f0
        m = int(bounds[nf])
        sub = flat_ids[:m]
        add = None
        crossers = _EMPTY_I64
        if m:
            add = np.bincount(sub, minlength=self.n_rows)
            crossers = np.flatnonzero(add > lane.slack)
        if not crossers.size:
            # No promotions in this lane's share of the block, so the
            # scalar loop's per-function check is the same constant test
            # at every function of the range.
            if lane.n_within >= lane.k:
                lane.i_stop = f0
                lane.stop_reason = TERMINATION_K_WITHIN
            elif lane.n_cand > lane.cap:
                lane.i_stop = f0
                lane.stop_reason = TERMINATION_CAP
            if lane.trace is not None:
                consumed = m if lane.i_stop is None else int(bounds[1])
                lane.trace.add_collisions(consumed)
            lane.block_data = (_EMPTY_I64, _EMPTY_I64, _EMPTY_F64, add)
            return
        lookup = self._lookup
        lookup[crossers] = True
        pos = np.flatnonzero(lookup[sub])
        lookup[crossers] = False
        psub = sub[pos]
        order = np.argsort(psub, kind="stable")
        sid = psub[order]
        first = np.empty(sid.size, dtype=bool)
        first[0] = True
        np.not_equal(sid[1:], sid[:-1], out=first[1:])
        group_starts = np.flatnonzero(first)
        group_idx = np.cumsum(first) - 1
        rank = np.arange(sid.size, dtype=np.int64) - group_starts[group_idx]
        # A point's count crosses theta at its (theta - count)-th
        # occurrence of the block.
        hits = rank == lane.slack[sid]
        elems = pos[order[hits]]
        elems.sort()
        cross_ids = sub[elems]
        cross_func = f0 + (np.searchsorted(bounds, elems, side="right") - 1)
        dists = lp_distance(self.data[cross_ids], self.query, lane.p)
        promo = np.bincount(cross_func - f0, minlength=nf)
        within = np.bincount(cross_func[dists < lane.c_delta] - f0, minlength=nf)
        cum_cand = lane.n_cand + np.cumsum(promo)
        cum_within = lane.n_within + np.cumsum(within)
        stop_mask = (cum_within >= lane.k) | (cum_cand > lane.cap)
        if stop_mask.any():
            stop = int(np.argmax(stop_mask))
            lane.i_stop = f0 + stop
            # The scalar loop tests the within-radius condition before
            # the candidate cap, so it wins when both fire at once.
            lane.stop_reason = (
                TERMINATION_K_WITHIN
                if cum_within[stop] >= lane.k
                else TERMINATION_CAP
            )
        if lane.trace is not None:
            consumed = (
                m if lane.i_stop is None else int(bounds[lane.i_stop - f0 + 1])
            )
            lane.trace.add_collisions(consumed)
        lane.block_data = (cross_ids, cross_func, dists, add)

    def _charge_hulls(
        self,
        f0: int,
        f1: int,
        rel_left: tuple[np.ndarray, np.ndarray],
        rel_right: tuple[np.ndarray, np.ndarray],
        entries_per_page: int,
        consumed: np.ndarray,
    ) -> np.ndarray:
        """Charge a block's left/right ring scans against the page hulls.

        Returns the per-function count of newly read pages for functions
        ``[f0, f1)`` and extends the hulls in place.  Correctness relies
        on every scan being entry-wise adjacent to (or overlapping) the
        pages already seen for its function, which holds for nested
        rehashing windows and their ring complements — the union of
        charged pages stays one interval.  Both ring halves are charged
        against the pre-block hull in one pass: their outside-hull page
        runs sit on opposite sides of the hull (left below its first
        page, right at or above its stop page), so the two new-page
        counts never double count.
        """
        l_starts = rel_left[0][f0:f1]
        l_stops = rel_left[1][f0:f1]
        r_starts = rel_right[0][f0:f1]
        r_stops = rel_right[1][f0:f1]
        mask_l = consumed & (l_stops > l_starts)
        mask_r = consumed & (r_stops > r_starts)
        first_l = l_starts // entries_per_page
        stop_l = np.where(mask_l, (l_stops - 1) // entries_per_page + 1, first_l)
        first_r = r_starts // entries_per_page
        stop_r = np.where(mask_r, (r_stops - 1) // entries_per_page + 1, first_r)
        new_l = np.where(mask_l, stop_l - first_l, 0)
        new_r = np.where(mask_r, stop_r - first_r, 0)
        new = charge_ring_hulls(
            first_l,
            stop_l,
            mask_l,
            first_r,
            stop_r,
            mask_r,
            self.seen_first[f0:f1],
            self.seen_stop[f0:f1],
        )
        if self.shared_pages is not None:
            # Batch-wide buffer pool: re-dedup each function's newly read
            # page runs against pages other queries already charged.  The
            # tracker sees the left run before the right run of the same
            # function, so its returns already exclude the shared page;
            # charged functions are fully replaced (dup > 0 implies both
            # sides charged).
            for j in np.flatnonzero((new_l > 0) | (new_r > 0)):
                func = f0 + int(j)
                total = 0
                if new_l[j] > 0:
                    total += self.shared_pages.charge(
                        func, int(first_l[j]), int(stop_l[j])
                    )
                if new_r[j] > 0:
                    total += self.shared_pages.charge(
                        func, int(first_r[j]), int(stop_r[j])
                    )
                new[j] = total
        return new

    def _kept_slice(self, lane: Lane) -> int:
        cross_func = lane.block_data[1]
        if lane.i_stop is None:
            return int(cross_func.shape[0])
        return int(np.searchsorted(cross_func, lane.i_stop, side="right"))

    def _promote_lane(self, lane: Lane, kept: int) -> None:
        cross_ids, _cross_func, dists, add = lane.block_data
        kept_ids = cross_ids[:kept]
        kept_dists = dists[:kept]
        if kept:
            if lane.trace is not None:
                lane.trace.add_crossings(kept)
            lane.is_candidate[kept_ids] = True
            lane.id_chunks.append(kept_ids)
            lane.dist_chunks.append(kept_dists)
            lane.n_cand += kept
            inside = kept_dists < lane.c_delta
            lane.n_within += int(np.count_nonzero(inside))
            if not inside.all():
                lane.outside = np.concatenate([lane.outside, kept_dists[~inside]])
        if lane.i_stop is None and add is not None:
            lane.counts += add
            np.subtract(lane.slack, add, out=lane.slack, casting="unsafe")
            if kept:
                lane.slack[kept_ids] = _SLACK_DEAD
        lane.block_data = None

    def _promote_single(self, scanners: list[Lane]) -> None:
        for lane in scanners:
            kept = self._kept_slice(lane)
            if kept:
                lane.io.add_random(kept)
            self._promote_lane(lane, kept)

    def _promote_shared(self, scanners: list[Lane]) -> None:
        """Multi-metric promotion with shared candidate fetches.

        Replays the scalar engine's (function, metric) processing order to
        attribute each object's single random fetch to the first metric
        that promotes it.
        """
        kept_counts = [self._kept_slice(lane) for lane in scanners]
        total = sum(kept_counts)
        if total:
            ranks = {id(lane): rank for rank, lane in enumerate(self.active_lanes)}
            all_ids = np.empty(total, dtype=np.int64)
            all_func = np.empty(total, dtype=np.int64)
            all_rank = np.empty(total, dtype=np.int64)
            all_pos = np.empty(total, dtype=np.int64)
            offset = 0
            for lane, kept in zip(scanners, kept_counts):
                if not kept:
                    continue
                sl = slice(offset, offset + kept)
                all_ids[sl] = lane.block_data[0][:kept]
                all_func[sl] = lane.block_data[1][:kept]
                all_rank[sl] = ranks[id(lane)]
                all_pos[sl] = np.arange(kept, dtype=np.int64)
                offset += kept
            perm = np.lexsort((all_pos, all_rank, all_func))
            sorted_ids = all_ids[perm]
            _unique, first_idx = np.unique(sorted_ids, return_index=True)
            fresh = np.zeros(sorted_ids.shape[0], dtype=bool)
            fresh[first_idx] = True
            fresh &= ~self.fetched[sorted_ids]
            counts = np.bincount(
                all_rank[perm][fresh], minlength=len(self.active_lanes)
            )
            self.fetched[all_ids] = True
            for rank, lane in enumerate(self.active_lanes):
                if counts[rank]:
                    lane.io.add_random(int(counts[rank]))
        for lane, kept in zip(list(scanners), kept_counts):
            self._promote_lane(lane, kept)


def execute_rounds(groups: list[LaneGroup], *, error: str) -> None:
    """Run lane groups to completion, round-synchronised.

    Each round, every active group's window bounds are concatenated and
    answered with two batched ``searchsorted`` calls over the shared
    store's flat layout; groups then consume their slices independently.
    """
    if not groups:
        return
    store = groups[0].store
    round_index = -1
    while True:
        round_index += 1
        requests = []
        for group in groups:
            req = group.begin_round(round_index)
            if req is not None:
                requests.append((group, *req))
        if not requests:
            return
        if round_index >= _MAX_ROUNDS:
            raise RuntimeError(error)
        if len(requests) == 1:
            group, funcs, los, his = requests[0]
            starts = store.batch_entry_positions(funcs, los, side="left")
            stops = store.batch_entry_positions(funcs, his, side="right")
            group.process_round(starts, stops)
            continue
        funcs = np.concatenate([req[1] for req in requests])
        los = np.concatenate([req[2] for req in requests])
        his = np.concatenate([req[3] for req in requests])
        starts = store.batch_entry_positions(funcs, los, side="left")
        stops = store.batch_entry_positions(funcs, his, side="right")
        offset = 0
        for group, group_funcs, _lo, _hi in requests:
            span = group_funcs.shape[0]
            group.process_round(
                starts[offset : offset + span], stops[offset : offset + span]
            )
            offset += span
