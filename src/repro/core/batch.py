"""Round-synchronised batched kNN over many query points.

``knn_batch`` answers many ``Np(q, k, c)`` queries in one pass over the
flat execution engine:

* every query point is hashed with a single :class:`StableHashBank`
  matmul instead of one GEMV per query;
* the per-round window scans of *all* queries are answered together by
  two vectorised ``searchsorted`` calls over the store's flat layout
  (queries are level-synchronised — each advances one Algorithm-4 round
  per engine round and drops out when it terminates);
* each query then consumes its slice of the shared scan independently,
  so per-query results, rounds and I/O accounting stay bit-identical to
  looping :meth:`LazyLSH.knn` — the batch changes the execution plan,
  not the simulated cost model.

``share_pages=True`` additionally models one buffer pool shared by the
whole batch: a page read by any query stays cached for the others, and
each query's sequential count becomes its *marginal* page reads in batch
order (the batch total is then what one disk arm would really fetch).
This intentionally diverges from the looped-scalar accounting, which
gives every query a private pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro._typing import PointMatrix
from repro.api import SearchRequest, aggregate_io, warn_positional
from repro.core.engine import Lane, LaneGroup, execute_rounds
from repro.core.lazylsh import _KNN_ABORT, KnnResult, LazyLSH, _lane_result
from repro.core.multiquery import MultiQueryEngine, MultiQueryResult
from repro.errors import (
    DimensionalityMismatchError,
    InvalidParameterError,
)
from repro.storage.io_stats import IOStats
from repro.storage.pages import PageTracker


@dataclass
class BatchKnnResult:
    """Results of a batched kNN call, in query order.

    ``results`` holds one :class:`KnnResult` per query (or one
    :class:`MultiQueryResult` per query when ``metrics`` was given);
    ``io`` aggregates the whole batch's simulated I/O.  Satisfies the
    :class:`~repro.api.SearchResultLike` protocol: ``ids``,
    ``distances`` and ``termination`` expose the per-query parts as
    lists in query order.
    """

    results: list
    io: IOStats = field(default_factory=IOStats)

    @property
    def ids(self) -> list:
        """Per-query neighbour ids, in query order."""
        return [r.ids for r in self.results]

    @property
    def distances(self) -> list:
        """Per-query neighbour distances, in query order."""
        return [r.distances for r in self.results]

    @property
    def termination(self) -> list:
        """Per-query Algorithm-4 termination reasons, in query order."""
        return [r.termination for r in self.results]

    def to_dict(self) -> dict:
        """JSON-serialisable form: per-query records plus the batch I/O."""
        return {
            "io": self.io.to_dict(),
            "results": [r.to_dict() for r in self.results],
        }

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, item: int):
        return self.results[item]

    def __iter__(self) -> Iterator:
        return iter(self.results)


def _check_queries(index: LazyLSH, queries: PointMatrix) -> np.ndarray:
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if queries.ndim != 2:
        raise InvalidParameterError(
            f"queries must be a 2-D (m, d) matrix, got shape {queries.shape}"
        )
    if queries.shape[0] < 1:
        raise InvalidParameterError("queries must contain at least one point")
    if queries.shape[1] != index.dimensionality:
        raise DimensionalityMismatchError(
            f"queries have dimensionality {queries.shape[1]}, index expects "
            f"{index.dimensionality}"
        )
    if not np.all(np.isfinite(queries)):
        raise InvalidParameterError("queries contain non-finite values")
    return queries


def knn_batch(
    index: LazyLSH,
    queries: PointMatrix | SearchRequest,
    k: int | None = None,
    *args,
    p: float | None = None,
    metrics: Sequence[float] | None = None,
    engine: str = "flat",
    share_pages: bool = False,
    telemetry=None,
    cap: float | None = None,
    radius: float | None = None,
) -> BatchKnnResult:
    """Answer ``Np(q, k, c)`` for every row of ``queries`` in one pass.

    Exactly one of ``p`` (one metric per query, default ``1.0``) or
    ``metrics`` (every query answered under all listed metrics, like
    :class:`MultiQueryEngine`) may be given.  ``engine="scalar"`` loops
    the reference path query by query — useful for verification — while
    the default ``"flat"`` plan runs all queries round-synchronised.

    ``queries`` may instead be a :class:`~repro.api.SearchRequest` whose
    ``query`` holds the ``(m, d)`` query matrix; every other argument
    but ``share_pages`` and ``telemetry`` must then be left at its
    default.  Tuning knobs are keyword-only and shared with
    ``LazyLSH.knn``/``MultiQueryEngine.knn``: ``p`` (passing it
    positionally is deprecated), ``metrics``, ``engine``, ``cap``
    (candidate-budget override) and ``radius`` (starting-radius
    override, single-metric only).

    ``telemetry`` (a :class:`repro.obs.Telemetry`) captures one
    :class:`~repro.obs.QueryTrace` per ``(query, metric)`` pair with
    ``query_id`` set to the query's row; ``None`` (the default) runs the
    no-op fast path.
    """
    if isinstance(queries, SearchRequest):
        if k is not None or args or p is not None or metrics is not None:
            raise InvalidParameterError(
                "pass either a SearchRequest or explicit queries/k "
                "arguments, not both"
            )
        if cap is not None or radius is not None:
            raise InvalidParameterError(
                "cap/radius are read from the SearchRequest when one is given"
            )
        request = queries
        queries = request.query
        k = request.k
        metrics = request.metrics
        if metrics is None:
            p = request.p
        engine = request.engine
        cap = request.cap
        radius = request.radius
        request_id = request.request_id
        trace_context = request.trace_context
    else:
        request_id = None
        trace_context = None
        if k is None:
            raise InvalidParameterError(
                "k is required when not passing a SearchRequest"
            )
        if args:
            if len(args) > 1 or p is not None:
                raise TypeError(
                    "knn_batch() accepts at most one legacy positional "
                    "argument (p); tuning arguments are keyword-only"
                )
            warn_positional("knn_batch", "p")
            p = args[0]
    if not index.is_built:
        raise InvalidParameterError("knn_batch needs a built LazyLSH index")
    if engine not in ("flat", "scalar"):
        raise InvalidParameterError(
            f"engine must be 'flat' or 'scalar', got {engine!r}"
        )
    if metrics is not None and p is not None:
        raise InvalidParameterError("pass either p or metrics, not both")
    if metrics is not None and not metrics:
        raise InvalidParameterError("metrics must be non-empty")
    if metrics is not None and radius is not None:
        raise InvalidParameterError(
            "radius override is only supported for single-metric searches"
        )
    if cap is not None and cap < k:
        raise InvalidParameterError(
            f"candidate cap must be >= k={k}, got {cap}"
        )
    if radius is not None and not radius > 0:
        raise InvalidParameterError(
            f"radius override must be > 0, got {radius}"
        )
    if share_pages and engine == "scalar":
        raise InvalidParameterError(
            "share_pages models a batch-wide buffer pool; the scalar loop "
            "runs queries independently and cannot share one"
        )
    queries = _check_queries(index, queries)
    if telemetry is None:
        return _knn_batch_impl(
            index, queries, k, p, metrics, engine, share_pages, None, cap, radius
        )
    ctx = (
        trace_context
        if trace_context is not None and trace_context.sampled
        else None
    )
    with telemetry.tracer.span(
        "knn_batch",
        context=ctx,
        engine=engine,
        k=k,
        queries=int(queries.shape[0]),
    ) as span:
        if request_id is not None:
            span.set(request_id=request_id)
        result = _knn_batch_impl(
            index,
            queries,
            k,
            p,
            metrics,
            engine,
            share_pages,
            telemetry,
            cap,
            radius,
        )
    telemetry.finish_trace(ctx)
    return result


def _knn_batch_impl(
    index: LazyLSH,
    queries: np.ndarray,
    k: int,
    p: float | None,
    metrics: Sequence[float] | None,
    engine: str,
    share_pages: bool,
    telemetry,
    cap: float | None = None,
    radius: float | None = None,
) -> BatchKnnResult:
    if metrics is None:
        p_single = 1.0 if p is None else float(p)
        if engine == "scalar":
            return _scalar_single(
                index, queries, k, p_single, telemetry, cap, radius
            )
        return _flat_single(
            index, queries, k, p_single, share_pages, telemetry, cap, radius
        )
    unique = sorted({float(q) for q in metrics})
    if index.rehashing != "query_centric":
        raise InvalidParameterError(
            "the multi-query engine requires query-centric rehashing"
        )
    if engine == "scalar":
        return _scalar_multi(index, queries, k, unique, telemetry, cap)
    return _flat_multi(index, queries, k, unique, share_pages, telemetry, cap)


def _scalar_single(
    index: LazyLSH,
    queries: np.ndarray,
    k: int,
    p: float,
    telemetry=None,
    cap: float | None = None,
    radius: float | None = None,
) -> BatchKnnResult:
    results = []
    for j in range(queries.shape[0]):
        stats = IOStats()
        result = index._knn_impl(
            queries[j],
            k,
            p,
            stats,
            seen_pages=set(),
            telemetry=telemetry,
            query_id=j,
            cap=cap,
            radius=radius,
        )
        index.io_stats.add_sequential(stats.sequential)
        index.io_stats.add_random(stats.random)
        results.append(result)
    return BatchKnnResult(results=results, io=aggregate_io(results))


def _scalar_multi(
    index: LazyLSH,
    queries: np.ndarray,
    k: int,
    unique: list[float],
    telemetry=None,
    cap: float | None = None,
) -> BatchKnnResult:
    engine = MultiQueryEngine(index)
    results = [
        engine.knn(
            q, k, metrics=unique, engine="scalar", telemetry=telemetry, cap=cap
        )
        for q in queries
    ]
    return BatchKnnResult(results=results, io=aggregate_io(results))


def _flat_single(
    index: LazyLSH,
    queries: np.ndarray,
    k: int,
    p: float,
    share_pages: bool,
    telemetry=None,
    cap: float | None = None,
    radius: float | None = None,
) -> BatchKnnResult:
    bank = index._bank
    assert bank is not None
    hashes = bank.hash_points(queries)  # one matmul for the whole batch
    shared = PageTracker() if share_pages else None
    groups = [
        index._lane_group(
            queries[j],
            k,
            p,
            query_hashes=np.ascontiguousarray(hashes[:, j]),
            shared_pages=shared,
            cap=cap,
            radius=radius,
        )
        for j in range(queries.shape[0])
    ]
    if telemetry is not None:
        for j, group in enumerate(groups):
            lane = group.lanes[0]
            lane.trace = telemetry.query_trace_builder(
                p=lane.p,
                k=k,
                engine="flat",
                rehashing=index.rehashing,
                query_id=j,
            )
    execute_rounds(groups, error=_KNN_ABORT)
    results = []
    for group in groups:
        lane = group.lanes[0]
        results.append(_lane_result(lane))
        if lane.trace is not None:
            results[-1].trace = lane.trace.finish(
                termination=lane.stop_reason,
                io=lane.io,
                candidates=results[-1].candidates,
            )
            telemetry.record(results[-1].trace)
        index.io_stats.add_sequential(lane.io.sequential)
        index.io_stats.add_random(lane.io.random)
    return BatchKnnResult(results=results, io=aggregate_io(results))


def _flat_multi(
    index: LazyLSH,
    queries: np.ndarray,
    k: int,
    unique: list[float],
    share_pages: bool,
    telemetry=None,
    cap: float | None = None,
) -> BatchKnnResult:
    n = index.num_points
    if not 1 <= k <= n:
        raise InvalidParameterError(
            f"k must lie in [1, {n}] for a dataset of {n} live points, got {k}"
        )
    n_rows = index.num_rows
    bank = index._bank
    assert bank is not None
    hashes = bank.hash_points(queries)
    shared = PageTracker() if share_pages else None
    cap_value = k + index.beta * n if cap is None else float(cap)
    groups = []
    for j in range(queries.shape[0]):
        lanes = [
            Lane(q, index.metric_params(q), k, cap_value, n_rows)
            for q in unique
        ]
        if telemetry is not None:
            for lane in lanes:
                lane.trace = telemetry.query_trace_builder(
                    p=lane.p, k=k, engine="flat", rehashing=index.rehashing
                )
        groups.append(
            LaneGroup(
                store=index.store,
                data=index.data,
                alive=index._alive,
                c=index.config.c,
                rehashing=index.rehashing,
                query=queries[j],
                query_hashes=np.ascontiguousarray(hashes[:, j]),
                lanes=lanes,
                style="multi",
                shared_pages=shared,
            )
        )
    execute_rounds(
        groups,
        error="multi-query did not terminate; this indicates a corrupted index",
    )
    results = []
    for group in groups:
        per_metric = {lane.p: _lane_result(lane) for lane in group.lanes}
        if telemetry is not None:
            for lane in group.lanes:
                if lane.trace is not None:
                    per_metric[lane.p].trace = lane.trace.finish(
                        termination=lane.stop_reason,
                        io=lane.io,
                        candidates=per_metric[lane.p].candidates,
                    )
                    telemetry.record(per_metric[lane.p].trace)
        total = aggregate_io(per_metric.values())
        index.io_stats.add_sequential(total.sequential)
        index.io_stats.add_random(total.random)
        results.append(MultiQueryResult(results=per_metric, io=total))
    return BatchKnnResult(results=results, io=aggregate_io(results))
