"""The LazyLSH index: one materialised l1 base index, many ``lp`` metrics.

Public API
----------

.. code-block:: python

    from repro import LazyLSH, LazyLSHConfig

    index = LazyLSH(LazyLSHConfig(c=3.0, p_min=0.5)).build(data)
    result = index.knn(query, k=10, p=0.5)
    result.ids, result.distances, result.io.sequential, result.io.random

``build`` materialises ``eta_{p_min}`` Cauchy hash functions (Sec. 3.3) and
their inverted lists; ``knn`` implements Algorithm 4 (a series of
query-centric range scans with geometrically growing radii and collision
counting) and ``range_query`` implements Algorithm 3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro._typing import IdArray, PointMatrix, PointVector
from repro.api import SearchRequest, SearchResult, warn_positional
from repro.core.config import LazyLSHConfig
from repro.core.engine import (
    TERMINATION_CAP,
    TERMINATION_K_WITHIN,
    Lane,
    LaneGroup,
    execute_rounds,
)
from repro.core.hashing import (
    StableHashBank,
    original_window,
    query_centric_window,
)
from repro.core.params import MetricParams, ParameterEngine
from repro.errors import (
    DimensionalityMismatchError,
    IndexNotBuiltError,
    InvalidParameterError,
    UnsupportedMetricError,
)
from repro.metrics.lp import lp_distance, validate_p
from repro.storage.inverted_index import InvertedListStore
from repro.storage.io_stats import IOStats
from repro.storage.pages import PageLayout

#: Hard cap on rehashing rounds; the level grows by a factor ``c`` per
#: round, so legitimate queries terminate in a few dozen rounds at most.
_MAX_ROUNDS = 128

#: Non-termination diagnostic shared by the scalar and flat kNN paths.
_KNN_ABORT = "knn did not terminate; this indicates a corrupted index"


def _lane_result(lane: Lane) -> "KnnResult":
    """Assemble a :class:`KnnResult` from a finished engine lane.

    Mirrors the tail of the scalar loop exactly: same distance array,
    same ``argsort`` (so ties resolve identically), same bookkeeping.
    """
    cand_ids, cand_dists = lane.candidate_arrays()
    order = np.argsort(cand_dists)[: lane.k]
    return KnnResult(
        ids=cand_ids[order].astype(np.int64),
        distances=cand_dists[order],
        p=lane.p,
        k=lane.k,
        io=lane.io,
        candidates=int(cand_ids.size),
        rounds=lane.rounds,
        termination=lane.stop_reason,
    )


@dataclass
class KnnResult(SearchResult):
    """Outcome of an ``Np(q, k, c)`` query (Definition 5).

    A compatibility subclass of the unified
    :class:`~repro.api.SearchResult` — same fields (``ids`` /
    ``distances`` sorted by ascending ``lp`` distance, ``io``,
    ``termination``, ...), kept under its historical name so existing
    imports and isinstance checks continue to work.
    """


@dataclass
class RangeResult:
    """Outcome of an ``Rp(q, delta, c)`` query (Definition 6)."""

    found: bool
    point_id: int | None
    distance: float | None
    p: float
    delta: float
    io: IOStats = field(default_factory=IOStats)
    candidates: int = 0


class LazyLSH:
    """Single-index approximate kNN across multiple ``lp`` metrics.

    Parameters
    ----------
    config:
        Build/query configuration; defaults to the paper's settings
        (``c = 3``, ``epsilon = 0.01``, supported range ``p in [0.5, 1]``).
    rehashing:
        ``"query_centric"`` (the paper's contribution, Eq. 21) or
        ``"original"`` (C2LSH's aligned virtual rehashing, Eq. 7) — the
        latter exists for the Figure 13 ablation.
    """

    def __init__(
        self,
        config: LazyLSHConfig | None = None,
        *,
        rehashing: str = "query_centric",
    ) -> None:
        if rehashing not in ("query_centric", "original"):
            raise InvalidParameterError(
                f"rehashing must be 'query_centric' or 'original', got {rehashing!r}"
            )
        self.config = config or LazyLSHConfig()
        self.rehashing = rehashing
        self.io_stats = IOStats()
        self._data: PointMatrix | None = None
        self._engine: ParameterEngine | None = None
        self._bank: StableHashBank | None = None
        self._store: InvertedListStore | None = None
        self._beta: float = 0.0
        self._eta: int = 0
        self._alive: np.ndarray = np.zeros(0, dtype=bool)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def build(self, data: PointMatrix) -> "LazyLSH":
        """Materialise the base index over ``data`` (rows are points).

        Computes ``eta_{p_min}`` via the parameter engine, draws that many
        Cauchy hash functions, hashes every point and lays the sorted
        inverted lists out on the simulated disk.
        """
        data = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
        if data.ndim != 2:
            raise InvalidParameterError(
                f"data must be a 2-D (n, d) matrix, got shape {data.shape}"
            )
        n, d = data.shape
        if n < 1:
            raise InvalidParameterError("cannot build an index over zero points")
        if not np.all(np.isfinite(data)):
            raise InvalidParameterError("data contains non-finite values")
        cfg = self.config
        self._beta = cfg.resolve_beta(n)
        self._engine = ParameterEngine(
            d,
            c=cfg.c,
            epsilon=cfg.epsilon,
            beta=self._beta,
            r0=cfg.r0,
            base_p=cfg.base_p,
            mc_samples=cfg.mc_samples,
            mc_buckets=cfg.mc_buckets,
            seed=cfg.seed,
        )
        self._eta = self._engine.eta(cfg.p_min)
        t_max = float(np.abs(data).max())
        self._bank = StableHashBank(
            d,
            self._eta,
            r0=cfg.r0,
            c=cfg.c,
            t_max=max(t_max, 1.0),
            base_p=cfg.base_p,
            seed=cfg.seed,
        )
        hash_values = self._bank.hash_points(data)
        layout = PageLayout(page_size=cfg.page_size, entry_size=cfg.entry_size)
        self._store = InvertedListStore(hash_values, layout)
        self._data = data
        self._alive = np.ones(n, dtype=bool)
        return self

    # ------------------------------------------------------------------
    # Dynamic updates
    # ------------------------------------------------------------------

    def _validate_insert(self, points: PointMatrix) -> np.ndarray:
        """Validate an insert batch without mutating; returns the batch.

        Shared by :meth:`insert` and the durability layer, which must
        reject a bad batch *before* journaling it to the write-ahead log.
        """
        self._require_built()
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.ndim != 2 or points.shape[1] != self.dimensionality:
            raise DimensionalityMismatchError(
                f"points have dimensionality {points.shape[1] if points.ndim == 2 else '?'}, "
                f"index expects {self.dimensionality}"
            )
        if points.shape[0] == 0:
            raise InvalidParameterError("cannot insert an empty batch")
        if not np.all(np.isfinite(points)):
            raise InvalidParameterError("points contain non-finite values")
        return np.ascontiguousarray(points)

    def insert(self, points: PointMatrix) -> IdArray:
        """Insert new points into the built index; returns their ids.

        The single-index design makes this cheap: each point is hashed by
        the materialised bank and merged into every sorted inverted list.
        No per-metric work is needed — the new points are immediately
        visible to queries under every supported ``lp``.
        """
        ids, _plan = self._apply_insert(points)
        return ids

    def _apply_insert(self, points: PointMatrix):
        """Insert and also return the store's placement plan.

        The :class:`~repro.storage.inverted_index.InsertPlan` describes
        exactly where each new entry landed in every sorted run, which is
        what the serve layer ships to shard workers so their copies stay
        bit-identical to a fresh build (DESIGN §11).
        """
        points = self._validate_insert(points)
        assert self._bank is not None and self._store is not None and self._data is not None
        start = self._data.shape[0]
        new_ids = np.arange(start, start + points.shape[0], dtype=np.int64)
        plan = self._store.insert(self._bank.hash_points(points), new_ids)
        self._data = np.vstack([self._data, points])
        self._alive = np.concatenate(
            [self._alive, np.ones(points.shape[0], dtype=bool)]
        )
        return new_ids, plan

    def _validate_remove(self, point_ids) -> IdArray:
        """Validate a removal batch without mutating.

        Returns the deduplicated ids that :meth:`remove` would tombstone.
        All failure modes are checked here, *before* any state changes,
        so a mid-batch validation error leaves the index untouched and
        the durability layer can journal only removals that will apply.
        """
        self._require_built()
        assert self._data is not None
        ids = np.atleast_1d(np.asarray(point_ids, dtype=np.int64))
        if ids.size == 0:
            return ids
        if ids.min() < 0 or ids.max() >= self._data.shape[0]:
            raise InvalidParameterError(
                f"point ids must lie in [0, {self._data.shape[0]}), got "
                f"range [{ids.min()}, {ids.max()}]"
            )
        if not self._alive[ids].all():
            dead = ids[~self._alive[ids]]
            raise InvalidParameterError(
                f"points already removed: {dead[:5].tolist()}"
            )
        unique = np.unique(ids)
        if int(self._alive.sum()) - unique.size < 1:
            raise InvalidParameterError(
                "cannot remove the last remaining point of an index"
            )
        return unique

    def remove(self, point_ids) -> None:
        """Remove points by id (tombstoning).

        Removed entries stay in the inverted lists — and keep costing
        sequential I/O — until the index is rebuilt, exactly like a
        deferred-compaction disk index; queries simply never promote them
        to candidates.  Validation happens entirely before mutation, so a
        failed batch never leaves partial tombstones behind.
        """
        unique = self._validate_remove(point_ids)
        if unique.size == 0:
            return
        self._alive[unique] = False

    def compact(self) -> np.ndarray:
        """Rebuild the inverted lists without tombstoned rows.

        Removed points stop costing storage and sequential I/O, and ids
        are renumbered densely.  Returns the mapping ``old_id ->
        new_id`` (``-1`` for removed rows) so callers can translate ids
        they hold.  The hash bank is untouched, so surviving points keep
        their exact bucket assignments.
        """
        self._require_built()
        assert self._bank is not None and self._data is not None
        cfg = self.config
        mapping = np.full(self._data.shape[0], -1, dtype=np.int64)
        survivors = np.flatnonzero(self._alive)
        mapping[survivors] = np.arange(survivors.size)
        if survivors.size == self._data.shape[0]:
            return mapping  # nothing to reclaim
        self._data = np.ascontiguousarray(self._data[survivors])
        self._alive = np.ones(survivors.size, dtype=bool)
        layout = PageLayout(page_size=cfg.page_size, entry_size=cfg.entry_size)
        self._store = InvertedListStore(self._bank.hash_points(self._data), layout)
        return mapping

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._data is not None

    def _require_built(self) -> None:
        if not self.is_built:
            raise IndexNotBuiltError("call build(data) before querying")

    @property
    def num_points(self) -> int:
        """Number of live (non-removed) indexed points."""
        self._require_built()
        return int(self._alive.sum())

    @property
    def num_rows(self) -> int:
        """Total stored rows, including tombstoned (removed) points."""
        self._require_built()
        assert self._data is not None
        return self._data.shape[0]

    @property
    def dimensionality(self) -> int:
        """Dimensionality of the indexed dataset."""
        self._require_built()
        assert self._data is not None
        return self._data.shape[1]

    @property
    def eta(self) -> int:
        """Number of materialised base hash functions (``eta_{p_min}``)."""
        self._require_built()
        return self._eta

    @property
    def beta(self) -> float:
        """Resolved false-positive rate (property P2')."""
        self._require_built()
        return self._beta

    @property
    def parameter_engine(self) -> ParameterEngine:
        """The engine computing ``(r_hat, p1', p2', eta, theta)`` per metric."""
        self._require_built()
        assert self._engine is not None
        return self._engine

    @property
    def store(self) -> InvertedListStore:
        """The simulated-disk inverted lists (for benches and tests)."""
        self._require_built()
        assert self._store is not None
        return self._store

    @property
    def data(self) -> PointMatrix:
        """The indexed points (read-only by convention)."""
        self._require_built()
        assert self._data is not None
        return self._data

    def index_size_mb(self) -> float:
        """Simulated on-disk index size in MB."""
        self._require_built()
        assert self._store is not None
        return self._store.size_mb()

    def storage_info(self) -> dict:
        """Open-mode and memory accounting for the whole index.

        Extends :meth:`InvertedListStore.storage_info` with the data
        matrix and tombstone mask, so health endpoints and the metrics
        exporter can report how many bytes are resident RAM versus
        lazily paged file mappings (the mmap backend's whole point).
        """
        self._require_built()
        assert self._store is not None
        info = self._store.storage_info()
        for arr in (self._data, self._alive):
            if isinstance(arr, np.memmap):
                info["mapped_bytes"] += int(arr.nbytes)
            elif arr is not None:
                info["resident_bytes"] += int(arr.nbytes)
        return info

    def mapped_regions(self) -> dict[str, np.ndarray]:
        """File-backed regions of the open index, labelled for probes.

        Empty on the eager backend.  The ops plane feeds these buffers
        to ``mincore(2)`` for per-store page-cache residency gauges.
        """
        self._require_built()
        assert self._store is not None
        regions: dict[str, np.ndarray] = dict(self._store.mapped_arrays())
        if isinstance(self._data, np.memmap):
            regions["data"] = self._data
        if isinstance(self._alive, np.memmap):
            regions["alive"] = self._alive
        return regions

    def metric_params(self, p: float) -> MetricParams:
        """Per-metric parameters, validated against the materialised bank.

        Raises :class:`UnsupportedMetricError` when the metric needs more
        hash functions than were materialised (``eta_p > eta_{p_min}``) or
        is not locality-sensitive at all.
        """
        self._require_built()
        assert self._engine is not None
        params = self._engine.metric_params(p)
        if params.eta > self._eta:
            raise UnsupportedMetricError(
                f"l{p:g} needs eta={params.eta} hash functions but only "
                f"{self._eta} were materialised (p_min={self.config.p_min}); "
                "rebuild with a smaller p_min"
            )
        return params

    def supported_metrics(self, p_grid: np.ndarray | None = None) -> list[float]:
        """The metrics on ``p_grid`` this built index can serve."""
        self._require_built()
        if p_grid is None:
            p_grid = np.arange(0.5, 1.21, 0.05)
        supported = []
        for p in p_grid:
            try:
                self.metric_params(float(p))
            except UnsupportedMetricError:
                continue
            supported.append(round(float(p), 10))
        return supported

    # ------------------------------------------------------------------
    # Window helpers
    # ------------------------------------------------------------------

    def _window(self, hq: int, level: float) -> tuple[int, int]:
        if self.rehashing == "query_centric":
            return query_centric_window(hq, level)
        return original_window(hq, level)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _check_query(self, query: PointVector) -> PointVector:
        self._require_built()
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1:
            raise InvalidParameterError(
                f"query must be a single vector, got shape {query.shape}"
            )
        if query.shape[0] != self.dimensionality:
            raise DimensionalityMismatchError(
                f"query has dimensionality {query.shape[0]}, index expects "
                f"{self.dimensionality}"
            )
        if not np.all(np.isfinite(query)):
            raise InvalidParameterError("query contains non-finite values")
        return query

    def range_query(self, query: PointVector, delta: float, p: float = 1.0) -> RangeResult:
        """Answer ``Rp(q, delta, c)`` (Algorithm 3).

        Returns the first point found within ``c * delta`` of ``query`` in
        the ``lp`` space, or a not-found result once ``beta * n`` candidates
        have been inspected without success.
        """
        query = self._check_query(query)
        p = validate_p(p)
        if delta <= 0:
            raise InvalidParameterError(f"range radius must be > 0, got {delta}")
        params = self.metric_params(p)
        assert self._bank is not None and self._store is not None and self._data is not None
        stats = IOStats()
        n = self.num_points
        n_rows = self.num_rows
        cap = self._beta * n
        level = params.r_hat * delta
        theta = params.theta
        counts = np.zeros(n_rows, dtype=np.int32)
        is_candidate = np.zeros(n_rows, dtype=bool)
        candidates = 0
        query_hashes = self._bank.hash_point(query)
        c_delta = self.config.c * delta
        outcome: RangeResult | None = None
        for i in range(params.eta):
            lo, hi = self._window(int(query_hashes[i]), level)
            ids = self._store.read_window(i, lo, hi, stats)
            if ids.size == 0:
                continue
            counts[ids] += 1
            crossed = ids[
                (counts[ids] > theta) & ~is_candidate[ids] & self._alive[ids]
            ]
            if crossed.size == 0:
                continue
            is_candidate[crossed] = True
            stats.add_random(int(crossed.size))
            candidates += int(crossed.size)
            dists = lp_distance(self._data[crossed], query, p)
            hit = np.flatnonzero(dists < c_delta)
            if hit.size > 0:
                best = int(hit[np.argmin(dists[hit])])
                outcome = RangeResult(
                    found=True,
                    point_id=int(crossed[best]),
                    distance=float(dists[best]),
                    p=p,
                    delta=delta,
                    io=stats,
                    candidates=candidates,
                )
                break
            if candidates > cap:
                break
        if outcome is None:
            outcome = RangeResult(
                found=False,
                point_id=None,
                distance=None,
                p=p,
                delta=delta,
                io=stats,
                candidates=candidates,
            )
        self.io_stats.add_sequential(stats.sequential)
        self.io_stats.add_random(stats.random)
        return outcome

    def knn(
        self,
        query: PointVector | SearchRequest,
        k: int | None = None,
        *args,
        p: float = 1.0,
        engine: str = "flat",
        telemetry=None,
        cap: float | None = None,
        radius: float | None = None,
    ) -> KnnResult:
        """Answer ``Np(q, k, c)`` (Algorithm 4).

        Runs range scans with geometrically increasing radii, counting
        collisions under the first ``eta_p`` materialised hash functions.
        A point becomes a *candidate* — and costs one random I/O to fetch —
        once its collision count exceeds ``theta_p``.  The query stops when
        ``k`` candidates lie within ``c * delta`` of the query or when the
        candidate budget ``k + beta * n`` is exhausted, and returns the
        ``k`` candidates with the smallest true ``lp`` distances.

        The first argument may instead be a fully-specified
        :class:`~repro.api.SearchRequest`, in which case every other
        argument but ``telemetry`` must be left at its default.  Tuning
        knobs are keyword-only and shared verbatim with
        ``MultiQueryEngine.knn`` and ``knn_batch``:

        * ``p`` — the ``lp`` metric (passing it positionally is
          deprecated);
        * ``engine`` — ``"flat"`` (vectorised, default) or ``"scalar"``
          (reference loop); both are bit-identical in results and I/O;
        * ``cap`` — candidate-budget override (default ``k + beta * n``);
        * ``radius`` — starting-radius (``delta_0``) override (default
          ``1 / r_hat``);
        * ``telemetry`` — a :class:`repro.obs.Telemetry` capturing one
          structured :class:`~repro.obs.QueryTrace` per call; ``None``
          (the default) runs the no-op fast path.
        """
        request_id: str | None = None
        trace_context = None
        deadline_ms: float | None = None
        if isinstance(query, SearchRequest):
            if k is not None or args:
                raise InvalidParameterError(
                    "pass either a SearchRequest or explicit query/k "
                    "arguments, not both"
                )
            request = query
            if request.metrics is not None:
                raise InvalidParameterError(
                    "LazyLSH.knn answers a single metric; use "
                    "MultiQueryEngine.knn or knn_batch(metrics=...) for a "
                    "metrics list"
                )
            query = request.query
            k = request.k
            p = request.p
            engine = request.engine
            cap = request.cap
            radius = request.radius
            request_id = request.request_id
            trace_context = request.trace_context
            deadline_ms = request.deadline_ms
        else:
            if k is None:
                raise InvalidParameterError(
                    "k is required when not passing a SearchRequest"
                )
            if args:
                if len(args) > 1:
                    raise TypeError(
                        "knn() accepts at most one legacy positional "
                        "argument (p); tuning arguments are keyword-only"
                    )
                warn_positional("LazyLSH.knn", "p")
                p = args[0]
        if engine not in ("flat", "scalar"):
            raise InvalidParameterError(
                f"engine must be 'flat' or 'scalar', got {engine!r}"
            )
        if cap is not None and cap < k:
            raise InvalidParameterError(
                f"candidate cap must be >= k={k}, got {cap}"
            )
        if radius is not None and not radius > 0:
            raise InvalidParameterError(
                f"radius override must be > 0, got {radius}"
            )
        # ``trace_context`` was coerced to a TraceContext by the
        # SearchRequest; the sampled flag is the span-recording gate.
        # (Checked inline: importing repro.obs here would cycle through
        # the baselines package init.)
        ctx = (
            trace_context
            if trace_context is not None and trace_context.sampled
            else None
        )
        start = time.perf_counter() if deadline_ms is not None else 0.0
        if telemetry is None:
            result = self._knn_dispatch(query, k, p, engine, None, cap, radius)
        else:
            with telemetry.tracer.span(
                "lazylsh.knn", context=ctx, engine=engine, k=k
            ) as span:
                if request_id is not None:
                    span.set(request_id=request_id)
                result = self._knn_dispatch(
                    query, k, p, engine, telemetry, cap, radius
                )
            telemetry.finish_trace(ctx)
        if request_id is not None:
            result.request_id = request_id
        if ctx is not None:
            result.trace_id = ctx.trace_id
        if deadline_ms is not None:
            elapsed = time.perf_counter() - start
            if elapsed * 1000.0 > deadline_ms:
                result.deadline_exceeded = True
                if telemetry is not None:
                    telemetry.note_deadline_overrun(
                        deadline_ms=deadline_ms,
                        elapsed_seconds=elapsed,
                        where="lazylsh.knn",
                        request_id=request_id,
                    )
        return result

    def _knn_dispatch(
        self,
        query: PointVector,
        k: int,
        p: float,
        engine: str,
        telemetry,
        cap: float | None = None,
        radius: float | None = None,
    ) -> KnnResult:
        if engine == "scalar":
            query = self._check_query(query)
            stats = IOStats()
            # A fresh per-query page cache: pages re-touched by successive
            # rehashing rounds (ring boundaries) stay in the buffer pool
            # for the duration of one query and are charged once.
            result = self._knn_impl(
                query,
                k,
                p,
                stats,
                seen_pages=set(),
                telemetry=telemetry,
                cap=cap,
                radius=radius,
            )
            self.io_stats.add_sequential(stats.sequential)
            self.io_stats.add_random(stats.random)
            return result
        group = self._lane_group(
            self._check_query(query), k, p, cap=cap, radius=radius
        )
        lane = group.lanes[0]
        if telemetry is not None:
            lane.trace = telemetry.query_trace_builder(
                p=lane.p, k=k, engine="flat", rehashing=self.rehashing
            )
        execute_rounds([group], error=_KNN_ABORT)
        result = _lane_result(lane)
        if lane.trace is not None:
            result.trace = lane.trace.finish(
                termination=lane.stop_reason,
                io=lane.io,
                candidates=result.candidates,
            )
            telemetry.record(result.trace)
        self.io_stats.add_sequential(lane.io.sequential)
        self.io_stats.add_random(lane.io.random)
        return result

    def _lane_group(
        self,
        query: PointVector,
        k: int,
        p: float,
        *,
        query_hashes: np.ndarray | None = None,
        shared_pages=None,
        cap: float | None = None,
        radius: float | None = None,
    ) -> LaneGroup:
        """Build the flat-engine lane group for one ``(query, p)`` pair.

        ``query`` must already be validated; parameter checks run in the
        same order as the scalar loop so error behaviour is unchanged.
        ``query_hashes`` lets batched callers reuse a single hashing
        matmul over all query points; ``cap``/``radius`` override the
        candidate budget and starting radius (``None`` keeps the paper's
        ``k + beta * n`` and ``1 / r_hat``).
        """
        p = validate_p(p)
        n = self.num_points
        if not 1 <= k <= n:
            raise InvalidParameterError(
                f"k must lie in [1, {n}] for a dataset of {n} live points, got {k}"
            )
        params = self.metric_params(p)
        assert self._bank is not None and self._store is not None and self._data is not None
        cap_value = k + self._beta * n if cap is None else float(cap)
        lane = Lane(p, params, k, cap_value, self.num_rows)
        if radius is not None:
            lane.delta = float(radius)
        if query_hashes is None:
            query_hashes = self._bank.hash_point(query)
        return LaneGroup(
            store=self._store,
            data=self._data,
            alive=self._alive,
            c=self.config.c,
            rehashing=self.rehashing,
            query=query,
            query_hashes=query_hashes,
            lanes=[lane],
            style="single",
            shared_pages=shared_pages,
        )

    def _knn_impl(
        self,
        query: PointVector,
        k: int,
        p: float,
        stats: IOStats,
        *,
        seen_pages: set[tuple[int, int]] | None = None,
        fetched: np.ndarray | None = None,
        telemetry=None,
        query_id: int | None = None,
        cap: float | None = None,
        radius: float | None = None,
    ) -> KnnResult:
        """Algorithm 4 body, shareable by the multi-query engine.

        ``seen_pages``/``fetched`` let a batch of queries over several
        metrics share sequential page reads and candidate fetches
        (Section 4.3); plain ``knn`` passes neither.  ``cap``/``radius``
        override the candidate budget and starting radius.
        """
        p = validate_p(p)
        n = self.num_points
        n_rows = self.num_rows
        if not 1 <= k <= n:
            raise InvalidParameterError(
                f"k must lie in [1, {n}] for a dataset of {n} live points, got {k}"
            )
        params = self.metric_params(p)
        assert self._bank is not None and self._store is not None and self._data is not None
        trace = None
        if telemetry is not None:
            trace = telemetry.query_trace_builder(
                p=p,
                k=k,
                engine="scalar",
                rehashing=self.rehashing,
                query_id=query_id,
            )
        theta = params.theta
        cap = k + self._beta * n if cap is None else float(cap)
        counts = np.zeros(n_rows, dtype=np.int32)
        is_candidate = np.zeros(n_rows, dtype=bool)
        cand_ids: list[int] = []
        cand_dists: list[float] = []
        query_hashes = self._bank.hash_point(query)
        prev_windows: list[tuple[int, int]] | None = None
        delta = 1.0 / params.r_hat if radius is None else float(radius)
        rounds = 0
        done = False
        reason = ""
        while not done:
            rounds += 1
            if rounds > _MAX_ROUNDS:
                raise RuntimeError(_KNN_ABORT)
            level = params.r_hat * delta
            c_delta = self.config.c * delta
            if trace is not None:
                trace.begin_round(level=level, radius=c_delta, io=stats)
            windows: list[tuple[int, int]] = []
            for i in range(params.eta):
                lo, hi = self._window(int(query_hashes[i]), level)
                windows.append((lo, hi))
                if prev_windows is None:
                    ids = self._store.read_window(i, lo, hi, stats, seen_pages)
                else:
                    plo, phi = prev_windows[i]
                    if lo <= plo and phi <= hi:
                        ids = self._store.read_ring(
                            i, lo, hi, plo, phi, stats, seen_pages
                        )
                    else:
                        # Windows failed to nest (possible under the
                        # "original" rehashing ablation); re-scan fully.
                        ids = self._store.read_window(i, lo, hi, stats, seen_pages)
                if ids.size > 0:
                    if trace is not None:
                        trace.add_collisions(int(ids.size))
                    counts[ids] += 1
                    crossed = ids[
                        (counts[ids] > theta)
                        & ~is_candidate[ids]
                        & self._alive[ids]
                    ]
                    if crossed.size > 0:
                        is_candidate[crossed] = True
                        if trace is not None:
                            trace.add_crossings(int(crossed.size))
                        if fetched is None:
                            stats.add_random(int(crossed.size))
                        else:
                            fresh = crossed[~fetched[crossed]]
                            fetched[crossed] = True
                            stats.add_random(int(fresh.size))
                        dists = lp_distance(self._data[crossed], query, p)
                        cand_ids.extend(int(x) for x in crossed)
                        cand_dists.extend(float(x) for x in dists)
                # Termination checks (Algorithm 4 lines 15-16).
                if len(cand_ids) >= k:
                    dist_arr = np.asarray(cand_dists)
                    if np.count_nonzero(dist_arr < c_delta) >= k:
                        done = True
                        reason = TERMINATION_K_WITHIN
                        break
                if len(cand_ids) > cap:
                    done = True
                    reason = TERMINATION_CAP
                    break
            if trace is not None:
                dist_arr = np.asarray(cand_dists, dtype=np.float64)
                trace.end_round(
                    io=stats,
                    candidates=len(cand_ids),
                    within=int(np.count_nonzero(dist_arr < c_delta)),
                )
            prev_windows = windows
            delta *= self.config.c
        order = np.argsort(np.asarray(cand_dists))[:k]
        ids = np.asarray(cand_ids, dtype=np.int64)[order]
        dists = np.asarray(cand_dists, dtype=np.float64)[order]
        finished = None
        if trace is not None:
            finished = trace.finish(
                termination=reason, io=stats, candidates=len(cand_ids)
            )
            telemetry.record(finished)
        return KnnResult(
            ids=ids,
            distances=dists,
            p=p,
            k=k,
            io=stats,
            candidates=len(cand_ids),
            rounds=rounds,
            termination=reason,
            trace=finished,
        )
