"""Multi-query optimisation (Section 4.3).

When the same query point is asked for kNNs under several ``lp`` metrics —
the workflow behind Table 1's "pick the best ``p`` for this dataset" — the
bucket windows probed by the individual queries coincide *exactly*: at
round ``j`` of Algorithm 4 every metric searches the window of level
``c^j`` base buckets (the metric-specific radius ``r_hat`` cancels out of
``level = r_hat * delta_j`` because the start radius is ``delta_0 =
1/r_hat``).  Metrics differ only in how many hash functions they consult
(``eta_p``), their collision thresholds (``theta_p``) and when they
terminate.

The engine therefore runs the batch **level-synchronised**: one shared
pass over rounds and hash functions reads every inverted-list ring once,
feeds the resulting ids to each still-active metric's collision counter,
and lets each metric terminate on its own schedule.  Consequences, as the
paper reports (Figure 12):

* sequential I/O ~ that of the single smallest-``p`` query (one shared
  scan; pages are charged once via a shared buffer-pool set),
* a few extra random I/Os for candidates unique to individual metrics
  (an object is fetched once, then re-ranked under every metric in CPU),
* per-metric results identical to running the queries one by one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro._typing import PointVector
from repro.api import SearchRequest, warn_deprecated, warn_positional
from repro.core.engine import (
    TERMINATION_CAP,
    TERMINATION_K_WITHIN,
    Lane,
    LaneGroup,
    execute_rounds,
)
from repro.core.lazylsh import KnnResult, LazyLSH, _lane_result
from repro.core.params import MetricParams
from repro.errors import InvalidParameterError
from repro.metrics.lp import lp_distance
from repro.storage.io_stats import IOStats

_MAX_ROUNDS = 128


@dataclass
class MultiQueryResult:
    """Batched kNN results for one query point under several metrics.

    Satisfies the :class:`~repro.api.SearchResultLike` protocol: ``ids``,
    ``distances`` and ``termination`` expose the per-metric parts keyed
    by ``p``, ``io`` the batch's aggregated simulated I/O.
    """

    results: dict[float, KnnResult]
    io: IOStats = field(default_factory=IOStats)

    @property
    def metrics(self) -> list[float]:
        """The metrics answered, in ascending order of ``p``."""
        return list(self.results)

    @property
    def ids(self) -> dict[float, np.ndarray]:
        """Per-metric neighbour ids, keyed by ``p``."""
        return {p: r.ids for p, r in self.results.items()}

    @property
    def distances(self) -> dict[float, np.ndarray]:
        """Per-metric neighbour distances, keyed by ``p``."""
        return {p: r.distances for p, r in self.results.items()}

    @property
    def termination(self) -> dict[float, str]:
        """Per-metric Algorithm-4 termination reasons, keyed by ``p``."""
        return {p: r.termination for p, r in self.results.items()}

    def to_dict(self) -> dict:
        """JSON-serialisable form (metric keys formatted with ``%g``)."""
        return {
            "metrics": self.metrics,
            "io": self.io.to_dict(),
            "results": {f"{p:g}": r.to_dict() for p, r in self.results.items()},
        }

    def __getitem__(self, p: float) -> KnnResult:
        return self.results[p]


class _MetricState:
    """Per-metric Algorithm-4 state inside the shared batch loop."""

    def __init__(self, p: float, params: MetricParams, n: int, k: int, cap: float) -> None:
        self.p = p
        self.params = params
        self.k = k
        self.cap = cap
        self.counts = np.zeros(n, dtype=np.int32)
        self.is_candidate = np.zeros(n, dtype=bool)
        self.cand_ids: list[int] = []
        self.cand_dists: list[float] = []
        self.active = True
        self.rounds = 0
        self.io = IOStats()
        self.reason = ""
        self.trace = None

    def delta_at_round(self, round_index: int, c: float) -> float:
        """The metric's search radius at round ``j``: ``c^j / r_hat``."""
        return c**round_index / self.params.r_hat

    def finish(self) -> KnnResult:
        order = np.argsort(np.asarray(self.cand_dists))[: self.k]
        ids = np.asarray(self.cand_ids, dtype=np.int64)[order]
        dists = np.asarray(self.cand_dists, dtype=np.float64)[order]
        return KnnResult(
            ids=ids,
            distances=dists,
            p=self.p,
            k=self.k,
            io=self.io,
            candidates=len(self.cand_ids),
            rounds=self.rounds,
            termination=self.reason,
        )


class MultiQueryEngine:
    """Answers one query point under many ``lp`` metrics, sharing I/O
    and the underlying index scan (Section 4.3).

    Parameters
    ----------
    index:
        A built :class:`~repro.core.lazylsh.LazyLSH` index using
        query-centric rehashing (the shared scan relies on every metric's
        round-``j`` window being the same ``c^j``-bucket window).
    """

    def __init__(self, index: LazyLSH) -> None:
        if not index.is_built:
            raise InvalidParameterError("MultiQueryEngine needs a built LazyLSH index")
        if index.rehashing != "query_centric":
            raise InvalidParameterError(
                "the multi-query engine requires query-centric rehashing"
            )
        self.index = index

    def knn(
        self,
        query: PointVector | SearchRequest,
        k: int | None = None,
        *args,
        metrics: Sequence[float] | None = None,
        p_values: Sequence[float] | None = None,
        engine: str = "flat",
        telemetry=None,
        cap: float | None = None,
    ) -> MultiQueryResult:
        """kNN of ``query`` under every metric in ``metrics``.

        Results are identical to issuing the queries one at a time; the
        I/O and CPU of the index scan are paid once.  Each per-metric
        :class:`KnnResult` carries its *marginal* I/O (sequential reads
        are attributed to the smallest-``p`` active metric consuming
        them); the batch total is in :attr:`MultiQueryResult.io`.

        The first argument may instead be a
        :class:`~repro.api.SearchRequest` (its ``metrics`` tuple — or
        single ``p`` — is answered); every other argument but
        ``telemetry`` must then be left at its default.  Tuning knobs
        are keyword-only and shared with ``LazyLSH.knn``/``knn_batch``:
        ``metrics`` (passing it positionally, or via the old ``p_values``
        name, is deprecated), ``engine`` (``"flat"`` or ``"scalar"``,
        bit-identical), ``cap`` (candidate-budget override, applied to
        every metric) and ``telemetry`` (one
        :class:`~repro.obs.QueryTrace` per metric).
        """
        if isinstance(query, SearchRequest):
            if k is not None or args or metrics is not None or p_values is not None:
                raise InvalidParameterError(
                    "pass either a SearchRequest or explicit query/k "
                    "arguments, not both"
                )
            request = query
            if request.radius is not None:
                raise InvalidParameterError(
                    "radius overrides are not supported by the multi-query "
                    "engine (the shared scan requires delta_0 = 1 / r_hat)"
                )
            query = request.query
            k = request.k
            metrics = (
                request.metrics if request.metrics is not None else (request.p,)
            )
            engine = request.engine
            cap = request.cap
            request_id = request.request_id
            trace_context = request.trace_context
        else:
            request_id = None
            trace_context = None
            if k is None:
                raise InvalidParameterError(
                    "k is required when not passing a SearchRequest"
                )
            if args:
                if len(args) > 1 or metrics is not None or p_values is not None:
                    raise TypeError(
                        "knn() accepts at most one legacy positional "
                        "argument (the metrics list); tuning arguments "
                        "are keyword-only"
                    )
                warn_positional("MultiQueryEngine.knn", "metrics")
                metrics = args[0]
            elif p_values is not None:
                if metrics is not None:
                    raise InvalidParameterError(
                        "pass either metrics or p_values, not both"
                    )
                warn_deprecated(
                    "the p_values argument of MultiQueryEngine.knn is "
                    "deprecated; use metrics=...",
                    stacklevel=2,
                )
                metrics = p_values
        if engine not in ("flat", "scalar"):
            raise InvalidParameterError(
                f"engine must be 'flat' or 'scalar', got {engine!r}"
            )
        if not metrics:
            raise InvalidParameterError("metrics must be non-empty")
        if cap is not None and cap < k:
            raise InvalidParameterError(
                f"candidate cap must be >= k={k}, got {cap}"
            )
        if telemetry is not None:
            ctx = (
                trace_context
                if trace_context is not None and trace_context.sampled
                else None
            )
            with telemetry.tracer.span(
                "multiquery.knn",
                context=ctx,
                engine=engine,
                k=k,
                metrics=len(metrics),
            ) as span:
                if request_id is not None:
                    span.set(request_id=request_id)
                result = self._knn_impl(
                    query, k, metrics, engine, telemetry, cap
                )
            telemetry.finish_trace(ctx)
            return result
        return self._knn_impl(query, k, metrics, engine, None, cap)

    def _knn_impl(
        self,
        query: PointVector,
        k: int,
        p_values: Sequence[float],
        engine: str,
        telemetry,
        cap: float | None = None,
    ) -> MultiQueryResult:
        unique = sorted({float(p) for p in p_values})
        index = self.index
        n = index.num_points
        n_rows = index.num_rows
        if not 1 <= k <= n:
            raise InvalidParameterError(
                f"k must lie in [1, {n}] for a dataset of {n} live points, got {k}"
            )
        query = np.asarray(query, dtype=np.float64)
        cap_value = k + index.beta * n if cap is None else float(cap)
        if engine == "flat":
            return self._knn_flat(query, k, unique, telemetry, cap_value)
        # Validate every metric up front so no partial work is wasted.
        states = [
            _MetricState(
                p,
                index.metric_params(p),
                n_rows,
                k,
                cap_value,
            )
            for p in unique
        ]
        if telemetry is not None:
            for state in states:
                state.trace = telemetry.query_trace_builder(
                    p=state.p, k=k, engine="scalar", rehashing=index.rehashing
                )
        c = index.config.c
        data = index.data
        store = index.store
        bank = index._bank
        assert bank is not None
        query_hashes = bank.hash_point(query)
        eta_max = max(state.params.eta for state in states)
        seen_pages: set[tuple[int, int]] = set()
        fetched = np.zeros(n_rows, dtype=bool)
        alive = index._alive
        # Distances of fetched objects, computed lazily per metric.
        prev_half: int | None = None
        round_index = -1
        while any(state.active for state in states):
            round_index += 1
            if round_index >= _MAX_ROUNDS:
                raise RuntimeError(
                    "multi-query did not terminate; this indicates a corrupted index"
                )
            level = c**round_index
            half = int(np.floor(level / 2.0))
            rounders = [state for state in states if state.active]
            for state in rounders:
                state.rounds += 1
            deltas = [state.delta_at_round(round_index, c) for state in states]
            for si, state in enumerate(states):
                if state.active and state.trace is not None:
                    state.trace.begin_round(
                        level=level, radius=c * deltas[si], io=state.io
                    )
            for i in range(eta_max):
                consumers = [
                    state
                    for state in states
                    if state.active and i < state.params.eta
                ]
                if not consumers:
                    continue
                hq = int(query_hashes[i])
                # One shared ring read, charged to the smallest-p consumer.
                reader_io = consumers[0].io
                if prev_half is None:
                    ids = store.read_window(
                        i, hq - half, hq + half, reader_io, seen_pages
                    )
                else:
                    ids = store.read_ring(
                        i,
                        hq - half,
                        hq + half,
                        hq - prev_half,
                        hq + prev_half,
                        reader_io,
                        seen_pages,
                    )
                for si, state in enumerate(states):
                    if not state.active or i >= state.params.eta:
                        continue
                    if ids.size > 0:
                        if state.trace is not None:
                            state.trace.add_collisions(int(ids.size))
                        state.counts[ids] += 1
                        crossed = ids[
                            (state.counts[ids] > state.params.theta)
                            & ~state.is_candidate[ids]
                            & alive[ids]
                        ]
                        if crossed.size > 0:
                            state.is_candidate[crossed] = True
                            if state.trace is not None:
                                state.trace.add_crossings(int(crossed.size))
                            fresh = crossed[~fetched[crossed]]
                            fetched[crossed] = True
                            state.io.add_random(int(fresh.size))
                            dists = lp_distance(data[crossed], query, state.p)
                            state.cand_ids.extend(int(x) for x in crossed)
                            state.cand_dists.extend(float(x) for x in dists)
                    # Termination checks (Algorithm 4 lines 15-16).
                    if len(state.cand_ids) >= k:
                        dist_arr = np.asarray(state.cand_dists)
                        if np.count_nonzero(dist_arr < c * deltas[si]) >= k:
                            state.active = False
                            state.reason = TERMINATION_K_WITHIN
                            continue
                    if len(state.cand_ids) > state.cap:
                        state.active = False
                        state.reason = TERMINATION_CAP
            for si, state in enumerate(states):
                if state.trace is not None and state in rounders:
                    dist_arr = np.asarray(state.cand_dists, dtype=np.float64)
                    state.trace.end_round(
                        io=state.io,
                        candidates=len(state.cand_ids),
                        within=int(
                            np.count_nonzero(dist_arr < c * deltas[si])
                        ),
                    )
            prev_half = half
        total = IOStats()
        results: dict[float, KnnResult] = {}
        for state in states:
            results[state.p] = state.finish()
            if state.trace is not None:
                results[state.p].trace = state.trace.finish(
                    termination=state.reason,
                    io=state.io,
                    candidates=len(state.cand_ids),
                )
                telemetry.record(results[state.p].trace)
            total.add_sequential(state.io.sequential)
            total.add_random(state.io.random)
        self.index.io_stats.add_sequential(total.sequential)
        self.index.io_stats.add_random(total.random)
        return MultiQueryResult(results=results, io=total)

    def _knn_flat(
        self,
        query: np.ndarray,
        k: int,
        unique: list[float],
        telemetry=None,
        cap: float | None = None,
    ) -> MultiQueryResult:
        """Flat-engine execution of the level-synchronised batch loop.

        One :class:`~repro.core.engine.LaneGroup` holds a lane per
        metric; the engine replays the scalar loop's shared scans,
        smallest-``p`` sequential attribution and fetched-object dedup.
        """
        index = self.index
        n = index.num_points
        n_rows = index.num_rows
        cap_value = k + index.beta * n if cap is None else float(cap)
        lanes = [
            Lane(p, index.metric_params(p), k, cap_value, n_rows)
            for p in unique
        ]
        if telemetry is not None:
            for lane in lanes:
                lane.trace = telemetry.query_trace_builder(
                    p=lane.p, k=k, engine="flat", rehashing=index.rehashing
                )
        bank = index._bank
        assert bank is not None
        group = LaneGroup(
            store=index.store,
            data=index.data,
            alive=index._alive,
            c=index.config.c,
            rehashing=index.rehashing,
            query=query,
            query_hashes=bank.hash_point(query),
            lanes=lanes,
            style="multi",
        )
        execute_rounds(
            [group],
            error="multi-query did not terminate; this indicates a corrupted index",
        )
        total = IOStats()
        results: dict[float, KnnResult] = {}
        for lane in lanes:
            results[lane.p] = _lane_result(lane)
            if lane.trace is not None:
                results[lane.p].trace = lane.trace.finish(
                    termination=lane.stop_reason,
                    io=lane.io,
                    candidates=results[lane.p].candidates,
                )
                telemetry.record(results[lane.p].trace)
            total.add_sequential(lane.io.sequential)
            total.add_random(lane.io.random)
        index.io_stats.add_sequential(total.sequential)
        index.io_stats.add_random(total.random)
        return MultiQueryResult(results=results, io=total)
