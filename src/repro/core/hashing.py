"""The materialised base hash family and rehashing window arithmetic.

Base hash functions (Eq. 10) follow C2LSH's construction:

.. math::

    h^*_i(v) = \\Big\\lfloor \\frac{a_i \\cdot v + b^*_i}{r_0} \\Big\\rfloor

where each coordinate of ``a_i`` is drawn from the base space's stable
distribution (Cauchy for the l1 base index, Gaussian for the Appendix C l2
variant) and the offset ``b^*_i`` is uniform over ``[0, c^{ceil(log_c(t d))}
* r0)`` with ``t`` the largest coordinate value — wide enough that virtual
rehashing at every radius the query loop can reach behaves like a fresh
uniform offset.

Two rehashing schemes map a search level onto a window of base buckets:

* **query-centric** (Eq. 21/23, LazyLSH's contribution): the window is
  centred on the query's own base bucket,
  ``[h*(q) - floor(level/2), h*(q) + floor(level/2)]``;
* **original** virtual rehashing (Eq. 7, C2LSH): buckets are grouped into
  aligned runs of ``level`` buckets and the query gets whichever run it
  falls into — possibly badly off-centre (Figure 8).
"""

from __future__ import annotations

import math

import numpy as np

from repro._typing import PointMatrix, PointVector, SeedLike, as_rng
from repro.errors import DimensionalityMismatchError, InvalidParameterError
from repro.metrics.lp import validate_p

#: Row-chunk size for hashing large point matrices (bounds peak memory).
_HASH_CHUNK = 8192


def query_centric_window(hq: int, level: float) -> tuple[int, int]:
    """Inclusive base-bucket window centred on the query bucket (Eq. 23)."""
    if level < 0:
        raise InvalidParameterError(f"search level must be >= 0, got {level}")
    half = int(math.floor(level / 2.0))
    return hq - half, hq + half


def original_window(hq: int, level: float) -> tuple[int, int]:
    """Inclusive base-bucket window of original virtual rehashing (Eq. 7).

    ``H_R(v) = floor(h(v) / R)``: the query's rehash bucket covers base
    buckets ``[B*R, B*R + R - 1]`` where ``B = floor(hq / R)``.
    """
    if level < 0:
        raise InvalidParameterError(f"search level must be >= 0, got {level}")
    width = max(1, int(math.floor(level)))
    base = int(np.floor_divide(hq, width))
    return base * width, base * width + width - 1


class StableHashBank:
    """A bank of ``eta`` materialised base hash functions (Eq. 10).

    Parameters
    ----------
    d:
        Dimensionality of the data.
    eta:
        Number of hash functions to materialise.
    r0:
        Bucket width of the base hash.
    c:
        Approximation ratio, used (together with ``t_max``) to size the
        offset domain exactly as C2LSH prescribes.
    t_max:
        Largest absolute coordinate value expected in the data.
    base_p:
        1.0 for Cauchy projections (the paper's base index), 2.0 for
        Gaussian.
    seed:
        Seed for projection vectors and offsets.
    """

    def __init__(
        self,
        d: int,
        eta: int,
        *,
        r0: float = 1.0,
        c: float = 3.0,
        t_max: float = 1.0,
        base_p: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        if d < 1:
            raise InvalidParameterError(f"dimensionality must be >= 1, got {d}")
        if eta < 1:
            raise InvalidParameterError(f"eta must be >= 1, got {eta}")
        if r0 <= 0:
            raise InvalidParameterError(f"r0 must be > 0, got {r0}")
        if not c > 1.0:
            raise InvalidParameterError(f"approximation ratio c must be > 1, got {c}")
        if t_max <= 0:
            raise InvalidParameterError(f"t_max must be > 0, got {t_max}")
        self.d = int(d)
        self.eta = int(eta)
        self.r0 = float(r0)
        self.c = float(c)
        self.base_p = validate_p(base_p, allow_above_two=False)
        rng = as_rng(seed)
        if self.base_p == 1.0:
            self._projections = rng.standard_cauchy((self.d, self.eta))
        elif self.base_p == 2.0:
            self._projections = rng.standard_normal((self.d, self.eta))
        else:  # pragma: no cover - guarded by validate_p call sites
            raise InvalidParameterError(
                f"hash banks need a closed-form stable family, got base_p={base_p}"
            )
        # C2LSH offset domain: b* uniform over [0, c^ceil(log_c(t*d)) * r0).
        exponent = math.ceil(math.log(max(t_max * d, self.c)) / math.log(self.c))
        self.offset_upper = self.c**exponent * self.r0
        self._offsets = rng.uniform(0.0, self.offset_upper, self.eta)

    def hash_points(self, points: PointMatrix) -> np.ndarray:
        """Hash a point matrix; returns int64 of shape ``(eta, n)``."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.d:
            raise DimensionalityMismatchError(
                f"points have dimensionality {points.shape[1]}, bank expects {self.d}"
            )
        n = points.shape[0]
        out = np.empty((self.eta, n), dtype=np.int64)
        for start in range(0, n, _HASH_CHUNK):
            stop = min(n, start + _HASH_CHUNK)
            projected = points[start:stop] @ self._projections + self._offsets
            out[:, start:stop] = np.floor(projected / self.r0).astype(np.int64).T
        return out

    def hash_point(self, point: PointVector) -> np.ndarray:
        """Hash a single point; returns int64 of shape ``(eta,)``."""
        point = np.asarray(point, dtype=np.float64)
        if point.ndim != 1:
            raise DimensionalityMismatchError(
                f"hash_point expects a single vector, got shape {point.shape}"
            )
        return self.hash_points(point[None, :])[:, 0]

    def projection_values(self, points: PointMatrix) -> np.ndarray:
        """Raw projections ``a_i . v + b*_i`` (shape ``(eta, n)``).

        Exposed for tests that verify the floor/bucket arithmetic.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return (points @ self._projections + self._offsets).T
