"""Monte-Carlo estimation of ball-intersection probabilities (Algorithm 2).

LazyLSH's sensitivity bound ``p1'`` needs ``Pr(e4 | e2) = Pr(l1(o, q) <= r |
lp(o, q) <= delta)``, which by Lemma 3 can be normalised to ``delta = 1``:

.. math::

    \\Pr(\\ell_1 \\le r \\mid \\ell_p \\le 1)
    = \\frac{Vol(B_1(q, r) \\cap B_p(q, 1))}{Vol(B_p(q, 1))}

The volume ratio has no closed form for fractional ``p``, so the paper
estimates it by sampling uniformly inside the unit ``lp`` ball (Algorithm 1)
and counting how many samples also fall in the l1 ball — for every radius of
a grid over the admissible range ``[delta_lower, min(delta_upper,
c * delta_lower)]`` at once (Algorithm 2).

This module generalises the base space from l1 to any ``ls`` (needed by the
Appendix C analysis of an l2 base index) and chunks the sampling so large
sample counts never materialise a huge matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from threading import Lock

import numpy as np

from repro._typing import SeedLike, as_rng
from repro.errors import InvalidParameterError
from repro.metrics.lp import lp_norm, norm_equivalence_bounds, validate_p
from repro.metrics.sampling import sample_lp_ball

#: Chunk size used when drawing Monte-Carlo samples (bounds peak memory).
_SAMPLE_CHUNK = 50_000


@dataclass(frozen=True)
class BallIntersectionTable:
    """Tabulated ``Pr(ls <= r | lp <= 1)`` over the admissible radius grid.

    Attributes
    ----------
    radii:
        Increasing grid of base-space radii ``r`` spanning
        ``[delta_lower, min(delta_upper, c * delta_lower)]``.
    probabilities:
        ``probabilities[i] = Pr(ls <= radii[i] | lp <= 1)``; non-decreasing.
    d, p, base_s, c:
        Geometry the table was computed for.
    n_samples:
        Monte-Carlo sample count actually used.
    """

    radii: np.ndarray
    probabilities: np.ndarray
    d: int
    p: float
    base_s: float
    c: float
    n_samples: int

    def prob_at(self, r: float | np.ndarray) -> np.ndarray:
        """Interpolated ``Pr(ls <= r | lp <= 1)`` at radius/radii ``r``.

        Clamped to the table's range: below the grid the probability is the
        first bucket's value, above it the last (which approaches 1 when
        the admissible range reaches ``delta_upper``).
        """
        return np.interp(r, self.radii, self.probabilities)

    @property
    def admissible_range(self) -> tuple[float, float]:
        """The ``[delta_lower, min(delta_upper, c*delta_lower)]`` interval."""
        return float(self.radii[0]), float(self.radii[-1])


def admissible_radius_range(d: int, p: float, c: float, base_s: float = 1.0) -> tuple[float, float]:
    """Admissible base-space radii for approximating ``Bp(q, 1)``.

    Section 3.3: ``r`` must lie in ``[delta_lower, min(delta_upper,
    c * delta_lower)]`` — below ``delta_lower`` the window misses true
    neighbours; above ``delta_upper`` it floods with false positives; above
    ``c * delta_lower`` the sensitivity gap ``p1' - p2'`` cannot be positive.
    """
    if not c > 1.0:
        raise InvalidParameterError(f"approximation ratio c must be > 1, got {c}")
    lower, upper = norm_equivalence_bounds(1.0, d, p, base_s)
    return lower, min(upper, c * lower)


def estimate_ball_intersection(
    d: int,
    p: float,
    c: float,
    *,
    base_s: float = 1.0,
    n_samples: int = 200_000,
    n_buckets: int = 200,
    seed: SeedLike = None,
) -> BallIntersectionTable:
    """Run Algorithm 2: tabulate ``Pr(ls <= r | lp <= 1)`` on a radius grid.

    Parameters
    ----------
    d:
        Dimensionality.
    p:
        Exponent of the query space (the conditioning ball ``Bp``).
    c:
        Approximation ratio (caps the admissible radius range).
    base_s:
        Exponent of the base space whose ball approximates ``Bp`` (1 for
        the paper's l1 index, 2 for the Appendix C analysis).
    n_samples / n_buckets:
        Monte-Carlo resolution (paper: 1,000,000 / 1,000).
    seed:
        Seed for the ``lp``-ball sampler.
    """
    p = validate_p(p)
    base_s = validate_p(base_s)
    if n_samples < 1:
        raise InvalidParameterError(f"n_samples must be >= 1, got {n_samples}")
    if n_buckets < 2:
        raise InvalidParameterError(f"n_buckets must be >= 2, got {n_buckets}")
    lower, upper = admissible_radius_range(d, p, c, base_s)
    radii = np.linspace(lower, upper, n_buckets)
    if p == base_s:
        # Degenerate geometry: the balls coincide, every radius >= 1 covers
        # everything and the grid collapses to probability 1.
        return BallIntersectionTable(
            radii=radii,
            probabilities=np.ones_like(radii),
            d=d,
            p=p,
            base_s=base_s,
            c=float(c),
            n_samples=0,
        )
    rng = as_rng(seed)
    counts = np.zeros(n_buckets, dtype=np.int64)
    remaining = n_samples
    while remaining > 0:
        chunk = min(_SAMPLE_CHUNK, remaining)
        points = sample_lp_ball(chunk, d, p, seed=rng)
        base_norms = lp_norm(points, base_s, axis=1)
        # searchsorted gives, for each norm, the first radius >= norm; every
        # bucket at or after that index contains the sample.
        first_bucket = np.searchsorted(radii, base_norms, side="left")
        inside = first_bucket[first_bucket < n_buckets]
        np.add.at(counts, inside, 1)
        remaining -= chunk
    probabilities = np.cumsum(counts) / float(n_samples)
    return BallIntersectionTable(
        radii=radii,
        probabilities=probabilities,
        d=d,
        p=p,
        base_s=base_s,
        c=float(c),
        n_samples=n_samples,
    )


class _TableCache:
    """Process-wide cache of Monte-Carlo tables (they are expensive)."""

    def __init__(self) -> None:
        self._tables: dict[tuple, BallIntersectionTable] = {}
        self._lock = Lock()

    def get(
        self,
        d: int,
        p: float,
        c: float,
        base_s: float,
        n_samples: int,
        n_buckets: int,
        seed: int | None,
    ) -> BallIntersectionTable:
        key = (d, round(float(p), 6), round(float(c), 6), round(float(base_s), 6), n_samples, n_buckets, seed)
        with self._lock:
            table = self._tables.get(key)
        if table is not None:
            return table
        table = estimate_ball_intersection(
            d,
            p,
            c,
            base_s=base_s,
            n_samples=n_samples,
            n_buckets=n_buckets,
            seed=seed,
        )
        with self._lock:
            self._tables.setdefault(key, table)
        return table

    def clear(self) -> None:
        with self._lock:
            self._tables.clear()


#: Shared cache used by :class:`repro.core.params.ParameterEngine`.
TABLE_CACHE = _TableCache()
