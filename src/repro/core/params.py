"""Internal-parameter computation of Section 3.3.

Given the geometry ``(d, p, c)`` and the base space of the materialised
index, this module computes everything LazyLSH needs before touching data:

* the sensitivity curves ``p1'(r)`` / ``p2'(r)`` over the admissible rehash
  radii (Theorem 1, Eqs. 13-14),
* the optimal radius ``r_hat = argmax (p1' - p2')`` (Eq. 19) — or the
  E2LSH-style ``argmin rho`` alternative of Appendix C (Eq. 24),
* the number of required base hash functions ``eta_p`` (Eq. 20),
* the collision-count threshold ``theta_p`` (Eq. 22).

All quantities are cached per metric because they are pure functions of the
configuration; the Monte-Carlo ball-intersection tables they consume are
cached process-wide (see :mod:`repro.core.montecarlo`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError, UnsupportedMetricError
from repro.metrics.collision import collision_probability
from repro.metrics.lp import norm_equivalence_bounds, validate_p
from repro.core.montecarlo import TABLE_CACHE, BallIntersectionTable


@dataclass(frozen=True)
class GapCurve:
    """Sensitivity curves over the admissible rehash radii for one metric.

    ``ratio`` is the paper's x-axis ``r / delta_lower`` (Figure 4).
    """

    p: float
    radii: np.ndarray
    ratio: np.ndarray
    p1_prime: np.ndarray
    p2_prime: np.ndarray

    @property
    def gap(self) -> np.ndarray:
        """``p1' - p2'`` per radius; positive means locality-sensitive."""
        return self.p1_prime - self.p2_prime

    @property
    def rho(self) -> np.ndarray:
        """E2LSH quality ``ln(1/p1') / ln(1/p2')`` per radius (Eq. 24).

        Radii where either probability leaves ``(0, 1)`` get ``inf``.
        """
        with np.errstate(divide="ignore", invalid="ignore"):
            rho = np.log(1.0 / self.p1_prime) / np.log(1.0 / self.p2_prime)
        bad = (
            (self.p1_prime <= 0.0)
            | (self.p1_prime >= 1.0)
            | (self.p2_prime <= 0.0)
            | (self.p2_prime >= 1.0)
        )
        rho = np.where(bad, np.inf, rho)
        return rho


@dataclass(frozen=True)
class MetricParams:
    """Resolved per-metric parameters used at build and query time.

    Attributes
    ----------
    p:
        The query metric.
    r_hat:
        Optimal rehash radius (base-space radius approximating the unit
        ``lp`` ball).
    p1_prime / p2_prime:
        Sensitivity probabilities at ``r_hat`` (written with hats in the
        paper).
    eta:
        Required number of base hash functions (Eq. 20).
    theta:
        Collision-count threshold (Eq. 22); a candidate needs strictly more
        than ``theta`` collisions.
    z:
        The ``sqrt(ln(2/beta) / ln(1/epsilon))`` constant shared by
        Eqs. 20 and 22.
    """

    p: float
    r_hat: float
    p1_prime: float
    p2_prime: float
    eta: int
    theta: float
    z: float

    @property
    def gap(self) -> float:
        """Sensitivity gap ``p1' - p2'`` at the chosen radius."""
        return self.p1_prime - self.p2_prime


class ParameterEngine:
    """Computes and caches LazyLSH's internal parameters (Section 3.3).

    Parameters
    ----------
    d:
        Dimensionality of the indexed data.
    c:
        Approximation ratio.
    epsilon:
        Error probability for property P1'.
    beta:
        False-positive rate for property P2' (a concrete float here;
        :class:`~repro.core.config.LazyLSHConfig` resolves ``None`` before
        constructing the engine).
    r0:
        Base bucket width.
    base_p:
        Exponent of the base space (1 = Cauchy index, 2 = Gaussian index
        for the Appendix C analysis).
    mc_samples / mc_buckets / seed:
        Monte-Carlo resolution and seed for Algorithm 2.
    """

    def __init__(
        self,
        d: int,
        *,
        c: float = 3.0,
        epsilon: float = 0.01,
        beta: float = 1e-4,
        r0: float = 1.0,
        base_p: float = 1.0,
        mc_samples: int = 200_000,
        mc_buckets: int = 200,
        seed: int | None = 7,
    ) -> None:
        if d < 1:
            raise InvalidParameterError(f"dimensionality must be >= 1, got {d}")
        if not c > 1.0:
            raise InvalidParameterError(f"approximation ratio c must be > 1, got {c}")
        if not 0.0 < epsilon < 1.0:
            raise InvalidParameterError(f"epsilon must lie in (0, 1), got {epsilon}")
        if not 0.0 < beta < 1.0:
            raise InvalidParameterError(f"beta must lie in (0, 1), got {beta}")
        if r0 <= 0:
            raise InvalidParameterError(f"r0 must be > 0, got {r0}")
        self.d = int(d)
        self.c = float(c)
        self.epsilon = float(epsilon)
        self.beta = float(beta)
        self.r0 = float(r0)
        self.base_p = validate_p(base_p, allow_above_two=False)
        self.mc_samples = int(mc_samples)
        self.mc_buckets = int(mc_buckets)
        self.seed = seed
        self._params_cache: dict[tuple[float, str], MetricParams] = {}
        # Base sensitivity of h* in its own space: (1, c, p1, p2).
        self.p1 = collision_probability(1.0, self.r0, self.base_p)
        self.p2 = collision_probability(self.c, self.r0, self.base_p)

    @property
    def z(self) -> float:
        """``z = sqrt(ln(2/beta) / ln(1/epsilon))`` (Eq. 8 / Eq. 20)."""
        return math.sqrt(math.log(2.0 / self.beta) / math.log(1.0 / self.epsilon))

    def _table(self, p: float) -> BallIntersectionTable:
        return TABLE_CACHE.get(
            self.d,
            p,
            self.c,
            self.base_p,
            self.mc_samples,
            self.mc_buckets,
            self.seed,
        )

    def curve(self, p: float) -> GapCurve:
        """Sensitivity curves ``p1'(r)``, ``p2'(r)`` for query metric ``p``.

        Implements Eqs. 13-14 with the Monte-Carlo estimate of
        ``Pr(e4 | e2)`` from Algorithm 2 and the Lemma 2 rescalings
        ``p(delta_upper, r0*r) = p(1, r0*r/delta_upper)`` and
        ``p(c*delta_lower, r0*r) = p(c, r0*r/delta_lower)``.
        """
        p = validate_p(p)
        lower, upper = norm_equivalence_bounds(1.0, self.d, p, self.base_p)
        table = self._table(p)
        radii = table.radii
        pr_e4_given_e2 = table.probabilities
        p1_prime = np.empty_like(radii)
        p2_prime = np.empty_like(radii)
        for i, r in enumerate(radii):
            tail = collision_probability(1.0, self.r0 * r / upper, self.base_p)
            p1_prime[i] = pr_e4_given_e2[i] * self.p1 + (1.0 - pr_e4_given_e2[i]) * tail
            p2_prime[i] = collision_probability(
                self.c, self.r0 * r / lower, self.base_p
            )
        return GapCurve(
            p=p,
            radii=radii,
            ratio=radii / lower,
            p1_prime=p1_prime,
            p2_prime=p2_prime,
        )

    def metric_params(self, p: float, *, objective: str = "gap") -> MetricParams:
        """Resolved parameters for metric ``p``.

        ``objective`` selects the radius: ``"gap"`` maximises ``p1' - p2'``
        (Eq. 19, the LazyLSH/C2LSH-style choice) and ``"rho"`` minimises
        ``ln(1/p1')/ln(1/p2')`` (Eq. 24, the E2LSH-style choice).

        Raises
        ------
        UnsupportedMetricError
            If no admissible radius achieves ``p1' > p2'`` — the base index
            is simply not locality-sensitive in the requested space (e.g.
            ``p < ~0.44`` for an l1 base in R^128 at c=2, or fractional
            metrics over an l2 base at d > 5, Appendix C).
        """
        if objective not in ("gap", "rho"):
            raise InvalidParameterError(
                f"objective must be 'gap' or 'rho', got {objective!r}"
            )
        p = validate_p(p)
        key = (round(p, 9), objective)
        cached = self._params_cache.get(key)
        if cached is not None:
            return cached
        curve = self.curve(p)
        gap = curve.gap
        if not np.any(gap > 0.0):
            raise UnsupportedMetricError(
                f"the l{self.base_p:g} base index is not locality-sensitive in "
                f"the l{p:g} space for d={self.d}, c={self.c:g} "
                f"(max p1'-p2' = {float(gap.max()):.4f} <= 0)"
            )
        if objective == "gap":
            best = int(np.argmax(gap))
        else:
            rho = curve.rho
            valid = gap > 0.0
            rho = np.where(valid, rho, np.inf)
            best = int(np.argmin(rho))
        r_hat = float(curve.radii[best])
        p1_prime = float(curve.p1_prime[best])
        p2_prime = float(curve.p2_prime[best])
        z = self.z
        eta = math.ceil(
            math.log(1.0 / self.epsilon)
            / (2.0 * (p1_prime - p2_prime) ** 2)
            * (1.0 + z) ** 2
        )
        theta = (z * p1_prime + p2_prime) / (1.0 + z) * eta
        params = MetricParams(
            p=p,
            r_hat=r_hat,
            p1_prime=p1_prime,
            p2_prime=p2_prime,
            eta=eta,
            theta=theta,
            z=z,
        )
        self._params_cache[key] = params
        return params

    def eta(self, p: float) -> int:
        """Required number of base hash functions ``eta_p`` (Eq. 20)."""
        return self.metric_params(p).eta

    def is_supported(self, p: float) -> bool:
        """Whether the base index is locality-sensitive in the ``lp`` space."""
        try:
            self.metric_params(p)
        except UnsupportedMetricError:
            return False
        return True

    def theta_for_eta(self, p: float, eta: int) -> float:
        """Collision threshold when only ``eta`` functions are consulted.

        Equation 22 scales linearly with the number of functions; querying
        with a subset of the materialised bank (eta_p of eta_{p_min})
        re-scales the threshold accordingly.
        """
        params = self.metric_params(p)
        return (params.z * params.p1_prime + params.p2_prime) / (1.0 + params.z) * eta

    def supported_upper_p(
        self, eta_budget: int, *, p_grid: np.ndarray | None = None
    ) -> float:
        """Largest ``p`` on ``p_grid`` whose ``eta_p`` fits ``eta_budget``.

        Section 4.1: materialising ``eta_s`` functions also serves every
        ``p`` with ``eta_p <= eta_s`` (the dashed line in Figure 6, e.g.
        ``0.6 <= p <= 1.1`` for ``eta_0.6``).
        """
        if p_grid is None:
            p_grid = np.arange(0.4, 1.45, 0.05)
        supported = self.base_p
        for p in p_grid:
            try:
                if self.metric_params(float(p)).eta <= eta_budget:
                    supported = max(supported, float(p))
            except UnsupportedMetricError:
                continue
        return supported
