"""Core LazyLSH engine: parameter theory (Sec. 3) and query processing
(Sec. 4) on top of the :mod:`repro.metrics` and :mod:`repro.storage`
substrates.
"""

from repro.core.batch import BatchKnnResult, knn_batch
from repro.core.config import LazyLSHConfig
from repro.core.lazylsh import LazyLSH, KnnResult, RangeResult
from repro.core.montecarlo import BallIntersectionTable, estimate_ball_intersection
from repro.core.multiquery import MultiQueryEngine, MultiQueryResult
from repro.core.params import MetricParams, ParameterEngine

__all__ = [
    "BallIntersectionTable",
    "BatchKnnResult",
    "KnnResult",
    "LazyLSH",
    "LazyLSHConfig",
    "MetricParams",
    "MultiQueryEngine",
    "MultiQueryResult",
    "ParameterEngine",
    "RangeResult",
    "estimate_ball_intersection",
    "knn_batch",
]
