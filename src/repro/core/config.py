"""Configuration for the LazyLSH index.

Defaults follow the paper's experimental section: approximation ratio
``c = 3`` (the value LazyLSH uses against C2LSH), error probability
``epsilon = 0.01`` and false-positive rate ``beta = 0.0001`` (Figure 6),
base bucket width ``r0 = 1`` and supported metric range ``p in [0.5, 1.0]``.

``beta`` may be left ``None``, in which case it is resolved at build time to
``max(100 / n, 1e-4)`` so that the false-positive candidate budget
``beta * |D|`` stays meaningful on the scaled-down datasets this pure-Python
reproduction runs on (the C2LSH reference implementation makes the same
``100 / n`` choice).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import InvalidParameterError
from repro.storage.pages import DEFAULT_ENTRY_SIZE, DEFAULT_PAGE_SIZE


@dataclass(frozen=True)
class LazyLSHConfig:
    """Build- and query-time parameters of a :class:`~repro.core.LazyLSH`.

    Attributes
    ----------
    c:
        Approximation ratio of the ``Np(q, k, c)`` guarantee.  Must be > 1;
        the paper sweeps integers 2-6 and defaults to 3.
    epsilon:
        Error probability of property P1' (a true neighbour reaches the
        collision threshold with probability >= 1 - epsilon).
    beta:
        False-positive rate of property P2'; ``beta * n`` candidates are
        tolerated before a query gives up.  ``None`` resolves to
        ``max(100 / n, 1e-4)`` at build time.
    r0:
        Width of the base hash buckets (Eq. 10).
    p_min:
        Smallest ``lp`` metric the index must support; ``eta_{p_min}`` hash
        functions are materialised (Sec. 3.3), which also serves every
        ``p`` with ``eta_p <= eta_{p_min}``.
    base_p:
        Exponent of the base space the index is materialised in.  The paper
        uses 1 (Cauchy projections); 2 is accepted for the Appendix C
        analysis.
    mc_samples / mc_buckets:
        Monte-Carlo sample count and radius-grid resolution of Algorithm 2.
        The paper uses 1,000,000 / 1,000; the defaults trade a little
        table smoothness for start-up speed and can be raised freely.
    seed:
        Seed for hash-function generation and Monte-Carlo estimation.
    page_size / entry_size:
        Simulated-disk layout (Sec. 5.2 uses 4 KB pages, 8-byte entries).
    """

    c: float = 3.0
    epsilon: float = 0.01
    beta: float | None = None
    r0: float = 1.0
    p_min: float = 0.5
    base_p: float = 1.0
    mc_samples: int = 200_000
    mc_buckets: int = 200
    seed: int | None = 7
    page_size: int = DEFAULT_PAGE_SIZE
    entry_size: int = DEFAULT_ENTRY_SIZE

    def __post_init__(self) -> None:
        if not self.c > 1.0:
            raise InvalidParameterError(f"approximation ratio c must be > 1, got {self.c}")
        if not 0.0 < self.epsilon < 1.0:
            raise InvalidParameterError(
                f"epsilon must lie in (0, 1), got {self.epsilon}"
            )
        if self.beta is not None and not 0.0 < self.beta < 1.0:
            raise InvalidParameterError(f"beta must lie in (0, 1), got {self.beta}")
        if self.r0 <= 0:
            raise InvalidParameterError(f"r0 must be > 0, got {self.r0}")
        if self.p_min <= 0:
            raise InvalidParameterError(f"p_min must be > 0, got {self.p_min}")
        if self.base_p not in (1.0, 2.0):
            raise InvalidParameterError(
                "the base index must live in the l1 or l2 space "
                f"(closed-form collision probabilities), got base_p={self.base_p}"
            )
        if self.mc_samples < 1000:
            raise InvalidParameterError(
                f"mc_samples must be >= 1000 for a usable estimate, got {self.mc_samples}"
            )
        if self.mc_buckets < 2:
            raise InvalidParameterError(
                f"mc_buckets must be >= 2, got {self.mc_buckets}"
            )

    def resolve_beta(self, n: int) -> float:
        """Concrete false-positive rate for a dataset of cardinality ``n``."""
        if self.beta is not None:
            return self.beta
        if n <= 0:
            raise InvalidParameterError(f"dataset cardinality must be > 0, got {n}")
        # Clamp for tiny datasets where 100/n would leave the (0, 1) domain.
        return min(max(100.0 / n, 1e-4), 0.5)

    def with_updates(self, **changes: object) -> "LazyLSHConfig":
        """Return a copy with ``changes`` applied (dataclass ``replace``)."""
        return replace(self, **changes)
