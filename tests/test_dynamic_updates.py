"""Tests for dynamic inserts and removals on a built LazyLSH index."""

import numpy as np
import pytest

from repro import LazyLSH, LazyLSHConfig
from repro.datasets import exact_knn, make_synthetic
from repro.errors import DimensionalityMismatchError, InvalidParameterError
from repro.persistence import load_index, save_index


@pytest.fixture
def dyn_index():
    data = make_synthetic(500, 12, value_range=(0, 300), seed=31)
    cfg = LazyLSHConfig(c=3.0, p_min=0.7, seed=32, mc_samples=20_000, mc_buckets=80)
    return LazyLSH(cfg).build(data), data


class TestInsert:
    def test_inserted_points_are_found(self, dyn_index):
        index, _data = dyn_index
        rng = np.random.default_rng(1)
        new_points = rng.uniform(0, 300, size=(5, 12))
        ids = index.insert(new_points)
        assert ids.tolist() == list(range(500, 505))
        assert index.num_points == 505
        # Each inserted point is its own nearest neighbour.
        for offset, point in enumerate(new_points):
            result = index.knn(point, 1, p=1.0)
            assert result.ids[0] == 500 + offset
            assert result.distances[0] == pytest.approx(0.0)

    def test_insert_visible_under_fractional_metric(self, dyn_index):
        index, _data = dyn_index
        point = np.full(12, 150.0)
        (new_id,) = index.insert(point)
        result = index.knn(point, 1, p=0.7)
        assert result.ids[0] == new_id

    def test_insert_single_vector(self, dyn_index):
        index, _data = dyn_index
        ids = index.insert(np.zeros(12))
        assert ids.shape == (1,)

    def test_store_grows(self, dyn_index):
        index, _data = dyn_index
        size_before = index.index_size_mb()
        index.insert(np.random.default_rng(2).uniform(0, 300, (600, 12)))
        assert index.store.num_points == 1100
        assert index.index_size_mb() >= size_before

    def test_insert_validation(self, dyn_index):
        index, _data = dyn_index
        with pytest.raises(DimensionalityMismatchError):
            index.insert(np.zeros((2, 5)))
        with pytest.raises(InvalidParameterError):
            index.insert(np.full((1, 12), np.nan))

    def test_knn_exactness_preserved_after_inserts(self, dyn_index):
        # After inserts, kNN answers still match ground truth over the
        # full (old + new) dataset.
        index, data = dyn_index
        rng = np.random.default_rng(3)
        new_points = rng.uniform(0, 300, size=(50, 12))
        index.insert(new_points)
        full = np.vstack([data, new_points])
        query = rng.uniform(0, 300, size=12)
        true_ids, true_dists = exact_knn(full, query, 5, 1.0)
        result = index.knn(query, 5, p=1.0)
        # Approximate, but within the c-guarantee of the *updated* truth.
        assert result.distances[0] <= 3.0 * true_dists[0, 0] + 1e-9


class TestRemove:
    def test_removed_point_never_returned(self, dyn_index):
        index, data = dyn_index
        query = data[42]
        assert index.knn(query, 1, p=1.0).ids[0] == 42
        index.remove(42)
        result = index.knn(query, 1, p=1.0)
        assert result.ids[0] != 42
        assert index.num_points == 499
        assert index.num_rows == 500

    def test_remove_batch(self, dyn_index):
        index, _data = dyn_index
        index.remove([1, 2, 3])
        assert index.num_points == 497
        for result_id in index.knn(_data[1], 10, p=1.0).ids:
            assert result_id not in (1, 2, 3)

    def test_double_remove_rejected(self, dyn_index):
        index, _data = dyn_index
        index.remove(7)
        with pytest.raises(InvalidParameterError):
            index.remove(7)

    def test_out_of_range_rejected(self, dyn_index):
        index, _data = dyn_index
        with pytest.raises(InvalidParameterError):
            index.remove(10_000)
        with pytest.raises(InvalidParameterError):
            index.remove(-1)

    def test_cannot_remove_everything(self):
        data = make_synthetic(3, 4, seed=1)
        cfg = LazyLSHConfig(
            c=3.0, p_min=1.0, seed=1, mc_samples=5000, mc_buckets=50
        )
        index = LazyLSH(cfg).build(data)
        with pytest.raises(InvalidParameterError):
            index.remove([0, 1, 2])

    def test_remove_last_point_message_and_no_mutation(self):
        data = make_synthetic(4, 4, seed=2)
        cfg = LazyLSHConfig(
            c=3.0, p_min=1.0, seed=2, mc_samples=5000, mc_buckets=50
        )
        index = LazyLSH(cfg).build(data)
        index.remove([0, 1, 2])
        with pytest.raises(
            InvalidParameterError,
            match="cannot remove the last remaining point",
        ):
            index.remove(3)
        # The failed call must not have touched the tombstone mask.
        assert index.num_points == 1
        assert index._alive[3]

    def test_failed_batch_leaves_index_unmutated(self, dyn_index):
        # Validation happens before any mutation: a batch mixing valid
        # ids with an out-of-range id must leave every valid id alive.
        index, _data = dyn_index
        alive_before = index._alive.copy()
        with pytest.raises(
            InvalidParameterError, match=r"point ids must lie in \[0, 500\)"
        ):
            index.remove([10, 11, 10_000])
        np.testing.assert_array_equal(index._alive, alive_before)
        assert index.num_points == 500
        index.remove(99)
        with pytest.raises(InvalidParameterError, match="already removed"):
            index.remove([10, 11, 99])
        assert index._alive[10] and index._alive[11]
        assert index.num_points == 499

    def test_k_validated_against_live_count(self, dyn_index):
        index, data = dyn_index
        index.remove(list(range(100)))
        with pytest.raises(InvalidParameterError):
            index.knn(data[200], 401, p=1.0)

    def test_empty_removal_is_noop(self, dyn_index):
        index, _data = dyn_index
        index.remove([])
        assert index.num_points == 500


class TestCompact:
    def test_reclaims_storage_and_renumbers(self, dyn_index):
        index, data = dyn_index
        index.remove(list(range(50)))
        size_before = index.index_size_mb()
        entries_before = index.store.num_points
        mapping = index.compact()
        # Entry counts always shrink; the page-aligned size never grows
        # (it only visibly drops once a page boundary is crossed).
        assert index.store.num_points == entries_before - 50
        assert index.index_size_mb() <= size_before
        assert index.num_rows == index.num_points == 450
        # Mapping: removed rows -> -1, survivors dense and ordered.
        assert (mapping[:50] == -1).all()
        np.testing.assert_array_equal(mapping[50:], np.arange(450))

    def test_query_results_survive_compaction(self, dyn_index):
        index, data = dyn_index
        index.remove([3, 7])
        before = index.knn(data[100], 5, p=1.0)
        mapping = index.compact()
        after = index.knn(data[100], 5, p=1.0)
        np.testing.assert_array_equal(mapping[before.ids], after.ids)
        np.testing.assert_allclose(before.distances, after.distances)

    def test_noop_without_tombstones(self, dyn_index):
        index, _data = dyn_index
        size = index.index_size_mb()
        mapping = index.compact()
        assert index.index_size_mb() == size
        np.testing.assert_array_equal(mapping, np.arange(index.num_rows))

    def test_insert_after_compact(self, dyn_index):
        index, data = dyn_index
        index.remove(0)
        index.compact()
        (new_id,) = index.insert(np.full(12, 5.0))
        assert new_id == index.num_rows - 1
        result = index.knn(np.full(12, 5.0), 1, p=1.0)
        assert result.ids[0] == new_id


class TestInsertRemoveLifecycle:
    def test_reinsert_after_remove(self, dyn_index):
        index, data = dyn_index
        index.remove(42)
        (new_id,) = index.insert(data[42])
        result = index.knn(data[42], 1, p=1.0)
        assert result.ids[0] == new_id
        assert result.distances[0] == pytest.approx(0.0)

    def test_persistence_preserves_tombstones(self, dyn_index, tmp_path):
        index, data = dyn_index
        index.remove([5, 6])
        index.insert(np.full(12, 10.0))
        path = save_index(index, tmp_path / "dyn.npz")
        restored = load_index(path)
        assert restored.num_points == index.num_points
        assert restored.num_rows == index.num_rows
        result = restored.knn(data[5], 3, p=1.0)
        assert 5 not in result.ids and 6 not in result.ids

    def test_multiquery_respects_tombstones(self, dyn_index):
        from repro import MultiQueryEngine

        index, data = dyn_index
        index.remove(42)
        batch = MultiQueryEngine(index).knn(data[42], 3, metrics=[0.7, 1.0])
        for p in (0.7, 1.0):
            assert 42 not in batch[p].ids
