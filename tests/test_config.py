"""Unit tests for repro.core.config."""

import pytest

from repro.core.config import LazyLSHConfig
from repro.errors import InvalidParameterError


class TestValidation:
    def test_defaults_are_paper_settings(self):
        cfg = LazyLSHConfig()
        assert cfg.c == 3.0
        assert cfg.epsilon == 0.01
        assert cfg.p_min == 0.5
        assert cfg.base_p == 1.0
        assert cfg.page_size == 4096

    @pytest.mark.parametrize("c", [1.0, 0.5, -2.0])
    def test_rejects_bad_c(self, c):
        with pytest.raises(InvalidParameterError):
            LazyLSHConfig(c=c)

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_bad_epsilon(self, epsilon):
        with pytest.raises(InvalidParameterError):
            LazyLSHConfig(epsilon=epsilon)

    @pytest.mark.parametrize("beta", [0.0, 1.0, -0.5])
    def test_rejects_bad_beta(self, beta):
        with pytest.raises(InvalidParameterError):
            LazyLSHConfig(beta=beta)

    def test_accepts_none_beta(self):
        assert LazyLSHConfig(beta=None).beta is None

    def test_rejects_bad_r0(self):
        with pytest.raises(InvalidParameterError):
            LazyLSHConfig(r0=0.0)

    def test_rejects_bad_p_min(self):
        with pytest.raises(InvalidParameterError):
            LazyLSHConfig(p_min=0.0)

    def test_rejects_fractional_base(self):
        # The base index needs closed-form collision probabilities.
        with pytest.raises(InvalidParameterError):
            LazyLSHConfig(base_p=0.5)

    def test_accepts_l2_base(self):
        assert LazyLSHConfig(base_p=2.0).base_p == 2.0

    def test_rejects_tiny_mc_samples(self):
        with pytest.raises(InvalidParameterError):
            LazyLSHConfig(mc_samples=10)

    def test_rejects_tiny_mc_buckets(self):
        with pytest.raises(InvalidParameterError):
            LazyLSHConfig(mc_buckets=1)


class TestResolveBeta:
    def test_explicit_beta_wins(self):
        cfg = LazyLSHConfig(beta=0.01)
        assert cfg.resolve_beta(10) == 0.01
        assert cfg.resolve_beta(10_000_000) == 0.01

    def test_default_beta_is_100_over_n(self):
        cfg = LazyLSHConfig()
        assert cfg.resolve_beta(1000) == pytest.approx(0.1)

    def test_default_beta_floors_at_paper_value(self):
        cfg = LazyLSHConfig()
        assert cfg.resolve_beta(10_000_000) == pytest.approx(1e-4)

    def test_rejects_bad_cardinality(self):
        with pytest.raises(InvalidParameterError):
            LazyLSHConfig().resolve_beta(0)


class TestWithUpdates:
    def test_returns_modified_copy(self):
        cfg = LazyLSHConfig()
        cfg2 = cfg.with_updates(c=4.0)
        assert cfg2.c == 4.0
        assert cfg.c == 3.0

    def test_validates_updates(self):
        with pytest.raises(InvalidParameterError):
            LazyLSHConfig().with_updates(c=0.5)
