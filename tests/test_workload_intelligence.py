"""Tests for the workload-intelligence plane (PR 9).

Covers the Space-Saving heavy-hitter sketch and WorkloadAnalytics
(demand histograms, cache efficacy by heat, hot-bucket membership), the
continuous sampling profiler (deterministic single samples, folded
rendering, lifecycle, on-demand captures), query EXPLAIN (build /
validate / render, the per-round I/O delta-sum invariant, wire
round-trips on SearchRequest/SearchResult), the slow-query log's
request/trace correlation ids, structured logging configuration, and
the /proc-based paging metrics' graceful degradation off Linux.
"""

from __future__ import annotations

import json
import logging
import mmap
import sys
import threading

import numpy as np
import pytest

import repro.obs.procstat as procstat
from repro.api import SearchRequest, SearchResult
from repro.errors import InvalidParameterError, WireFormatError
from repro.logconfig import (
    ROOT_LOGGER_NAME,
    JsonFormatter,
    configure_logging,
)
from repro.obs import (
    TERMINATION_CAP,
    TERMINATION_K_WITHIN,
    ContinuousProfiler,
    ExplainSchemaError,
    MetricsRegistry,
    PagingMetrics,
    QueryTraceBuilder,
    SlowQueryLog,
    SpaceSavingSketch,
    WorkloadAnalytics,
    build_explain,
    classify_frames,
    read_fault_counts,
    render_explain,
    residency_ratio,
    validate_explain_dict,
)
from repro.storage.io_stats import IOStats


# ---------------------------------------------------------------------------
# Space-Saving sketch
# ---------------------------------------------------------------------------


class TestSpaceSavingSketch:
    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError, match="capacity"):
            SpaceSavingSketch(0)
        sketch = SpaceSavingSketch(4)
        with pytest.raises(InvalidParameterError, match="weight"):
            sketch.observe("a", 0)

    def test_exact_below_capacity(self):
        sketch = SpaceSavingSketch(8)
        for key, times in (("a", 5), ("b", 3), ("c", 1)):
            for _ in range(times):
                sketch.observe(key)
        assert len(sketch) == 3
        assert sketch.count("a") == 5
        assert sketch.count("missing") == 0
        assert "b" in sketch and "missing" not in sketch
        top = sketch.top(2)
        assert [key for key, _, _ in top] == ["a", "b"]
        assert all(error == 0 for _, _, error in top)

    def test_eviction_inherits_minimum_as_error(self):
        sketch = SpaceSavingSketch(2)
        sketch.observe("a", 10)
        sketch.observe("b", 2)
        sketch.observe("c")  # evicts b (count 2), inherits its count
        assert sketch.evictions == 1
        assert "b" not in sketch
        assert sketch.count("c") == 3  # floor 2 + weight 1
        ((_, count, error),) = [
            entry for entry in sketch.top(2) if entry[0] == "c"
        ]
        assert (count, error) == (3, 2)
        # True frequency (1) lies within [count - error, count].
        assert count - error <= 1 <= count

    def test_overestimate_bounded_by_n_over_m(self):
        rng = np.random.default_rng(5)
        capacity = 16
        sketch = SpaceSavingSketch(capacity)
        truth: dict[int, int] = {}
        # Zipf-ish stream with a long tail to force evictions.
        keys = rng.zipf(1.3, size=4000)
        for key in keys:
            key = int(key)
            sketch.observe(key)
            truth[key] = truth.get(key, 0) + 1
        bound = sketch.error_bound()
        assert bound == len(keys) / capacity
        for key, count, error in sketch.top(capacity):
            true = truth[key]
            assert true <= count <= true + bound
            assert count - error <= true

    def test_heavy_key_guaranteed_tracked(self):
        sketch = SpaceSavingSketch(8)
        for i in range(400):
            sketch.observe("hot" if i % 2 == 0 else f"tail-{i}")
        # "hot" has true frequency 200 > N/m = 50, so it must survive.
        assert "hot" in sketch
        assert sketch.top(1)[0][0] == "hot"


# ---------------------------------------------------------------------------
# Workload analytics
# ---------------------------------------------------------------------------


def _bucket(*values: int) -> bytes:
    return np.asarray(values, dtype=np.int64).tobytes()


class TestWorkloadAnalytics:
    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError, match="hot_buckets"):
            WorkloadAnalytics(hot_buckets=0)
        with pytest.raises(InvalidParameterError, match="demand_window"):
            WorkloadAnalytics(demand_window=0)

    def test_heavy_hitters_decode_bucket_bytes(self):
        workload = WorkloadAnalytics(sketch_capacity=8)
        for _ in range(3):
            workload.observe_query(
                digest="d1", bucket=_bucket(4, -2, 7), p=0.75, k=10
            )
        workload.observe_query(
            digest="d2", bucket=_bucket(1, 1, 1), p=0.5, k=5
        )
        hitters = workload.heavy_hitters(n=2)
        assert hitters["digests"][0] == {
            "digest": "d1", "count": 3, "error": 0,
        }
        assert hitters["buckets"][0]["bucket"] == [4, -2, 7]
        assert hitters["buckets"][0]["count"] == 3
        assert hitters["total"] == 4
        assert hitters["error_bound"] == 4 / 8

    def test_demand_histogram_rolls_over_window(self):
        workload = WorkloadAnalytics(demand_window=4)
        for _ in range(3):
            workload.observe_query(
                digest="d", bucket=_bucket(0), p=0.75, k=10
            )
        for _ in range(2):
            workload.observe_query(
                digest="d", bucket=_bucket(0), p=1.0, k=5
            )
        demand = workload.demand()
        # Window holds the last 4 of the 5 queries.
        assert demand["window"] == 4
        assert demand["p"] == {"0.75": 2, "1": 2}
        assert demand["k"] == {"10": 2, "5": 2}

    def test_cache_efficacy_splits_by_heat(self):
        workload = WorkloadAnalytics(hot_buckets=1, sketch_capacity=8)
        hot, cold = _bucket(1), _bucket(2)
        for _ in range(5):
            workload.observe_query(digest="h", bucket=hot, p=0.5, k=3)
        workload.observe_query(digest="c", bucket=cold, p=0.5, k=3)
        assert workload.is_hot(hot)
        assert not workload.is_hot(cold)
        assert workload.note_cache(hot, hit=True) == "hot"
        assert workload.note_cache(hot, hit=True) == "hot"
        assert workload.note_cache(hot, hit=False) == "hot"
        assert workload.note_cache(cold, hit=False) == "cold"
        efficacy = workload.cache_efficacy()
        assert efficacy["hot"] == {
            "hits": 2, "misses": 1, "hit_rate": pytest.approx(2 / 3),
        }
        assert efficacy["cold"]["hit_rate"] == 0.0
        # No lookups at all -> rate is None, not a division error.
        assert WorkloadAnalytics().cache_efficacy()["hot"]["hit_rate"] is None

    def test_registry_feed_and_gauge_throttle(self):
        registry = MetricsRegistry()
        workload = WorkloadAnalytics(registry, sketch_capacity=8)
        for i in range(70):
            workload.observe_query(
                digest=f"d{i % 3}", bucket=_bucket(i % 3), p=0.75, k=10
            )
        queries = registry.get("lazylsh_workload_queries_total")
        assert queries.value(p="0.75", k="10") == 70
        # The gauge refreshes on the sampled observations (1st, 33rd,
        # 65th) and must reflect the tracked-key count at that point.
        tracked = registry.get("lazylsh_workload_tracked_keys")
        assert tracked.value(sketch="buckets") == 3.0
        workload.note_cache(_bucket(0), hit=True)
        cache = registry.get("lazylsh_workload_cache_lookups_total")
        assert cache.value(heat="hot", outcome="hit") == 1

    def test_stats_shape(self):
        workload = WorkloadAnalytics()
        workload.observe_query(digest="d", bucket=_bucket(3), p=2.0, k=1)
        stats = workload.stats()
        assert set(stats) == {"heavy_hitters", "demand", "cache"}
        assert json.dumps(stats)  # JSON-serialisable end to end


# ---------------------------------------------------------------------------
# Continuous profiler
# ---------------------------------------------------------------------------


class TestContinuousProfiler:
    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError, match="hz"):
            ContinuousProfiler(hz=0)
        with pytest.raises(InvalidParameterError, match="hz"):
            ContinuousProfiler(hz=1001)
        with pytest.raises(InvalidParameterError, match="max_depth"):
            ContinuousProfiler(max_depth=0)
        with pytest.raises(InvalidParameterError, match="max_stacks"):
            ContinuousProfiler(max_stacks=0)

    def test_sample_once_folds_other_threads(self):
        profiler = ContinuousProfiler()
        release = threading.Event()

        def parked_worker():
            release.wait(timeout=10)

        thread = threading.Thread(
            target=parked_worker, name="parked-worker", daemon=True
        )
        thread.start()
        try:
            sampled = profiler.sample_once()
        finally:
            release.set()
            thread.join()
        assert sampled >= 1
        assert profiler.samples == sampled
        assert profiler.thread_table().get("parked-worker") == 1
        folded = profiler.folded()
        line = next(
            ln for ln in folded.splitlines() if ln.startswith("parked-worker;")
        )
        # thread;phase:<phase>;frame;... count — the parked thread waits
        # on an Event, so it classifies as idle.
        assert line.startswith("parked-worker;phase:idle;")
        assert line.rsplit(" ", 1)[1] == "1"
        assert "parked_worker" in line
        phases = profiler.phase_table()
        assert sum(entry["samples"] for entry in phases.values()) == sampled
        assert sum(
            entry["fraction"] for entry in phases.values()
        ) == pytest.approx(1.0)

    def test_lifecycle_idempotent_and_restartable(self):
        profiler = ContinuousProfiler(hz=200)
        assert not profiler.running
        profiler.stop()  # stop before start is a no-op
        with profiler as running:
            assert running is profiler
            assert profiler.running
            assert profiler.start() is profiler  # idempotent
        assert not profiler.running
        profiler.stop()  # double stop is a no-op
        profiler.start()
        assert profiler.running
        profiler.stop()
        assert not profiler.running
        stats = profiler.stats()
        assert stats["hz"] == 200
        assert stats["samples"] == profiler.samples

    def test_capture_validates_and_keeps_aggregate_clean(self):
        profiler = ContinuousProfiler()
        with pytest.raises(InvalidParameterError, match="seconds"):
            profiler.capture(0)
        with pytest.raises(InvalidParameterError, match="seconds"):
            profiler.capture(61)
        with pytest.raises(InvalidParameterError, match="hz"):
            profiler.capture(1, hz=0)
        text = profiler.capture(0.05, hz=200)
        assert text == "" or all(
            line.rsplit(" ", 1)[1].isdigit() for line in text.splitlines()
        )
        # On-demand captures must not pollute the continuous aggregate.
        assert profiler.samples == 0
        assert profiler.folded() == ""

    def test_clear_resets_aggregate(self):
        profiler = ContinuousProfiler()
        profiler.sample_once()
        profiler.clear()
        assert profiler.samples == 0
        assert profiler.folded() == ""
        assert profiler.phase_table() == {}

    def test_registry_instruments(self):
        registry = MetricsRegistry()
        profiler = ContinuousProfiler(registry, hz=50)
        assert registry.get("lazylsh_profile_hz").value() == 50
        sampled = profiler.sample_once()
        counter = registry.get("lazylsh_profile_samples_total")
        total = sum(
            counter.value(phase=phase)
            for phase in profiler.phase_table()
        )
        assert total == sampled

    def test_classify_frames(self):
        assert classify_frames(
            [("/x/service.py", "search_batch"), ("/x/worker.py", "round")]
        ) == "scan"  # leaf-first: innermost phase-bearing frame wins
        assert classify_frames(
            [("/x/service.py", "_merge_round")]
        ) == "merge"
        assert classify_frames([("/x/threading.py", "wait")]) == "idle"
        assert classify_frames([("/x/mymodule.py", "helper")]) == "other"
        assert classify_frames([]) == "other"


# ---------------------------------------------------------------------------
# EXPLAIN
# ---------------------------------------------------------------------------


def _explain_trace(termination=TERMINATION_K_WITHIN):
    io = IOStats()
    builder = QueryTraceBuilder(
        p=0.5, k=3, engine="sharded", rehashing="query_centric", query_id=9
    )
    builder.begin_round(level=1.0, radius=3.0, io=io)
    io.add_sequential(5)
    builder.add_collisions(12)
    builder.end_round(io=io, candidates=1, within=0)
    builder.begin_round(level=3.0, radius=9.0, io=io)
    io.add_sequential(7)
    io.add_random(4)
    builder.add_collisions(30)
    builder.add_crossings(4)
    builder.end_round(io=io, candidates=4, within=3)
    return builder.finish(termination=termination, io=io, candidates=4)


class TestExplain:
    def test_build_flattens_trace(self):
        record = build_explain(
            _explain_trace(),
            shard_io=[IOStats(random=6), IOStats(random=2)],
            cap=8,
            request_id="ab12",
            trace_id="cd34",
        )
        validate_explain_dict(record)
        assert record["engine"] == "sharded"
        assert record["termination"] == TERMINATION_K_WITHIN
        assert (record["request_id"], record["trace_id"]) == ("ab12", "cd34")
        first, second = record["rounds"]
        assert first["windows_scanned"] == 12 and second["promoted"] == 4
        assert second["k_progress"] == 1.0  # within=3 of k=3
        assert second["cap_progress"] == 0.5  # candidates=4 of cap=8
        assert record["shards"] == {
            "count": 2,
            "random_io": [6, 2],
            "skew": pytest.approx(6 / 4),
            "busiest": 0,
        }

    def test_io_deltas_sum_to_totals(self):
        record = build_explain(_explain_trace())
        for field in ("sequential", "random"):
            assert sum(
                r["io"][field] for r in record["rounds"]
            ) == record["io"][field]

    def test_validation_rejects_broken_io_invariant(self):
        record = build_explain(_explain_trace())
        record["rounds"][0]["io"]["sequential"] += 1
        with pytest.raises(ExplainSchemaError):
            validate_explain_dict(record)

    def test_validation_rejects_bad_records(self):
        record = build_explain(_explain_trace())
        bad_version = dict(record, version=99)
        with pytest.raises(ExplainSchemaError, match="version"):
            validate_explain_dict(bad_version)
        missing = dict(record)
        del missing["rounds"]
        with pytest.raises(ExplainSchemaError, match="rounds"):
            validate_explain_dict(missing)
        bad_cap = dict(record, cap=0)
        with pytest.raises(ExplainSchemaError, match="cap"):
            validate_explain_dict(bad_cap)
        bad_shards = dict(
            record,
            shards={"count": 2, "random_io": [1], "skew": 1.0, "busiest": 0},
        )
        with pytest.raises(ExplainSchemaError, match="random_io"):
            validate_explain_dict(bad_shards)

    def test_round_trips_json(self):
        record = build_explain(_explain_trace(TERMINATION_CAP), cap=4)
        validate_explain_dict(json.loads(json.dumps(record)))

    def test_render_is_human_readable(self):
        record = build_explain(
            _explain_trace(),
            shard_io=[IOStats(random=6), IOStats(random=2)],
            cap=8,
        )
        text = render_explain(record)
        assert "EXPLAIN" in text and "k=3" in text
        assert "terminated: k_within_radius" in text
        assert "busiest=shard[0]" in text
        # One table row per round.
        assert sum(
            1 for line in text.splitlines() if line.strip().startswith(("1 ", "2 "))
        ) == 2

    def test_explain_from_live_engine_trace(self):
        from repro import LazyLSH, LazyLSHConfig, Telemetry

        rng = np.random.default_rng(11)
        data = rng.normal(size=(300, 8))
        cfg = LazyLSHConfig(
            c=3.0, p_min=0.5, seed=11, mc_samples=20_000, mc_buckets=100
        )
        index = LazyLSH(cfg).build(data)
        telemetry = Telemetry()
        result = index.knn(rng.normal(size=8), 5, p=0.5, telemetry=telemetry)
        record = build_explain(telemetry.traces[0])
        validate_explain_dict(record)
        assert record["candidates"] == result.candidates
        assert record["num_rounds"] == result.rounds
        assert record["io"] == result.io.to_dict()


class TestExplainWire:
    def test_request_round_trip(self):
        request = SearchRequest(query=[1.0, 2.0], k=3, p=0.5, explain=True)
        record = request.to_dict()
        assert record["explain"] is True
        back = SearchRequest.from_dict(record)
        assert back.explain is True

    def test_request_omits_default(self):
        record = SearchRequest(query=[1.0, 2.0], k=3).to_dict()
        assert "explain" not in record
        assert SearchRequest.from_dict(record).explain is False

    def test_unknown_fields_still_rejected(self):
        record = SearchRequest(query=[1.0], k=1, explain=True).to_dict()
        record["explian"] = True  # typo must fail loudly
        with pytest.raises(WireFormatError, match="explian"):
            SearchRequest.from_dict(record)

    def test_result_carries_explain_record(self):
        explain = build_explain(_explain_trace())
        result = SearchResult(
            ids=np.asarray([1, 2], dtype=np.int64),
            distances=np.asarray([0.1, 0.2]),
            p=0.5,
            k=2,
            termination=TERMINATION_K_WITHIN,
            explain=explain,
        )
        record = result.to_dict()
        assert record["explain"] == explain
        validate_explain_dict(record["explain"])
        bare = SearchResult(
            ids=np.asarray([1], dtype=np.int64),
            distances=np.asarray([0.1]),
            p=0.5,
            k=1,
        )
        assert "explain" not in bare.to_dict()


# ---------------------------------------------------------------------------
# Slow-query log correlation ids
# ---------------------------------------------------------------------------


class TestSlowlogCorrelationIds:
    def test_offer_records_request_and_trace_ids(self):
        log = SlowQueryLog(capacity=4)
        assert log.offer(
            _explain_trace(), request_id="ab12", trace_id="cd34"
        )
        assert log.offer(_explain_trace())
        first, second = log.to_dicts()
        assert (first["request_id"], first["trace_id"]) == ("ab12", "cd34")
        assert (second["request_id"], second["trace_id"]) == (None, None)
        assert json.dumps(log.to_dicts())  # stays JSON-serialisable


# ---------------------------------------------------------------------------
# Structured logging
# ---------------------------------------------------------------------------


class TestLogConfig:
    def test_configures_level_and_single_handler(self):
        root = configure_logging("debug")
        assert root.name == ROOT_LOGGER_NAME
        assert root.level == logging.DEBUG
        assert root.propagate is False
        marked = [
            h for h in root.handlers
            if getattr(h, "_repro_logconfig_handler", False)
        ]
        assert len(marked) == 1

    def test_reconfigure_replaces_handler(self):
        configure_logging("info")
        root = configure_logging("warning", json_format=True)
        marked = [
            h for h in root.handlers
            if getattr(h, "_repro_logconfig_handler", False)
        ]
        assert len(marked) == 1  # no duplicate stacking
        assert isinstance(marked[0].formatter, JsonFormatter)
        assert root.level == logging.WARNING

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("chatty")

    def test_json_formatter_envelope(self):
        record = logging.LogRecord(
            name="repro.serve.service",
            level=logging.WARNING,
            pathname=__file__,
            lineno=1,
            msg="shard %d restarted",
            args=(3,),
            exc_info=None,
        )
        payload = json.loads(JsonFormatter().format(record))
        assert payload["level"] == "WARNING"
        assert payload["logger"] == "repro.serve.service"
        assert payload["msg"] == "shard 3 restarted"
        assert payload["ts"].endswith("Z")

    def test_json_formatter_includes_exception(self):
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            record = logging.LogRecord(
                name="repro",
                level=logging.ERROR,
                pathname=__file__,
                lineno=1,
                msg="failed",
                args=(),
                exc_info=sys.exc_info(),
            )
        payload = json.loads(JsonFormatter().format(record))
        assert "RuntimeError: boom" in payload["exc"]


# ---------------------------------------------------------------------------
# Paging metrics fallbacks (procstat)
# ---------------------------------------------------------------------------


@pytest.fixture()
def restore_mincore_globals():
    saved = (procstat._libc, procstat._mincore_missing)
    yield
    procstat._libc, procstat._mincore_missing = saved


class TestProcstatFallbacks:
    def test_fault_counts_none_off_linux(self, monkeypatch):
        monkeypatch.setattr(procstat.sys, "platform", "darwin")
        assert procstat.read_fault_counts() is None

    def test_fault_counts_none_when_stat_unreadable(self, monkeypatch):
        def deny(*args, **kwargs):
            raise OSError("no /proc here")

        monkeypatch.setattr("builtins.open", deny)
        assert procstat.read_fault_counts() is None

    def test_fault_counts_none_on_malformed_stat(self, monkeypatch, tmp_path):
        stat = tmp_path / "stat"
        stat.write_bytes(b"1 (repro) R too short")
        real_open = open
        monkeypatch.setattr(
            "builtins.open",
            lambda *a, **kw: real_open(stat, "rb"),
        )
        assert procstat.read_fault_counts() is None

    def test_residency_none_without_mincore(self, restore_mincore_globals):
        procstat._mincore_missing = True
        buffer = mmap.mmap(-1, mmap.PAGESIZE)
        try:
            assert residency_ratio(buffer) is None
        finally:
            buffer.close()

    def test_residency_none_on_bad_buffers(self):
        assert residency_ratio(b"") is None  # zero-length
        assert residency_ratio(object()) is None  # not a buffer

    def test_paging_metrics_unsupported_publishes_nothing(self, monkeypatch):
        monkeypatch.setattr(procstat, "read_fault_counts", lambda: None)
        registry = MetricsRegistry()
        paging = PagingMetrics(registry)
        assert paging.supported is False
        report = paging.update()
        assert report == {"supported": False}
        assert registry.get("lazylsh_major_faults_total").value() == 0

    @pytest.mark.skipif(
        not sys.platform.startswith("linux"), reason="needs /proc"
    )
    def test_linux_happy_path(self):
        counts = read_fault_counts()
        assert counts is not None
        minor, major = counts
        assert minor >= 0 and major >= 0
        registry = MetricsRegistry()
        paging = PagingMetrics(registry)
        assert paging.supported
        buffer = mmap.mmap(-1, 4 * mmap.PAGESIZE)
        try:
            buffer.write(b"x" * len(buffer))  # fault the pages in
            report = paging.update(stores={"test": buffer})
            assert report["supported"] is True
            assert report["minor_faults"] >= minor
            ratio = report["residency"].get("test")
            # Anonymous mappings probe on mainstream kernels; tolerate
            # None (mincore refused) but never a bogus ratio.
            if ratio is not None:
                assert 0.0 < ratio <= 1.0
                gauge = registry.get("lazylsh_page_cache_resident_ratio")
                assert gauge.value(store="test") == ratio
        finally:
            buffer.close()
