"""Tests for the unified search API surface (repro.api).

Covers the shared ``SearchRequest``/``SearchResult`` core: request
dispatch on every query path, the deprecation of legacy positional
tuning arguments, the common result protocol, and the streaming
``IOStats.merge``/``aggregate_io`` aggregation.
"""

import contextlib
import warnings

import numpy as np
import pytest

from repro import (
    BatchKnnResult,
    IOStats,
    KnnResult,
    MultiQueryEngine,
    MultiQueryResult,
    SearchRequest,
    aggregate_io,
    knn_batch,
)
from repro.api import SearchResultLike
from repro.errors import InvalidParameterError


@contextlib.contextmanager
def _no_deprecations():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        yield


class TestSearchRequestValidation:
    def test_rejects_bad_fields(self):
        q = np.zeros(4)
        with pytest.raises(InvalidParameterError):
            SearchRequest(query=q, k=0)
        with pytest.raises(InvalidParameterError):
            SearchRequest(query=q, k=5, cap=2)
        with pytest.raises(InvalidParameterError):
            SearchRequest(query=q, k=5, radius=0.0)
        with pytest.raises(InvalidParameterError):
            SearchRequest(query=q, k=5, metrics=())
        with pytest.raises(InvalidParameterError):
            SearchRequest(query=q, k=5, metrics=(0.5,), radius=1.0)
        with pytest.raises(InvalidParameterError):
            SearchRequest(query=q, k=5, engine="gpu")

    def test_normalises_metrics_to_floats(self):
        request = SearchRequest(query=np.zeros(4), k=5, metrics=[1, 0.5])
        assert request.metrics == (1.0, 0.5)


class TestRequestDispatch:
    def test_knn_accepts_request(self, built_index, small_split):
        query = small_split.queries[0]
        keyword = built_index.knn(query, 5, p=0.8)
        request = built_index.knn(SearchRequest(query=query, k=5, p=0.8))
        np.testing.assert_array_equal(keyword.ids, request.ids)
        np.testing.assert_array_equal(keyword.distances, request.distances)
        assert keyword.io == request.io

    def test_knn_rejects_request_plus_args(self, built_index, small_split):
        request = SearchRequest(query=small_split.queries[0], k=5)
        with pytest.raises(InvalidParameterError):
            built_index.knn(request, 5)

    def test_multiquery_accepts_request(self, built_index, small_split):
        engine = MultiQueryEngine(built_index)
        query = small_split.queries[0]
        keyword = engine.knn(query, 5, metrics=(0.5, 1.0))
        request = engine.knn(
            SearchRequest(query=query, k=5, metrics=(0.5, 1.0))
        )
        assert keyword.metrics == request.metrics
        for p in keyword.metrics:
            np.testing.assert_array_equal(
                keyword.results[p].ids, request.results[p].ids
            )
        assert keyword.io == request.io

    def test_knn_batch_accepts_matrix_request(self, built_index, small_split):
        queries = small_split.queries[:2]
        keyword = knn_batch(built_index, queries, 5, p=0.8)
        request = knn_batch(
            built_index, SearchRequest(query=queries, k=5, p=0.8)
        )
        for a, b in zip(keyword.results, request.results):
            np.testing.assert_array_equal(a.ids, b.ids)
        assert keyword.io == request.io


class TestDeprecatedPositionals:
    def test_knn_positional_p_warns_and_matches(
        self, built_index, small_split
    ):
        query = small_split.queries[0]
        with pytest.warns(DeprecationWarning, match="positionally"):
            legacy = built_index.knn(query, 5, 0.8)
        with _no_deprecations():
            keyword = built_index.knn(query, 5, p=0.8)
        np.testing.assert_array_equal(legacy.ids, keyword.ids)

    def test_knn_batch_positional_p_warns_and_matches(
        self, built_index, small_split
    ):
        queries = small_split.queries[:2]
        with pytest.warns(DeprecationWarning, match="positionally"):
            legacy = knn_batch(built_index, queries, 5, 0.8)
        with _no_deprecations():
            keyword = knn_batch(built_index, queries, 5, p=0.8)
        for a, b in zip(legacy.results, keyword.results):
            np.testing.assert_array_equal(a.ids, b.ids)

    def test_multiquery_positional_metrics_warns_and_matches(
        self, built_index, small_split
    ):
        engine = MultiQueryEngine(built_index)
        query = small_split.queries[0]
        with pytest.warns(DeprecationWarning, match="positionally"):
            legacy = engine.knn(query, 5, (0.5, 1.0))
        with _no_deprecations():
            keyword = engine.knn(query, 5, metrics=(0.5, 1.0))
        assert legacy.metrics == keyword.metrics

    def test_multiquery_p_values_keyword_warns(
        self, built_index, small_split
    ):
        engine = MultiQueryEngine(built_index)
        with pytest.warns(DeprecationWarning, match="p_values"):
            engine.knn(small_split.queries[0], 5, p_values=(0.5, 1.0))

    def test_extra_positionals_are_type_errors(
        self, built_index, small_split
    ):
        query = small_split.queries[0]
        with pytest.raises(TypeError, match="keyword-only"):
            built_index.knn(query, 5, 0.8, "flat")
        with pytest.raises(TypeError, match="keyword-only"):
            knn_batch(built_index, small_split.queries, 5, 0.8, "flat")


class TestResultProtocol:
    def test_every_result_type_satisfies_protocol(
        self, built_index, small_split
    ):
        query = small_split.queries[0]
        knn_result = built_index.knn(query, 5, p=0.8)
        multi = MultiQueryEngine(built_index).knn(
            query, 5, metrics=(0.5, 1.0)
        )
        batch = knn_batch(built_index, small_split.queries[:2], 5, p=0.8)
        for result in (knn_result, multi, batch):
            assert isinstance(result, SearchResultLike)
            assert set(result.to_dict()) >= {"io"}

    def test_multi_result_parts_keyed_by_metric(
        self, built_index, small_split
    ):
        multi = MultiQueryEngine(built_index).knn(
            small_split.queries[0], 5, metrics=(0.5, 1.0)
        )
        assert isinstance(multi, MultiQueryResult)
        assert set(multi.ids) == {0.5, 1.0}
        assert set(multi.termination) == {0.5, 1.0}

    def test_batch_result_parts_in_query_order(
        self, built_index, small_split
    ):
        batch = knn_batch(built_index, small_split.queries[:3], 5, p=0.8)
        assert isinstance(batch, BatchKnnResult)
        assert len(batch.ids) == 3
        for result in batch.results:
            assert isinstance(result, KnnResult)


class TestIOAggregation:
    def test_merge_is_streaming_and_chains(self):
        total = IOStats()
        assert total.merge(IOStats(sequential=2, random=3)) is total
        total.merge(IOStats(sequential=5)).merge(IOStats(random=7))
        assert (total.sequential, total.random) == (7, 10)

    def test_merge_rejects_negative(self):
        with pytest.raises(ValueError):
            IOStats().merge(IOStats(sequential=-1))

    def test_aggregate_io_accepts_results_and_raw_stats(self):
        parts = [IOStats(sequential=1), IOStats(random=2)]
        assert aggregate_io(parts).total == 3
        wrapped = [
            SimpleResult(IOStats(sequential=4)),
            SimpleResult(IOStats(random=6)),
        ]
        total = aggregate_io(wrapped)
        assert (total.sequential, total.random) == (4, 6)

    def test_batch_io_equals_fold_of_parts(self, built_index, small_split):
        batch = knn_batch(built_index, small_split.queries, 5, p=0.8)
        assert batch.io == aggregate_io(batch.results)


class SimpleResult:
    def __init__(self, io: IOStats) -> None:
        self.io = io
