"""Tests for the unified search API surface (repro.api).

Covers the shared ``SearchRequest``/``SearchResult`` core: request
dispatch on every query path, the versioned wire codec, the deprecation
of legacy positional tuning arguments (which escalate to errors under
``REPRO_STRICT_API=1`` — these tests pass in either mode), the common
result protocol, and the streaming ``IOStats.merge``/``aggregate_io``
aggregation.
"""

import contextlib
import warnings

import numpy as np
import pytest

from repro import (
    BatchKnnResult,
    IOStats,
    KnnResult,
    MultiQueryEngine,
    MultiQueryResult,
    SearchRequest,
    SearchResult,
    aggregate_io,
    knn_batch,
)
from repro.api import WIRE_VERSION, SearchResultLike, strict_api_enabled
from repro.errors import InvalidParameterError, WireFormatError


@contextlib.contextmanager
def _no_deprecations():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        yield


@contextlib.contextmanager
def _expect_deprecated(match: str):
    """The legacy form warns — or raises when REPRO_STRICT_API=1."""
    if strict_api_enabled():
        with pytest.raises(InvalidParameterError, match=match):
            yield
    else:
        with pytest.warns(DeprecationWarning, match=match):
            yield


class TestSearchRequestValidation:
    def test_rejects_bad_fields(self):
        q = np.zeros(4)
        with pytest.raises(InvalidParameterError):
            SearchRequest(query=q, k=0)
        with pytest.raises(InvalidParameterError):
            SearchRequest(query=q, k=5, cap=2)
        with pytest.raises(InvalidParameterError):
            SearchRequest(query=q, k=5, radius=0.0)
        with pytest.raises(InvalidParameterError):
            SearchRequest(query=q, k=5, metrics=())
        with pytest.raises(InvalidParameterError):
            SearchRequest(query=q, k=5, metrics=(0.5,), radius=1.0)
        with pytest.raises(InvalidParameterError):
            SearchRequest(query=q, k=5, engine="gpu")

    def test_normalises_metrics_to_floats(self):
        request = SearchRequest(query=np.zeros(4), k=5, metrics=[1, 0.5])
        assert request.metrics == (1.0, 0.5)

    def test_rejects_non_finite_queries(self):
        with pytest.raises(InvalidParameterError, match="non-finite"):
            SearchRequest(query=[1.0, np.nan, 3.0], k=1)
        with pytest.raises(InvalidParameterError, match="non-finite"):
            SearchRequest(query=[1.0, np.inf], k=1)
        with pytest.raises(InvalidParameterError, match="non-finite"):
            SearchRequest(query=np.array([[-np.inf, 0.0]]), k=1)

    def test_rejects_malformed_queries(self):
        with pytest.raises(InvalidParameterError):
            SearchRequest(query=[], k=1)
        with pytest.raises(InvalidParameterError):
            SearchRequest(query=np.zeros((2, 2, 2)), k=1)
        with pytest.raises(InvalidParameterError):
            SearchRequest(query=["a", "b"], k=1)

    def test_rejects_bad_deadline(self):
        q = np.zeros(4)
        with pytest.raises(InvalidParameterError, match="deadline_ms"):
            SearchRequest(query=q, k=1, deadline_ms=0)
        with pytest.raises(InvalidParameterError, match="deadline_ms"):
            SearchRequest(query=q, k=1, deadline_ms=-10.0)
        assert SearchRequest(query=q, k=1, deadline_ms=5.0).deadline_ms == 5.0

    def test_rejects_non_hex_request_id(self):
        q = np.zeros(4)
        for bad in ("", "xyz", "dead-beef", "r1"):
            with pytest.raises(InvalidParameterError, match="hex"):
                SearchRequest(query=q, k=1, request_id=bad)
        assert SearchRequest(query=q, k=1, request_id="aB12").request_id


class TestWireCodec:
    def test_round_trip_preserves_every_field(self):
        request = SearchRequest(
            query=[1.0, 2.0, 3.0], k=4, p=0.7, cap=9.0,
            engine="scalar", request_id="c0ffee", deadline_ms=25.0,
        )
        record = request.to_dict()
        assert record["v"] == WIRE_VERSION
        decoded = SearchRequest.from_dict(record)
        np.testing.assert_array_equal(decoded.query, request.query)
        assert decoded.k == 4
        assert decoded.p == 0.7
        assert decoded.cap == 9.0
        assert decoded.engine == "scalar"
        assert decoded.request_id == "c0ffee"
        assert decoded.deadline_ms == 25.0
        assert decoded.to_dict() == record

    def test_round_trip_metrics_and_trace_context(self):
        from repro.obs.trace_context import TraceContext

        ctx = TraceContext.new(sampled=True)
        request = SearchRequest(
            query=np.arange(3.0), k=2, metrics=(1.0, 0.5),
            trace_context=ctx,
        )
        record = request.to_dict()
        assert record["metrics"] == [1.0, 0.5]
        assert "p" not in record  # metrics wins; only one is emitted
        decoded = SearchRequest.from_dict(record)
        assert decoded.metrics == (1.0, 0.5)
        assert decoded.trace_context.trace_id == ctx.trace_id
        assert decoded.trace_context.sampled

    def test_rejects_unknown_keys(self):
        record = {"v": 1, "query": [1.0], "k": 1, "K": 2, "qyery": [1.0]}
        with pytest.raises(WireFormatError, match="unknown request field"):
            SearchRequest.from_dict(record)

    def test_rejects_missing_required_keys(self):
        with pytest.raises(WireFormatError, match="version field"):
            SearchRequest.from_dict({"query": [1.0], "k": 1})
        with pytest.raises(WireFormatError, match="missing required"):
            SearchRequest.from_dict({"v": 1, "k": 1})
        with pytest.raises(WireFormatError, match="missing required"):
            SearchRequest.from_dict({"v": 1, "query": [1.0]})

    def test_rejects_wrong_version_and_shape(self):
        with pytest.raises(WireFormatError, match="unsupported wire version"):
            SearchRequest.from_dict({"v": 2, "query": [1.0], "k": 1})
        with pytest.raises(WireFormatError, match="JSON object"):
            SearchRequest.from_dict([1, 2, 3])
        with pytest.raises(WireFormatError, match="k must be an integer"):
            SearchRequest.from_dict({"v": 1, "query": [1.0], "k": "ten"})
        with pytest.raises(WireFormatError, match="metrics"):
            SearchRequest.from_dict(
                {"v": 1, "query": [1.0], "k": 1, "metrics": "l2"}
            )

    def test_decoded_requests_still_validate_domains(self):
        # Structural codec passes; the constructor's domain checks fire.
        with pytest.raises(InvalidParameterError):
            SearchRequest.from_dict({"v": 1, "query": [np.nan], "k": 1})
        with pytest.raises(InvalidParameterError):
            SearchRequest.from_dict({"v": 1, "query": [1.0], "k": 0})

    def test_wire_format_error_is_a_value_error(self):
        # Client code catching ValueError keeps working.
        with pytest.raises(ValueError):
            SearchRequest.from_dict("not a dict")

    def test_search_result_wire_form_is_versioned(self):
        result = SearchResult(
            ids=np.array([3, 1]), distances=np.array([0.5, 1.5]),
            p=1.0, k=2,
        )
        record = result.to_dict()
        assert record["v"] == WIRE_VERSION
        assert record["ids"] == [3, 1]
        assert record["distances"] == [0.5, 1.5]


class TestRequestDispatch:
    def test_knn_accepts_request(self, built_index, small_split):
        query = small_split.queries[0]
        keyword = built_index.knn(query, 5, p=0.8)
        request = built_index.knn(SearchRequest(query=query, k=5, p=0.8))
        np.testing.assert_array_equal(keyword.ids, request.ids)
        np.testing.assert_array_equal(keyword.distances, request.distances)
        assert keyword.io == request.io

    def test_knn_rejects_request_plus_args(self, built_index, small_split):
        request = SearchRequest(query=small_split.queries[0], k=5)
        with pytest.raises(InvalidParameterError):
            built_index.knn(request, 5)

    def test_multiquery_accepts_request(self, built_index, small_split):
        engine = MultiQueryEngine(built_index)
        query = small_split.queries[0]
        keyword = engine.knn(query, 5, metrics=(0.5, 1.0))
        request = engine.knn(
            SearchRequest(query=query, k=5, metrics=(0.5, 1.0))
        )
        assert keyword.metrics == request.metrics
        for p in keyword.metrics:
            np.testing.assert_array_equal(
                keyword.results[p].ids, request.results[p].ids
            )
        assert keyword.io == request.io

    def test_knn_batch_accepts_matrix_request(self, built_index, small_split):
        queries = small_split.queries[:2]
        keyword = knn_batch(built_index, queries, 5, p=0.8)
        request = knn_batch(
            built_index, SearchRequest(query=queries, k=5, p=0.8)
        )
        for a, b in zip(keyword.results, request.results):
            np.testing.assert_array_equal(a.ids, b.ids)
        assert keyword.io == request.io


class TestDeprecatedPositionals:
    def test_knn_positional_p_warns_and_matches(
        self, built_index, small_split
    ):
        query = small_split.queries[0]
        with _no_deprecations():
            keyword = built_index.knn(query, 5, p=0.8)
        with _expect_deprecated("positionally"):
            legacy = built_index.knn(query, 5, 0.8)
            np.testing.assert_array_equal(legacy.ids, keyword.ids)

    def test_knn_batch_positional_p_warns_and_matches(
        self, built_index, small_split
    ):
        queries = small_split.queries[:2]
        with _no_deprecations():
            keyword = knn_batch(built_index, queries, 5, p=0.8)
        with _expect_deprecated("positionally"):
            legacy = knn_batch(built_index, queries, 5, 0.8)
            for a, b in zip(legacy.results, keyword.results):
                np.testing.assert_array_equal(a.ids, b.ids)

    def test_multiquery_positional_metrics_warns_and_matches(
        self, built_index, small_split
    ):
        engine = MultiQueryEngine(built_index)
        query = small_split.queries[0]
        with _no_deprecations():
            keyword = engine.knn(query, 5, metrics=(0.5, 1.0))
        with _expect_deprecated("positionally"):
            legacy = engine.knn(query, 5, (0.5, 1.0))
            assert legacy.metrics == keyword.metrics

    def test_multiquery_p_values_keyword_warns(
        self, built_index, small_split
    ):
        engine = MultiQueryEngine(built_index)
        with _expect_deprecated("p_values"):
            engine.knn(small_split.queries[0], 5, p_values=(0.5, 1.0))

    def test_strict_mode_escalates_to_error(
        self, built_index, small_split, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STRICT_API", "1")
        assert strict_api_enabled()
        query = small_split.queries[0]
        with pytest.raises(InvalidParameterError, match="REPRO_STRICT_API"):
            built_index.knn(query, 5, 0.8)
        with pytest.raises(InvalidParameterError, match="REPRO_STRICT_API"):
            MultiQueryEngine(built_index).knn(
                query, 5, p_values=(0.5, 1.0)
            )
        # The keyword forms stay valid under strict mode.
        with _no_deprecations():
            built_index.knn(query, 5, p=0.8)

    def test_strict_mode_off_by_default_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_STRICT_API", "0")
        assert not strict_api_enabled()
        monkeypatch.delenv("REPRO_STRICT_API")
        assert not strict_api_enabled()

    def test_extra_positionals_are_type_errors(
        self, built_index, small_split
    ):
        query = small_split.queries[0]
        with pytest.raises(TypeError, match="keyword-only"):
            built_index.knn(query, 5, 0.8, "flat")
        with pytest.raises(TypeError, match="keyword-only"):
            knn_batch(built_index, small_split.queries, 5, 0.8, "flat")


class TestResultProtocol:
    def test_every_result_type_satisfies_protocol(
        self, built_index, small_split
    ):
        query = small_split.queries[0]
        knn_result = built_index.knn(query, 5, p=0.8)
        multi = MultiQueryEngine(built_index).knn(
            query, 5, metrics=(0.5, 1.0)
        )
        batch = knn_batch(built_index, small_split.queries[:2], 5, p=0.8)
        for result in (knn_result, multi, batch):
            assert isinstance(result, SearchResultLike)
            assert set(result.to_dict()) >= {"io"}

    def test_multi_result_parts_keyed_by_metric(
        self, built_index, small_split
    ):
        multi = MultiQueryEngine(built_index).knn(
            small_split.queries[0], 5, metrics=(0.5, 1.0)
        )
        assert isinstance(multi, MultiQueryResult)
        assert set(multi.ids) == {0.5, 1.0}
        assert set(multi.termination) == {0.5, 1.0}

    def test_batch_result_parts_in_query_order(
        self, built_index, small_split
    ):
        batch = knn_batch(built_index, small_split.queries[:3], 5, p=0.8)
        assert isinstance(batch, BatchKnnResult)
        assert len(batch.ids) == 3
        for result in batch.results:
            assert isinstance(result, KnnResult)


class TestIOAggregation:
    def test_merge_is_streaming_and_chains(self):
        total = IOStats()
        assert total.merge(IOStats(sequential=2, random=3)) is total
        total.merge(IOStats(sequential=5)).merge(IOStats(random=7))
        assert (total.sequential, total.random) == (7, 10)

    def test_merge_rejects_negative(self):
        with pytest.raises(ValueError):
            IOStats().merge(IOStats(sequential=-1))

    def test_aggregate_io_accepts_results_and_raw_stats(self):
        parts = [IOStats(sequential=1), IOStats(random=2)]
        assert aggregate_io(parts).total == 3
        wrapped = [
            SimpleResult(IOStats(sequential=4)),
            SimpleResult(IOStats(random=6)),
        ]
        total = aggregate_io(wrapped)
        assert (total.sequential, total.random) == (4, 6)

    def test_batch_io_equals_fold_of_parts(self, built_index, small_split):
        batch = knn_batch(built_index, small_split.queries, 5, p=0.8)
        assert batch.io == aggregate_io(batch.results)


class SimpleResult:
    def __init__(self, io: IOStats) -> None:
        self.io = io
