"""Tests for the C2LSH baseline."""

import numpy as np
import pytest

from repro.baselines import C2LSH
from repro.baselines.c2lsh import C2LSHConfig
from repro.datasets import exact_knn, make_synthetic, sample_queries
from repro.errors import IndexNotBuiltError, InvalidParameterError
from repro.eval import overall_ratio


@pytest.fixture(scope="module")
def c2_split():
    data = make_synthetic(1000, 16, value_range=(0, 500), seed=5)
    return sample_queries(data, n_queries=3, seed=6)


@pytest.fixture(scope="module")
def c2(c2_split) -> C2LSH:
    return C2LSH(C2LSHConfig(c=3.0, seed=11)).build(c2_split.data)


class TestBuild:
    def test_parameters(self, c2):
        assert c2.is_built
        assert c2.eta > 0
        assert 0 < c2.theta < c2.eta
        assert c2.index_size_mb() > 0

    def test_eta_smaller_than_lazylsh_for_fractionals(self, c2, built_index):
        # C2LSH only supports l1, so it materialises eta_1.0 functions —
        # fewer than LazyLSH's eta_0.5 bank over comparable data.
        assert c2.eta < built_index.eta

    def test_query_before_build(self):
        with pytest.raises(IndexNotBuiltError):
            C2LSH().knn(np.zeros(4), 1)

    def test_bad_data(self):
        with pytest.raises(InvalidParameterError):
            C2LSH().build(np.zeros((2, 2)) * np.nan)


class TestL1Queries:
    def test_result_sorted(self, c2, c2_split):
        result = c2.knn(c2_split.queries[0], 10, p=1.0)
        assert (np.diff(result.distances) >= 0).all()
        assert result.p == 1.0

    def test_quality_within_guarantee(self, c2, c2_split):
        _, true_dists = exact_knn(c2_split.data, c2_split.queries, 10, 1.0)
        for qi, query in enumerate(c2_split.queries):
            result = c2.knn(query, 10, p=1.0)
            assert overall_ratio(result.distances, true_dists[qi]) < 3.0

    def test_k_validation(self, c2, c2_split):
        with pytest.raises(InvalidParameterError):
            c2.knn(c2_split.queries[0], 0, p=1.0)


class TestFractionalRerank:
    def test_distances_reported_in_lp(self, c2, c2_split):
        from repro.metrics.lp import lp_distance

        query = c2_split.queries[1]
        result = c2.knn(query, 5, p=0.5)
        recomputed = lp_distance(c2_split.data[result.ids], query, 0.5)
        np.testing.assert_allclose(result.distances, recomputed)
        assert result.p == 0.5

    def test_rerank_pool_is_k_plus_100(self, c2, c2_split):
        # With a 997-point dataset the pool of k+100 caps at n.
        result = c2.knn(c2_split.queries[0], 5, p=0.5)
        assert result.ids.shape == (5,)

    def test_rerank_extra_zero_degrades(self, c2, c2_split):
        # Pure l1 top-k re-labelled as lp is never better than re-ranking
        # a larger pool (both measured against the true lp neighbours).
        query = c2_split.queries[2]
        _, true_dists = exact_knn(c2_split.data, query, 10, 0.5)
        pooled = c2.knn(query, 10, p=0.5, rerank_extra=100)
        bare = c2.knn(query, 10, p=0.5, rerank_extra=0)
        r_pooled = overall_ratio(pooled.distances, true_dists[0])
        r_bare = overall_ratio(bare.distances, true_dists[0])
        assert r_pooled <= r_bare + 1e-9

    def test_negative_extra_rejected(self, c2, c2_split):
        with pytest.raises(InvalidParameterError):
            c2.knn(c2_split.queries[0], 5, p=0.5, rerank_extra=-1)


class TestIOAccounting:
    def test_io_positive_and_accumulated(self, c2_split):
        c2 = C2LSH(C2LSHConfig(c=3.0, seed=11)).build(c2_split.data)
        result = c2.knn(c2_split.queries[0], 5, p=1.0)
        assert result.io.sequential > 0
        assert result.io.random > 0
        assert c2.io_stats.total == result.io.total

    def test_rerank_costs_no_extra_io(self, c2, c2_split):
        # The lp re-rank happens on already-fetched candidates.
        query = c2_split.queries[0]
        l1_io = c2.knn(query, 105, p=1.0).io
        lp_io = c2.knn(query, 5, p=0.5).io
        assert lp_io.total == l1_io.total


class TestDeterminism:
    def test_same_seed_same_answers(self, c2_split):
        a = C2LSH(C2LSHConfig(c=3.0, seed=4)).build(c2_split.data)
        b = C2LSH(C2LSHConfig(c=3.0, seed=4)).build(c2_split.data)
        ra = a.knn(c2_split.queries[0], 10, p=0.7)
        rb = b.knn(c2_split.queries[0], 10, p=0.7)
        np.testing.assert_array_equal(ra.ids, rb.ids)
