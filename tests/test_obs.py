"""Tests for the query telemetry subsystem (repro.obs).

Covers the metrics registry's counter/gauge/histogram semantics and
exports, span nesting and JSONL round-trips, QueryTrace construction /
schema validation, the Telemetry facade (instrument updates, store
observer) and the disabled-telemetry no-op guard the engines rely on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LazyLSH, Telemetry, knn_batch
from repro.datasets import make_synthetic, sample_queries
from repro.errors import InvalidParameterError
from repro.obs import (
    TERMINATION_CAP,
    TERMINATION_K_WITHIN,
    MetricsRegistry,
    ObsExporter,
    QueryTraceBuilder,
    SpanTracer,
    TraceSchemaError,
    get_default_registry,
    histogram_quantile,
    load_spans_jsonl,
    load_traces_jsonl,
    parse_prometheus_text,
    validate_trace_dict,
    write_traces_jsonl,
)
from repro.storage.io_stats import IOStats


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        counter = reg.counter("hits_total", "help text")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_series_are_independent(self):
        counter = MetricsRegistry().counter("queries_total")
        counter.inc(engine="flat")
        counter.inc(3, engine="scalar")
        assert counter.value(engine="flat") == 1
        assert counter.value(engine="scalar") == 3
        assert counter.value(engine="warp") == 0

    def test_label_order_is_canonical(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1

    def test_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(InvalidParameterError, match="decrease"):
            counter.inc(-1)

    def test_rejects_bad_names(self):
        reg = MetricsRegistry()
        with pytest.raises(InvalidParameterError, match="name"):
            reg.counter("bad name")
        counter = reg.counter("ok")
        with pytest.raises(InvalidParameterError, match="label"):
            counter.inc(**{"bad-label": 1})


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("inflight")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6


class TestHistogram:
    def test_bucket_assignment_le_semantics(self):
        hist = MetricsRegistry().histogram("h", buckets=(1, 10, 100))
        for v in (0.5, 1, 2, 10, 11, 1000):
            hist.observe(v)
        # le=1 catches 0.5 and 1; le=10 catches 2 and 10; le=100 catches
        # 11; +Inf catches 1000.
        assert hist.bucket_counts() == [2, 2, 1, 1]
        assert hist.count() == 6
        assert hist.sum() == pytest.approx(1024.5)

    def test_rejects_unsorted_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(InvalidParameterError, match="increasing"):
            reg.histogram("h", buckets=(10, 1))
        with pytest.raises(InvalidParameterError, match="bucket"):
            reg.histogram("h2", buckets=())

    def test_explicit_inf_bucket_is_folded(self):
        hist = MetricsRegistry().histogram("h", buckets=(1, float("inf")))
        assert hist.buckets == (1.0,)

    def test_prometheus_render_is_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", "latency", buckets=(1, 2))
        hist.observe(0.5)
        hist.observe(1.5)
        hist.observe(99)
        text = reg.render_prometheus()
        assert '# TYPE lat histogram' in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text


class TestRegistry:
    def test_get_or_create_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(InvalidParameterError, match="registered"):
            reg.gauge("x")

    def test_histogram_bucket_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1, 2))
        assert reg.histogram("h", buckets=(1, 2)) is not None
        with pytest.raises(InvalidParameterError, match="buckets"):
            reg.histogram("h", buckets=(1, 3))

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        counter.inc(7)
        reg.reset()
        assert "c" in reg
        assert counter.value() == 0

    def test_to_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", "help").inc(2, p="0.5")
        snapshot = reg.to_dict()
        assert snapshot["c"]["type"] == "counter"
        assert snapshot["c"]["values"] == [
            {"labels": {"p": "0.5"}, "value": 2.0}
        ]

    def test_default_registry_is_shared(self):
        assert get_default_registry() is get_default_registry()

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(tag='quo"te\nline')
        text = reg.render_prometheus()
        assert '\\"' in text and "\\n" in text


class TestSpanTracer:
    def test_nesting_parent_ids(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None
        # Completion order: children first.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        inner, outer = tracer.spans
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration <= outer.duration

    def test_error_annotated_and_reraised(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        assert tracer.spans[0].attributes["error"] == "RuntimeError"

    def test_attributes_and_set(self):
        tracer = SpanTracer()
        with tracer.span("s", k=10) as span:
            span.set(found=3)
        assert tracer.spans[0].attributes == {"k": 10, "found": 3}

    def test_jsonl_round_trip(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("a", n=1):
            with tracer.span("b"):
                pass
        path = tracer.export_jsonl(tmp_path / "spans.jsonl")
        loaded = load_spans_jsonl(path)
        assert [s.to_dict() for s in loaded] == tracer.to_dicts()


def _build_trace(termination=TERMINATION_K_WITHIN):
    io = IOStats()
    builder = QueryTraceBuilder(
        p=0.5, k=3, engine="flat", rehashing="query_centric", query_id=9
    )
    builder.begin_round(level=1.0, radius=3.0, io=io)
    io.add_sequential(5)
    builder.add_collisions(12)
    builder.end_round(io=io, candidates=0, within=0)
    builder.begin_round(level=3.0, radius=9.0, io=io)
    io.add_sequential(7)
    io.add_random(4)
    builder.add_collisions(30)
    builder.add_crossings(4)
    builder.end_round(io=io, candidates=4, within=3)
    return builder.finish(termination=termination, io=io, candidates=4)


class TestQueryTrace:
    def test_builder_records_rounds_and_deltas(self):
        trace = _build_trace()
        assert trace.num_rounds == 2
        first, second = trace.rounds
        assert (first.io.sequential, first.io.random) == (5, 0)
        assert (second.io.sequential, second.io.random) == (7, 4)
        assert first.collisions == 12 and second.crossings == 4
        assert trace.io_delta_sum().to_dict() == trace.io.to_dict()
        assert trace.elapsed_seconds >= 0
        assert trace.query_id == 9

    def test_dict_round_trip_validates(self):
        trace = _build_trace()
        record = trace.to_dict()
        validate_trace_dict(record)
        back = type(trace).from_dict(record)
        assert back.to_dict() == record

    def test_jsonl_round_trip(self, tmp_path):
        traces = [_build_trace(), _build_trace(TERMINATION_CAP)]
        path = write_traces_jsonl(traces, tmp_path / "t.jsonl")
        loaded = load_traces_jsonl(path)
        assert [t.to_dict() for t in loaded] == [t.to_dict() for t in traces]

    def test_validation_rejects_bad_termination(self):
        record = _build_trace().to_dict()
        record["termination"] = "tired"
        with pytest.raises(TraceSchemaError, match="termination"):
            validate_trace_dict(record)

    def test_validation_rejects_io_mismatch(self):
        record = _build_trace().to_dict()
        record["io"]["sequential"] += 1
        with pytest.raises(TraceSchemaError, match="deltas"):
            validate_trace_dict(record)

    def test_validation_rejects_missing_field(self):
        record = _build_trace().to_dict()
        del record["rounds"]
        with pytest.raises(TraceSchemaError, match="rounds"):
            validate_trace_dict(record)

    def test_validation_rejects_bad_round_numbering(self):
        record = _build_trace().to_dict()
        record["rounds"][1]["round"] = 7
        with pytest.raises(TraceSchemaError, match="round"):
            validate_trace_dict(record)


@pytest.fixture(scope="module")
def obs_index():
    data = make_synthetic(500, 12, seed=31)
    split = sample_queries(data, n_queries=2, seed=32)
    from repro import LazyLSHConfig

    cfg = LazyLSHConfig(
        c=3.0, p_min=0.5, seed=31, mc_samples=20_000, mc_buckets=100
    )
    return LazyLSH(cfg).build(split.data), split


class TestTelemetryFacade:
    def test_record_updates_instruments(self, obs_index):
        index, split = obs_index
        telemetry = Telemetry()
        index.knn(split.queries[0], 5, p=0.5, telemetry=telemetry)
        queries = telemetry.registry.get("lazylsh_queries_total")
        assert queries.value(engine="flat", p="0.5") == 1
        trace = telemetry.traces[0]
        terminations = telemetry.registry.get("lazylsh_query_terminations_total")
        assert terminations.value(reason=trace.termination) == 1
        rounds = telemetry.registry.get("lazylsh_query_rounds")
        assert rounds.count() == 1
        assert rounds.sum() == trace.num_rounds
        assert "lazylsh_queries_total" in telemetry.metrics_text()
        assert telemetry.summary()["queries"] == 1

    def test_capture_traces_disabled_keeps_metrics(self, obs_index):
        index, split = obs_index
        telemetry = Telemetry(capture_traces=False)
        index.knn(split.queries[0], 5, p=0.5, telemetry=telemetry)
        assert telemetry.traces == []
        assert (
            telemetry.registry.get("lazylsh_queries_total").value(
                engine="flat", p="0.5"
            )
            == 1
        )

    def test_spans_wrap_query_entry_points(self, obs_index):
        index, split = obs_index
        telemetry = Telemetry()
        index.knn(split.queries[0], 5, p=0.5, telemetry=telemetry)
        knn_batch(index, split.queries, 5, p=0.5, telemetry=telemetry)
        names = [s.name for s in telemetry.tracer.spans]
        assert "lazylsh.knn" in names and "knn_batch" in names

    def test_store_observer_counts(self, obs_index):
        index, split = obs_index
        telemetry = Telemetry()
        observer = telemetry.observe_store(index.store)
        assert index.store.observer is observer
        index.knn(split.queries[0], 5, p=0.5)
        searches = telemetry.registry.get("lazylsh_store_searches_total")
        entries = telemetry.registry.get("lazylsh_store_entries_scanned_total")
        assert searches.value() > 0
        assert entries.value() > 0
        index.store.observer = None
        before = searches.value()
        index.knn(split.queries[0], 5, p=0.5)
        assert searches.value() == before

    def test_scalar_path_counts_window_reads(self, obs_index):
        index, split = obs_index
        telemetry = Telemetry()
        telemetry.observe_store(index.store)
        index.knn(split.queries[0], 5, p=0.5, engine="scalar")
        index.store.observer = None
        windows = telemetry.registry.get("lazylsh_store_window_reads_total")
        assert windows.value() > 0


class TestNoOpGuard:
    """With telemetry=None the engines must leave no observable residue."""

    def test_default_leaves_no_hooks(self, obs_index):
        index, split = obs_index
        result = index.knn(split.queries[0], 5, p=0.5)
        assert index.store.observer is None
        assert result.termination in (TERMINATION_K_WITHIN, TERMINATION_CAP)

    def test_results_identical_with_and_without_telemetry(self, obs_index):
        index, split = obs_index
        for engine in ("flat", "scalar"):
            plain = index.knn(split.queries[1], 5, p=0.5, engine=engine)
            traced = index.knn(
                split.queries[1], 5, p=0.5, engine=engine, telemetry=Telemetry()
            )
            assert np.array_equal(plain.ids, traced.ids)
            assert plain.io.to_dict() == traced.io.to_dict()
            assert plain.termination == traced.termination

    def test_batch_without_telemetry_records_nothing(self, obs_index):
        index, split = obs_index
        knn_batch(index, split.queries, 5, p=0.5)
        assert index.store.observer is None


class TestParsePrometheusText:
    """Round-trip and edge cases of the scrape-side exposition parser."""

    def test_escaped_label_values_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter("esc_total", "escape torture test")
        counter.inc(3, path='a"b', note="line1\nline2", sep="back\\slash")
        samples = parse_prometheus_text(registry.render_prometheus())
        labels, value = samples["esc_total"][0]
        assert value == 3.0
        assert labels == {
            "path": 'a"b',
            "note": "line1\nline2",
            "sep": "back\\slash",
        }

    def test_empty_family_yields_no_samples(self):
        text = (
            "# HELP empty_total documented but never incremented\n"
            "# TYPE empty_total counter\n"
            "# HELP other_total has a sample\n"
            "# TYPE other_total counter\n"
            "other_total 2\n"
        )
        samples = parse_prometheus_text(text)
        assert "empty_total" not in samples
        assert samples["other_total"] == [({}, 2.0)]

    def test_blank_lines_and_comments_skipped(self):
        samples = parse_prometheus_text("\n# just a comment\n\nm_total 1\n")
        assert samples == {"m_total": [({}, 1.0)]}

    def test_inf_values(self):
        samples = parse_prometheus_text('g{le="+Inf"} +Inf\nh 2\n')
        assert samples["g"][0][1] == float("inf")

    def test_malformed_sample_line_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus_text("not a metric line!!!\n")

    def test_malformed_label_set_raises(self):
        with pytest.raises(ValueError, match="malformed label"):
            parse_prometheus_text("m_total{oops} 1\n")


class TestHistogramQuantileEdges:
    """PromQL-mirror quantile estimation on degenerate bucket layouts."""

    def test_inf_only_bucket_returns_none(self):
        # All mass in +Inf: there is no finite bound to interpolate to.
        assert histogram_quantile([({"le": "+Inf"}, 5.0)], 0.5) is None

    def test_zero_count_buckets_return_none(self):
        samples = [
            ({"le": "0.1"}, 0.0),
            ({"le": "1"}, 0.0),
            ({"le": "+Inf"}, 0.0),
        ]
        assert histogram_quantile(samples, 0.99) is None

    def test_empty_sample_list_returns_none(self):
        assert histogram_quantile([], 0.5) is None

    def test_mass_above_last_finite_bound_clamps(self):
        samples = [({"le": "0.5"}, 1.0), ({"le": "+Inf"}, 10.0)]
        assert histogram_quantile(samples, 0.99) == 0.5

    def test_flat_prefix_does_not_divide_by_zero(self):
        samples = [
            ({"le": "0.1"}, 4.0),
            ({"le": "0.5"}, 4.0),
            ({"le": "+Inf"}, 4.0),
        ]
        assert histogram_quantile(samples, 0.5) == pytest.approx(0.05)

    def test_label_matching_selects_series(self):
        samples = [
            ({"le": "1", "engine": "flat"}, 10.0),
            ({"le": "+Inf", "engine": "flat"}, 10.0),
            ({"le": "1", "engine": "scalar"}, 0.0),
            ({"le": "+Inf", "engine": "scalar"}, 0.0),
        ]
        assert (
            histogram_quantile(samples, 0.5, match_labels={"engine": "flat"})
            is not None
        )
        assert (
            histogram_quantile(
                samples, 0.5, match_labels={"engine": "scalar"}
            )
            is None
        )


class TestConcurrentScrapes:
    """The ThreadingHTTPServer exporter must survive parallel scrapers."""

    def test_parallel_scrapes_are_parseable(self):
        import threading
        import urllib.request

        registry = MetricsRegistry()
        counter = registry.counter("scrape_total", "mutated during scrapes")
        exporter = ObsExporter(registry).start()
        errors: list[Exception] = []
        stop = threading.Event()

        def mutate():
            while not stop.is_set():
                counter.inc(label="a")
                counter.inc(label="b")

        def scrape():
            try:
                for _ in range(20):
                    with urllib.request.urlopen(
                        exporter.url + "/metrics", timeout=5
                    ) as fh:
                        assert fh.status == 200
                        parse_prometheus_text(fh.read().decode())
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        writer = threading.Thread(target=mutate, daemon=True)
        scrapers = [
            threading.Thread(target=scrape, daemon=True) for _ in range(4)
        ]
        writer.start()
        try:
            for thread in scrapers:
                thread.start()
            for thread in scrapers:
                thread.join(timeout=30)
        finally:
            stop.set()
            writer.join(timeout=5)
            exporter.stop()
        assert not errors
